//! # pdsm-exec
//!
//! The three query-processing models the paper compares (§II-A, §III, Fig. 3):
//!
//! * [`volcano`] — tuple-at-a-time iterators wired with `dyn` dispatch and
//!   boxed predicate closures. This is the *deliberately* CPU-inefficient
//!   baseline: every tuple pays virtual calls and `Value` boxing, exactly
//!   the "function pointer chasing" the paper attributes to Volcano.
//! * [`bulk`] — MonetDB-style column-at-a-time primitives. Each primitive is
//!   a tight typed loop, but every step **fully materializes** its result
//!   (position vectors, fetched value buffers) before the next step runs.
//! * [`vectorized`] — MonetDB/X100-style block-at-a-time processing with
//!   cache-resident selection vectors: primitive dispatch amortized per
//!   vector, no full-column materialization (the middle ground §II-A
//!   describes; used for the vectorization-vs-compilation ablation).
//! * [`compiled`] — the paper's contribution, transplanted: data-centric
//!   fused pipelines. Each pipeline runs as one loop over the scan; filters
//!   are pre-lowered to typed predicate kernels (dictionary codes for string
//!   predicates), survivors flow through join probes and into sinks
//!   (aggregation states, hash-build tables, output buffers) without
//!   per-tuple indirect calls or allocation. LLVM JiT is substituted by
//!   ahead-of-time monomorphized kernels — see DESIGN.md §2.
//!
//! All engines implement [`engine::Engine`] and are differential-tested to
//! produce identical results on identical plans.

pub mod bulk;
pub mod compiled;
pub mod engine;
pub mod keys;
pub mod result;
pub mod simd;
pub mod vectorized;
pub mod volcano;

pub use compiled::{compile_pred, zone_preds, PredKernel};
pub use engine::{
    agg_tail_update, fig2c_tail_fold, masked_tail_row, tail_defeats_raw_keys, tail_raw_key,
    tail_row_passes, Accumulator, BulkEngine, CompiledEngine, Engine, ExecError, Overlay,
    TableProvider, VolcanoEngine,
};
pub use result::{QueryOutput, QueryResult};
pub use simd::{reset_scan_counters, scan_counters, set_mode_override, ScanCounters, SimdMode};
pub use vectorized::VectorizedEngine;
