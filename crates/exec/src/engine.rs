//! The engine abstraction and shared aggregate semantics.

use crate::result::QueryOutput;
use pdsm_plan::logical::{AggFunc, LogicalPlan};
use pdsm_storage::types::cmp_values;
use pdsm_storage::{Table, Value};

/// Resolves table names to storage. Implemented by `pdsm-core`'s `Database`
/// and by plain maps in tests.
pub trait TableProvider {
    /// The table called `name`, if present.
    fn table(&self, name: &str) -> Option<&Table>;
}

impl TableProvider for std::collections::HashMap<String, Table> {
    fn table(&self, name: &str) -> Option<&Table> {
        self.get(name)
    }
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Referenced table is missing from the provider.
    UnknownTable(String),
    /// Plan feature not supported by this engine.
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            ExecError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A query execution engine.
pub trait Engine {
    /// Engine name for reports ("volcano", "bulk", "compiled").
    fn name(&self) -> &'static str;

    /// Execute `plan` against `db`, materializing the full result.
    fn execute(&self, plan: &LogicalPlan, db: &dyn TableProvider)
        -> Result<QueryOutput, ExecError>;
}

pub use crate::bulk::BulkEngine;
pub use crate::compiled::CompiledEngine;
pub use crate::volcano::VolcanoEngine;

/// One aggregate's running state. All engines use this accumulator so that
/// NULL handling and result typing agree exactly:
/// `count → Int64` (never NULL), `sum(int) → Int64`, `sum(float) → Float64`,
/// `avg → Float64`, `min/max` keep the input type; NULL inputs are skipped;
/// empty input yields NULL for everything but count.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    extreme: Option<Value>,
}

impl Accumulator {
    /// Fresh state for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            extreme: None,
        }
    }

    /// Fold one input value (use `Value::Int32(1)` per row for `count(*)`).
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Float64(f) => {
                    self.saw_float = true;
                    self.sum_f += f;
                }
                _ => {
                    let x = v.as_i64().unwrap_or(0);
                    self.sum_i += x;
                    self.sum_f += x as f64;
                }
            },
            AggFunc::Min => {
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => cmp_values(v, m).is_lt(),
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => cmp_values(v, m).is_gt(),
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
        }
    }

    /// Typed fast paths used by the compiled engine's kernels (no `Value`
    /// construction per row).
    #[inline(always)]
    pub fn update_i64(&mut self, x: i64) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum_i += x;
                self.sum_f += x as f64;
            }
            AggFunc::Min | AggFunc::Max => self.update_extreme_i64(x),
        }
    }

    /// Typed fast path for floats.
    #[inline(always)]
    pub fn update_f64(&mut self, x: f64) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.saw_float = true;
                self.sum_f += x;
            }
            AggFunc::Min | AggFunc::Max => {
                let v = Value::Float64(x);
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => {
                        if self.func == AggFunc::Min {
                            cmp_values(&v, m).is_lt()
                        } else {
                            cmp_values(&v, m).is_gt()
                        }
                    }
                };
                if replace {
                    self.extreme = Some(v);
                }
            }
        }
    }

    #[inline]
    fn update_extreme_i64(&mut self, x: i64) {
        let keep = match &self.extreme {
            None => true,
            Some(m) => {
                let cur = m.as_i64().unwrap_or(i64::MAX);
                if self.func == AggFunc::Min {
                    x < cur
                } else {
                    x > cur
                }
            }
        };
        if keep {
            // preserve Int32 typing when the value fits and input was i32-like
            self.extreme = Some(Value::Int64(x));
        }
    }

    /// Fold another accumulator's state into this one, as if every input
    /// `other` saw had been fed to `self` *after* `self`'s own inputs.
    /// This is the merge step of parallel aggregation: workers accumulate
    /// thread-locally and partials are merged at the pipeline barrier.
    /// Merging partials built over a partitioning of the input in partition
    /// order is equivalent to the sequential fold for count/sum(int)/min/max;
    /// float sums may differ in the last ulps (addition is reassociated),
    /// which is why `pdsm-par` keeps float aggregation single-threaded.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func, "merging mismatched aggregates");
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum_i += other.sum_i;
                self.sum_f += other.sum_f;
                self.saw_float |= other.saw_float;
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(theirs) = &other.extreme {
                    let replace = match &self.extreme {
                        None => true,
                        Some(ours) => {
                            if self.func == AggFunc::Min {
                                cmp_values(theirs, ours).is_lt()
                            } else {
                                cmp_values(theirs, ours).is_gt()
                            }
                        }
                    };
                    if replace {
                        self.extreme = Some(theirs.clone());
                    }
                }
            }
        }
    }

    /// Final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int64(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float64(self.sum_f)
                } else {
                    Value::Int64(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float64(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.extreme.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_ignores_nulls_via_arg_but_counts_rows_via_star() {
        let mut c = Accumulator::new(AggFunc::Count);
        c.update(&Value::Int32(1));
        c.update(&Value::Null);
        c.update(&Value::Int32(5));
        assert_eq!(c.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_types() {
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::Int32(3));
        s.update(&Value::Int64(4));
        assert_eq!(s.finish(), Value::Int64(7));
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::Int32(1));
        s.update(&Value::Float64(0.5));
        assert_eq!(s.finish(), Value::Float64(1.5));
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::Null);
    }

    #[test]
    fn avg_and_extremes() {
        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::Int32(1));
        a.update(&Value::Int32(2));
        assert_eq!(a.finish(), Value::Float64(1.5));
        let mut m = Accumulator::new(AggFunc::Min);
        m.update(&Value::from("b"));
        m.update(&Value::from("a"));
        assert_eq!(m.finish(), Value::Str("a".into()));
        let mut m = Accumulator::new(AggFunc::Max);
        m.update(&Value::Int32(-5));
        m.update(&Value::Null);
        assert_eq!(m.finish(), Value::Int32(-5));
    }

    #[test]
    fn typed_fast_paths_agree_with_dynamic() {
        let mut a = Accumulator::new(AggFunc::Sum);
        let mut b = Accumulator::new(AggFunc::Sum);
        for i in 0..100i64 {
            a.update(&Value::Int64(i));
            b.update_i64(i);
        }
        assert_eq!(a.finish(), b.finish());
        let mut a = Accumulator::new(AggFunc::Min);
        let mut b = Accumulator::new(AggFunc::Min);
        for x in [3.0f64, -1.5, 9.0] {
            a.update(&Value::Float64(x));
            b.update_f64(x);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
