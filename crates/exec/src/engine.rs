//! The engine abstraction and shared aggregate semantics.

use crate::result::QueryOutput;
use pdsm_plan::expr::Expr;
use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
use pdsm_storage::row::Row;
use pdsm_storage::types::cmp_values;
use pdsm_storage::{ColId, Table, Value};

/// A snapshot visibility overlay over one table: tombstones on the
/// read-optimized main store plus an append-only tail of decoded rows.
///
/// This is how the versioned write path (`pdsm-txn`) presents in-flight
/// changes to the engines: a scan of a table with an overlay must produce
/// `main − tombstones` (in main order) followed by the live tail rows (in
/// append order) — exactly the rows a merged-then-scanned table would yield,
/// in the same order. Tail rows hold *decoded* values (strings, not
/// dictionary codes), because delta strings may not be interned in the main
/// store's dictionaries until merge.
#[derive(Clone, Copy)]
pub struct Overlay<'a> {
    /// `dead[i] == true` → main row `i` is tombstoned (deleted or
    /// superseded). An empty slice means no main row is tombstoned.
    pub dead: &'a [bool],
    /// Rows appended after the main store, full schema width, decoded.
    pub tail: &'a [Row],
    /// Liveness of tail rows (tail rows can themselves be tombstoned by a
    /// later delete). An empty slice means every tail row is live.
    pub tail_alive: &'a [bool],
}

impl<'a> Overlay<'a> {
    /// Is main row `i` tombstoned?
    #[inline(always)]
    pub fn is_dead(&self, i: usize) -> bool {
        self.dead.get(i).copied().unwrap_or(false)
    }

    /// The live tail rows, in append order.
    pub fn live_tail(&self) -> impl Iterator<Item = &'a Row> + 'a {
        let alive = self.tail_alive;
        self.tail
            .iter()
            .enumerate()
            .filter(move |(k, _)| alive.is_empty() || alive[*k])
            .map(|(_, r)| r)
    }

    /// Number of live tail rows.
    pub fn live_tail_len(&self) -> usize {
        if self.tail_alive.is_empty() {
            self.tail.len()
        } else {
            self.tail_alive.iter().filter(|a| **a).count()
        }
    }
}

/// Evaluate a scan's predicate conjuncts against a decoded tail row.
/// Engines use this in place of their typed kernels for the tail portion:
/// kernels are bound to main-store partition readers and dictionary codes,
/// which tail rows do not have.
pub fn tail_row_passes(preds: &[Expr], row: &Row) -> bool {
    preds.iter().all(|p| p.eval_bool(row.values()))
}

/// Materialize a tail row the way engines materialize main rows: only the
/// `needed` columns populated, every other position NULL. Keeping the two
/// paths identical is what makes overlay scans byte-compatible with scans
/// of a merged table.
pub fn masked_tail_row(row: &Row, needed: &[ColId], width: usize) -> Vec<Value> {
    let mut out = vec![Value::Null; width];
    for &c in needed {
        if let Some(v) = row.values().get(c) {
            out[c] = v.clone();
        }
    }
    out
}

/// Raw `u64` group key of a decoded tail value, hashed the way the typed
/// grouped fast paths hash main rows: integers sign-extended, strings by
/// main-dictionary code. `None` when no raw key exists — a string the main
/// dictionary has never interned has no code, so raw-key fast paths must
/// fall back to the generic (decoded-key) path.
pub fn tail_raw_key(table: &Table, key_col: ColId, v: &Value) -> Option<u64> {
    match v {
        Value::Int32(_) | Value::Int64(_) => v.as_i64().map(|x| x as u64),
        Value::Str(s) => table
            .dict(key_col)
            .and_then(|d| d.code_of(s))
            .map(|c| c as u64),
        _ => None,
    }
}

/// True iff some live tail row's group-key value has no raw `u64` key (see
/// [`tail_raw_key`]) — the bail-out check every raw-key grouped fast path
/// must run before trusting `tail_raw_key(...).expect(..)` in its fold.
pub fn tail_defeats_raw_keys(table: &Table, key_col: ColId, overlay: Option<&Overlay<'_>>) -> bool {
    let Some(o) = overlay else {
        return false;
    };
    o.live_tail()
        .any(|r| tail_raw_key(table, key_col, &r.values()[key_col]).is_none())
}

/// Fold one decoded tail row into a slice of accumulators by evaluating
/// each aggregate's argument against the row (`count(*)` counts the row).
/// This is the shared tail half of every engine's aggregation fast path;
/// the caller has already applied the scan predicates.
pub fn agg_tail_update(aggs: &[AggExpr], row: &Row, accs: &mut [Accumulator]) {
    for (acc, spec) in accs.iter_mut().zip(aggs) {
        match &spec.arg {
            Some(e) => acc.update(&e.eval(row.values())),
            None => acc.update(&Value::Int32(1)),
        }
    }
}

/// Fold the live tail rows passing `preds` into the Fig.-2c kernel's raw
/// running sums (`agg_cols` are the non-nullable `i32` sum columns).
pub fn fig2c_tail_fold(
    overlay: Option<&Overlay<'_>>,
    preds: &[Expr],
    agg_cols: &[ColId],
    sums: &mut [i64],
    hits: &mut u64,
) {
    let Some(o) = overlay else {
        return;
    };
    for r in o.live_tail() {
        if !tail_row_passes(preds, r) {
            continue;
        }
        *hits += 1;
        for (s, &c) in sums.iter_mut().zip(agg_cols) {
            *s += r.values()[c].as_i64().expect("non-nullable i32 tail value");
        }
    }
}

/// Resolves table names to storage. Implemented by `pdsm-core`'s `Database`
/// and by plain maps in tests.
pub trait TableProvider {
    /// The table called `name`, if present.
    fn table(&self, name: &str) -> Option<&Table>;

    /// The visibility overlay of `name`, if the provider is versioned and
    /// the table has pending changes. The default (plain, unversioned
    /// providers) is `None`: the main store is the whole truth.
    fn overlay(&self, name: &str) -> Option<Overlay<'_>> {
        let _ = name;
        None
    }
}

impl TableProvider for std::collections::HashMap<String, Table> {
    fn table(&self, name: &str) -> Option<&Table> {
        self.get(name)
    }
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Referenced table is missing from the provider.
    UnknownTable(String),
    /// Plan feature not supported by this engine.
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            ExecError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A query execution engine.
pub trait Engine {
    /// Engine name for reports ("volcano", "bulk", "compiled").
    fn name(&self) -> &'static str;

    /// Execute `plan` against `db`, materializing the full result.
    fn execute(&self, plan: &LogicalPlan, db: &dyn TableProvider)
        -> Result<QueryOutput, ExecError>;
}

pub use crate::bulk::BulkEngine;
pub use crate::compiled::CompiledEngine;
pub use crate::volcano::VolcanoEngine;

/// One aggregate's running state. All engines use this accumulator so that
/// NULL handling and result typing agree exactly:
/// `count → Int64` (never NULL), `sum(int) → Int64`, `sum(float) → Float64`,
/// `avg → Float64`, `min/max` keep the input type; NULL inputs are skipped;
/// empty input yields NULL for everything but count.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    saw_float: bool,
    extreme: Option<Value>,
}

impl Accumulator {
    /// Fresh state for `func`.
    pub fn new(func: AggFunc) -> Self {
        Accumulator {
            func,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            saw_float: false,
            extreme: None,
        }
    }

    /// Fold one input value (use `Value::Int32(1)` per row for `count(*)`).
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Float64(f) => {
                    self.saw_float = true;
                    self.sum_f += f;
                }
                _ => {
                    let x = v.as_i64().unwrap_or(0);
                    self.sum_i += x;
                    self.sum_f += x as f64;
                }
            },
            AggFunc::Min => {
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => cmp_values(v, m).is_lt(),
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
            AggFunc::Max => {
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => cmp_values(v, m).is_gt(),
                };
                if replace {
                    self.extreme = Some(v.clone());
                }
            }
        }
    }

    /// Typed fast paths used by the compiled engine's kernels (no `Value`
    /// construction per row).
    #[inline(always)]
    pub fn update_i64(&mut self, x: i64) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum_i += x;
                self.sum_f += x as f64;
            }
            AggFunc::Min | AggFunc::Max => self.update_extreme_i64(x),
        }
    }

    /// Typed fast path for floats.
    #[inline(always)]
    pub fn update_f64(&mut self, x: f64) {
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.saw_float = true;
                self.sum_f += x;
            }
            AggFunc::Min | AggFunc::Max => {
                let v = Value::Float64(x);
                let replace = match &self.extreme {
                    None => true,
                    Some(m) => {
                        if self.func == AggFunc::Min {
                            cmp_values(&v, m).is_lt()
                        } else {
                            cmp_values(&v, m).is_gt()
                        }
                    }
                };
                if replace {
                    self.extreme = Some(v);
                }
            }
        }
    }

    #[inline]
    fn update_extreme_i64(&mut self, x: i64) {
        let keep = match &self.extreme {
            None => true,
            Some(m) => {
                let cur = m.as_i64().unwrap_or(i64::MAX);
                if self.func == AggFunc::Min {
                    x < cur
                } else {
                    x > cur
                }
            }
        };
        if keep {
            // preserve Int32 typing when the value fits and input was i32-like
            self.extreme = Some(Value::Int64(x));
        }
    }

    /// Fold another accumulator's state into this one, as if every input
    /// `other` saw had been fed to `self` *after* `self`'s own inputs.
    /// This is the merge step of parallel aggregation: workers accumulate
    /// thread-locally and partials are merged at the pipeline barrier.
    /// Merging partials built over a partitioning of the input in partition
    /// order is equivalent to the sequential fold for count/sum(int)/min/max;
    /// float sums may differ in the last ulps (addition is reassociated),
    /// which is why `pdsm-par` keeps float aggregation single-threaded.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func, "merging mismatched aggregates");
        self.count += other.count;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum_i += other.sum_i;
                self.sum_f += other.sum_f;
                self.saw_float |= other.saw_float;
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(theirs) = &other.extreme {
                    let replace = match &self.extreme {
                        None => true,
                        Some(ours) => {
                            if self.func == AggFunc::Min {
                                cmp_values(theirs, ours).is_lt()
                            } else {
                                cmp_values(theirs, ours).is_gt()
                            }
                        }
                    };
                    if replace {
                        self.extreme = Some(theirs.clone());
                    }
                }
            }
        }
    }

    /// Final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int64(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.saw_float {
                    Value::Float64(self.sum_f)
                } else {
                    Value::Int64(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float64(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min | AggFunc::Max => self.extreme.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_ignores_nulls_via_arg_but_counts_rows_via_star() {
        let mut c = Accumulator::new(AggFunc::Count);
        c.update(&Value::Int32(1));
        c.update(&Value::Null);
        c.update(&Value::Int32(5));
        assert_eq!(c.finish(), Value::Int64(2));
    }

    #[test]
    fn sum_types() {
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::Int32(3));
        s.update(&Value::Int64(4));
        assert_eq!(s.finish(), Value::Int64(7));
        let mut s = Accumulator::new(AggFunc::Sum);
        s.update(&Value::Int32(1));
        s.update(&Value::Float64(0.5));
        assert_eq!(s.finish(), Value::Float64(1.5));
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Value::Null);
    }

    #[test]
    fn avg_and_extremes() {
        let mut a = Accumulator::new(AggFunc::Avg);
        a.update(&Value::Int32(1));
        a.update(&Value::Int32(2));
        assert_eq!(a.finish(), Value::Float64(1.5));
        let mut m = Accumulator::new(AggFunc::Min);
        m.update(&Value::from("b"));
        m.update(&Value::from("a"));
        assert_eq!(m.finish(), Value::Str("a".into()));
        let mut m = Accumulator::new(AggFunc::Max);
        m.update(&Value::Int32(-5));
        m.update(&Value::Null);
        assert_eq!(m.finish(), Value::Int32(-5));
    }

    #[test]
    fn typed_fast_paths_agree_with_dynamic() {
        let mut a = Accumulator::new(AggFunc::Sum);
        let mut b = Accumulator::new(AggFunc::Sum);
        for i in 0..100i64 {
            a.update(&Value::Int64(i));
            b.update_i64(i);
        }
        assert_eq!(a.finish(), b.finish());
        let mut a = Accumulator::new(AggFunc::Min);
        let mut b = Accumulator::new(AggFunc::Min);
        for x in [3.0f64, -1.5, 9.0] {
            a.update(&Value::Float64(x));
            b.update_f64(x);
        }
        assert_eq!(a.finish(), b.finish());
    }
}
