//! The bulk (column-at-a-time) engine — MonetDB-style processing (§II-A).
//!
//! Queries decompose into *primitives*: each primitive is a tight, typed,
//! branch-light loop over whole columns, and each **fully materializes** its
//! result before the next primitive runs — position vectors for selections,
//! value buffers for fetches. That materialization is the model's defining
//! cost: cheap at low selectivity, cache-hostile at high selectivity
//! (Fig. 3's crossover).
//!
//! The paper's Fig.-3 description maps one-to-one onto this module: "the
//! first operator scans column A and materializes all matching positions.
//! After that, each of the columns B to E are scanned and all the matching
//! positions materialized. Finally, each of the materialized buffers are
//! aggregated."

use crate::engine::{Accumulator, Engine, ExecError, Overlay, TableProvider};
use crate::keys::GroupKey;
use crate::result::QueryOutput;
use pdsm_plan::expr::{CmpOp, Expr};
use pdsm_plan::logical::{AggExpr, LogicalPlan};
use pdsm_storage::dictionary::like_match;
use pdsm_storage::row::Row;
use pdsm_storage::types::cmp_values;
use pdsm_storage::{ColId, DataType, Table, Value};
use std::collections::HashMap;

/// A materialized column buffer — the currency between primitives.
#[derive(Debug, Clone)]
pub enum ColBuf {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F64(Vec<f64>),
    /// Dictionary codes plus the owning table/column for decoding.
    Code {
        codes: Vec<u32>,
        table: String,
        col: ColId,
    },
    /// Decoded values (computed expressions, NULL-able results).
    Val(Vec<Value>),
}

impl ColBuf {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ColBuf::I32(v) => v.len(),
            ColBuf::I64(v) => v.len(),
            ColBuf::F64(v) => v.len(),
            ColBuf::Code { codes, .. } => codes.len(),
            ColBuf::Val(v) => v.len(),
        }
    }

    /// True iff the buffer has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode entry `i` to a [`Value`].
    fn value(&self, i: usize, db: &dyn TableProvider) -> Value {
        match self {
            ColBuf::I32(v) => Value::Int32(v[i]),
            ColBuf::I64(v) => Value::Int64(v[i]),
            ColBuf::F64(v) => Value::Float64(v[i]),
            ColBuf::Code { codes, table, col } => {
                let t = db.table(table).expect("table vanished mid-query");
                Value::Str(t.dict(*col).expect("str col").decode(codes[i]).to_owned())
            }
            ColBuf::Val(v) => v[i].clone(),
        }
    }
}

/// A materialized intermediate relation: one buffer per output column.
#[derive(Debug, Clone)]
pub struct Chunk {
    pub cols: Vec<ColBuf>,
    pub len: usize,
}

impl Chunk {
    fn row(&self, i: usize, db: &dyn TableProvider) -> Vec<Value> {
        self.cols.iter().map(|c| c.value(i, db)).collect()
    }
}

/// The bulk engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct BulkEngine;

impl Engine for BulkEngine {
    fn name(&self) -> &'static str {
        "bulk"
    }

    fn execute(
        &self,
        plan: &LogicalPlan,
        db: &dyn TableProvider,
    ) -> Result<QueryOutput, ExecError> {
        let width = |t: &str| db.table(t).map(|tb| tb.schema().len()).unwrap_or(0);
        let required = plan.required_columns(&width);
        let chunk = exec(plan, db, &required)?;
        let mut out = QueryOutput::new();
        out.rows.reserve(chunk.len);
        for i in 0..chunk.len {
            out.rows.push(chunk.row(i, db));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// selection primitives
// ---------------------------------------------------------------------------

/// Split a predicate into AND-ed conjuncts (evaluation order preserved).
fn conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    walk(pred, &mut out);
    out
}

/// `(col, op, literal)` if the conjunct is a simple column/constant compare.
fn simple_cmp(e: &Expr) -> Option<(ColId, CmpOp, &Value)> {
    if let Expr::Cmp { op, left, right } = e {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => return Some((*c, *op, v)),
            (Expr::Lit(v), Expr::Col(c)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => *other,
                };
                return Some((*c, flipped, v));
            }
            _ => {}
        }
    }
    None
}

macro_rules! typed_select {
    ($reader:expr, $t:expr, $c:expr, $op:expr, $lit:expr, $cands:expr, $conv:expr) => {{
        let r = $reader;
        let lit = $conv;
        let nullable = $t.schema().columns()[$c].nullable;
        let keep = |i: u32| {
            let v = r.get(i as usize);
            (!nullable || $t.is_valid(i as usize, $c)) && $op.matches(v.partial_cmp(&lit).unwrap())
        };
        match $cands {
            None => (0..r.len() as u32).filter(|&i| keep(i)).collect(),
            Some(c) => c.into_iter().filter(|&i| keep(i)).collect(),
        }
    }};
}

/// Evaluate one conjunct against `t`, refining `cands` (None = all rows).
/// This is the bulk "select" primitive: a typed scan producing a
/// materialized position vector.
fn select_conjunct(t: &Table, e: &Expr, cands: Option<Vec<u32>>) -> Vec<u32> {
    if let Some((c, op, lit)) = simple_cmp(e) {
        match t.schema().columns()[c].ty {
            DataType::Int32 => {
                if let Some(x) = lit.as_i64() {
                    // compare in i64 to avoid overflow on widening literals
                    let r = t.i32_reader(c);
                    let nullable = t.schema().columns()[c].nullable;
                    let keep = |i: u32| {
                        (!nullable || t.is_valid(i as usize, c))
                            && op.matches((r.get(i as usize) as i64).cmp(&x))
                    };
                    return match cands {
                        None => (0..r.len() as u32).filter(|&i| keep(i)).collect(),
                        Some(cs) => cs.into_iter().filter(|&i| keep(i)).collect(),
                    };
                }
            }
            DataType::Int64 => {
                if let Some(x) = lit.as_i64() {
                    return typed_select!(t.i64_reader(c), t, c, op, lit, cands, x);
                }
            }
            DataType::Float64 => {
                if let Some(x) = lit.as_f64() {
                    return typed_select!(t.f64_reader(c), t, c, op, lit, cands, x);
                }
            }
            DataType::Str => {
                if let (CmpOp::Eq, Some(s)) = (op, lit.as_str()) {
                    let code = t.dict(c).and_then(|d| d.code_of(s));
                    let r = t.str_code_reader(c);
                    let nullable = t.schema().columns()[c].nullable;
                    return match code {
                        None => Vec::new(),
                        Some(code) => {
                            let keep = |i: u32| {
                                (!nullable || t.is_valid(i as usize, c))
                                    && r.get(i as usize) == code
                            };
                            match cands {
                                None => (0..r.len() as u32).filter(|&i| keep(i)).collect(),
                                Some(cs) => cs.into_iter().filter(|&i| keep(i)).collect(),
                            }
                        }
                    };
                }
            }
        }
    }
    if let Expr::Like { expr, pattern } = e {
        if let Expr::Col(c) = expr.as_ref() {
            if t.schema().columns()[c.to_owned()].ty == DataType::Str {
                let c = *c;
                // dictionary prescan: LIKE once per distinct string
                let dict = t.dict(c).expect("str col");
                let mut hit = vec![false; dict.len()];
                for (code, s) in dict.iter() {
                    hit[code as usize] = like_match(pattern, s);
                }
                let r = t.str_code_reader(c);
                let nullable = t.schema().columns()[c].nullable;
                let keep = |i: u32| {
                    (!nullable || t.is_valid(i as usize, c)) && hit[r.get(i as usize) as usize]
                };
                return match cands {
                    None => (0..r.len() as u32).filter(|&i| keep(i)).collect(),
                    Some(cs) => cs.into_iter().filter(|&i| keep(i)).collect(),
                };
            }
        }
    }
    if let Expr::IsNull(inner) = e {
        if let Expr::Col(c) = inner.as_ref() {
            let c = *c;
            let keep = |i: u32| !t.is_valid(i as usize, c);
            return match cands {
                None => (0..t.len() as u32).filter(|&i| keep(i)).collect(),
                Some(cs) => cs.into_iter().filter(|&i| keep(i)).collect(),
            };
        }
    }
    // Disjunction: evaluate each side over the same candidates and merge
    // the (sorted) position vectors — MonetDB's candidate-list union.
    if let Expr::Or(a, b) = e {
        let left = select_conjunct(t, a, cands.clone());
        let right = select_conjunct(t, b, cands);
        let mut out = Vec::with_capacity(left.len() + right.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < left.len() || j < right.len() {
            match (left.get(i), right.get(j)) {
                (Some(&l), Some(&r)) if l == r => {
                    out.push(l);
                    i += 1;
                    j += 1;
                }
                (Some(&l), Some(&r)) if l < r => {
                    out.push(l);
                    i += 1;
                }
                (Some(_), Some(&r)) => {
                    out.push(r);
                    j += 1;
                }
                (Some(&l), None) => {
                    out.push(l);
                    i += 1;
                }
                (None, Some(&r)) => {
                    out.push(r);
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        return out;
    }
    // Conjunction below an Or: sequential refinement.
    if let Expr::And(a, b) = e {
        let left = select_conjunct(t, a, cands);
        return select_conjunct(t, b, Some(left));
    }
    // Fallback: interpret the conjunct row-at-a-time over the candidates,
    // reading only its referenced columns.
    let cols = e.columns();
    let width = t.schema().len();
    let eval_row = |i: u32| {
        let mut row = vec![Value::Null; width];
        for &c in &cols {
            row[c] = t.get(i as usize, c).expect("in-range");
        }
        e.eval_bool(&row[..])
    };
    match cands {
        None => (0..t.len() as u32).filter(|&i| eval_row(i)).collect(),
        Some(cs) => cs.into_iter().filter(|&i| eval_row(i)).collect(),
    }
}

// ---------------------------------------------------------------------------
// fetch primitive
// ---------------------------------------------------------------------------

/// Materialize column `c` of `t` at `positions` (None = all rows) — the bulk
/// "fetch-join" against a position vector. `catalog_name` is the name the
/// table is registered under (which may differ from `t.name()`), so that
/// decoding looks up the right dictionary.
fn fetch(t: &Table, catalog_name: &str, c: ColId, positions: Option<&[u32]>) -> ColBuf {
    let def = &t.schema().columns()[c];
    let n = positions.map(|p| p.len()).unwrap_or(t.len());
    let nullable = def.nullable;
    if nullable {
        // NULL-able columns materialize as decoded values.
        let mut out = Vec::with_capacity(n);
        let idx = |k: usize| positions.map(|p| p[k] as usize).unwrap_or(k);
        for k in 0..n {
            out.push(t.get(idx(k), c).expect("in-range"));
        }
        return ColBuf::Val(out);
    }
    match def.ty {
        DataType::Int32 => {
            let r = t.i32_reader(c);
            ColBuf::I32(match positions {
                None => r.iter().collect(),
                Some(p) => p.iter().map(|&i| r.get(i as usize)).collect(),
            })
        }
        DataType::Int64 => {
            let r = t.i64_reader(c);
            ColBuf::I64(match positions {
                None => r.iter().collect(),
                Some(p) => p.iter().map(|&i| r.get(i as usize)).collect(),
            })
        }
        DataType::Float64 => {
            let r = t.f64_reader(c);
            ColBuf::F64(match positions {
                None => r.iter().collect(),
                Some(p) => p.iter().map(|&i| r.get(i as usize)).collect(),
            })
        }
        DataType::Str => {
            let r = t.str_code_reader(c);
            ColBuf::Code {
                codes: match positions {
                    None => r.iter().collect(),
                    Some(p) => p.iter().map(|&i| r.get(i as usize)).collect(),
                },
                table: catalog_name.to_string(),
                col: c,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// plan execution
// ---------------------------------------------------------------------------

/// Execute `plan` to a fully materialized [`Chunk`]. `required` lists, per
/// table, the base columns the overall plan needs (drives fetch pruning).
fn exec(
    plan: &LogicalPlan,
    db: &dyn TableProvider,
    required: &[(String, Vec<ColId>)],
) -> Result<Chunk, ExecError> {
    match plan {
        LogicalPlan::Scan { table } => {
            let t = db
                .table(table)
                .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
            let overlay = db.overlay(table);
            let positions = live_positions(t, overlay.as_ref());
            let tail: Vec<&Row> = overlay
                .as_ref()
                .map(|o| o.live_tail().collect())
                .unwrap_or_default();
            Ok(materialize_scan(t, table, positions, &tail, required))
        }
        LogicalPlan::Select { input, pred, .. } => {
            // Fuse select-over-scan into selection primitives on base data.
            if let LogicalPlan::Scan { table } = input.as_ref() {
                let t = db
                    .table(table)
                    .ok_or_else(|| ExecError::UnknownTable(table.clone()))?;
                let overlay = db.overlay(table);
                // Tombstoned rows seed the candidate list so every selection
                // primitive only ever sees visible positions.
                let mut positions: Option<Vec<u32>> = live_positions(t, overlay.as_ref());
                for conj in conjuncts(pred) {
                    positions = Some(select_conjunct(t, conj, positions));
                }
                let positions = positions.unwrap_or_else(|| (0..t.len() as u32).collect());
                // The tail is filtered row-at-a-time: tail rows are decoded,
                // so typed selection primitives do not apply to them.
                let tail: Vec<&Row> = overlay
                    .as_ref()
                    .map(|o| {
                        o.live_tail()
                            .filter(|r| pred.eval_bool(r.values()))
                            .collect()
                    })
                    .unwrap_or_default();
                return Ok(materialize_scan(t, table, Some(positions), &tail, required));
            }
            // Generic: filter a materialized chunk row-at-a-time.
            let chunk = exec(input, db, required)?;
            let mut keep = Vec::new();
            for i in 0..chunk.len {
                let row = chunk.row(i, db);
                if pred.eval_bool(&row[..]) {
                    keep.push(i as u32);
                }
            }
            Ok(gather_chunk(&chunk, &keep, db))
        }
        LogicalPlan::Project { input, exprs } => {
            let chunk = exec(input, db, required)?;
            // Col-only projections reuse buffers; computed expressions
            // evaluate per (already filtered) row.
            let cols = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(c) => chunk.cols[*c].clone(),
                    other => {
                        let mut vals = Vec::with_capacity(chunk.len);
                        for i in 0..chunk.len {
                            let row = chunk.row(i, db);
                            vals.push(other.eval(&row[..]));
                        }
                        ColBuf::Val(vals)
                    }
                })
                .collect();
            Ok(Chunk {
                cols,
                len: chunk.len,
            })
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let chunk = exec(input, db, required)?;
            Ok(aggregate_chunk(&chunk, group_by, aggs, db))
        }
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => {
            let lc = exec(left, db, required)?;
            let rc = exec(right, db, required)?;
            Ok(hash_join(&lc, &rc, left_key, right_key, db))
        }
        LogicalPlan::Sort { input, keys } => {
            let chunk = exec(input, db, required)?;
            let mut idx: Vec<u32> = (0..chunk.len as u32).collect();
            // decode keys once (materialized sort keys), then sort positions
            let key_vals: Vec<Vec<Value>> = (0..chunk.len)
                .map(|i| {
                    let row = chunk.row(i, db);
                    keys.iter().map(|k| k.expr.eval(&row[..])).collect()
                })
                .collect();
            idx.sort_by(|&a, &b| {
                for (ki, k) in keys.iter().enumerate() {
                    let ord = cmp_values(&key_vals[a as usize][ki], &key_vals[b as usize][ki]);
                    let ord = if k.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(gather_chunk(&chunk, &idx, db))
        }
        LogicalPlan::Limit { input, n } => {
            let chunk = exec(input, db, required)?;
            let keep: Vec<u32> = (0..chunk.len.min(*n) as u32).collect();
            Ok(gather_chunk(&chunk, &keep, db))
        }
    }
}

/// The visible main-store positions under `overlay`, or `None` when every
/// main row is visible (no tombstones) and the caller can keep the cheaper
/// "all rows" representation.
fn live_positions(t: &Table, overlay: Option<&Overlay<'_>>) -> Option<Vec<u32>> {
    let o = overlay?;
    if o.dead.iter().all(|d| !d) {
        return None;
    }
    Some(
        (0..t.len() as u32)
            .filter(|&i| !o.is_dead(i as usize))
            .collect(),
    )
}

/// Materialize the required columns of `t` at `positions` into a chunk whose
/// column space matches the table schema (unused columns become empty NULL
/// buffers so positional indexing stays valid). `tail` rows (already
/// visibility- and predicate-filtered) are appended after the main rows;
/// string buffers fall back to decoded values in that case because tail
/// strings may not be interned in the main dictionaries.
fn materialize_scan(
    t: &Table,
    name: &str,
    positions: Option<Vec<u32>>,
    tail: &[&Row],
    required: &[(String, Vec<ColId>)],
) -> Chunk {
    let needed: Vec<ColId> = required
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, c)| c.clone())
        .unwrap_or_else(|| (0..t.schema().len()).collect());
    let main_len = positions.as_ref().map(|p| p.len()).unwrap_or(t.len());
    let len = main_len + tail.len();
    let mut cols: Vec<ColBuf> = (0..t.schema().len())
        .map(|_| ColBuf::Val(Vec::new()))
        .collect();
    for &c in &needed {
        let mut buf = fetch(t, name, c, positions.as_deref());
        if !tail.is_empty() {
            if let ColBuf::Code { codes, col, .. } = &buf {
                let dict = t.dict(*col).expect("str col");
                buf = ColBuf::Val(
                    codes
                        .iter()
                        .map(|&code| Value::Str(dict.decode(code).to_owned()))
                        .collect(),
                );
            }
            for row in tail {
                push_tail_value(&mut buf, &row.values()[c]);
            }
        }
        cols[c] = buf;
    }
    // pad unused columns with NULLs (cheap: one shared behaviour)
    for (c, buf) in cols.iter_mut().enumerate() {
        if !needed.contains(&c) {
            *buf = ColBuf::Val(vec![Value::Null; len]);
        }
    }
    Chunk { cols, len }
}

/// Append one decoded tail value to a materialized column buffer. Typed
/// buffers stay typed: tail values are normalized to the column type at
/// write time, so the conversions here cannot fail on visible data.
fn push_tail_value(buf: &mut ColBuf, v: &Value) {
    match buf {
        ColBuf::I32(out) => match v {
            Value::Int32(x) => out.push(*x),
            other => out.push(other.as_i64().expect("normalized tail value") as i32),
        },
        ColBuf::I64(out) => out.push(v.as_i64().expect("normalized tail value")),
        ColBuf::F64(out) => out.push(v.as_f64().expect("normalized tail value")),
        ColBuf::Code { .. } => unreachable!("Code buffers decode before tail append"),
        ColBuf::Val(out) => out.push(v.clone()),
    }
}

/// Positional gather over every buffer of a chunk.
fn gather_chunk(chunk: &Chunk, idx: &[u32], db: &dyn TableProvider) -> Chunk {
    let cols = chunk
        .cols
        .iter()
        .map(|b| match b {
            ColBuf::I32(v) => ColBuf::I32(idx.iter().map(|&i| v[i as usize]).collect()),
            ColBuf::I64(v) => ColBuf::I64(idx.iter().map(|&i| v[i as usize]).collect()),
            ColBuf::F64(v) => ColBuf::F64(idx.iter().map(|&i| v[i as usize]).collect()),
            ColBuf::Code { codes, table, col } => ColBuf::Code {
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
                table: table.clone(),
                col: *col,
            },
            ColBuf::Val(v) => ColBuf::Val(idx.iter().map(|&i| v[i as usize].clone()).collect()),
        })
        .collect();
    let _ = db;
    Chunk {
        cols,
        len: idx.len(),
    }
}

/// Hash aggregation over a materialized chunk.
fn aggregate_chunk(
    chunk: &Chunk,
    group_by: &[Expr],
    aggs: &[AggExpr],
    db: &dyn TableProvider,
) -> Chunk {
    let mut groups: HashMap<GroupKey, (Vec<Value>, Vec<Accumulator>)> = HashMap::new();
    // Scalar aggregates with plain-column args get typed loops (the Fig.-3
    // "aggregate the materialized buffer" primitive).
    if group_by.is_empty()
        && aggs
            .iter()
            .all(|a| matches!(a.arg, Some(Expr::Col(_)) | None))
    {
        let mut accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        for (a, acc) in aggs.iter().zip(accs.iter_mut()) {
            match &a.arg {
                None => {
                    for _ in 0..chunk.len {
                        acc.update_i64(1);
                    }
                    // count(*) counts rows: emulate via count of non-null 1s
                }
                Some(Expr::Col(c)) => match &chunk.cols[*c] {
                    ColBuf::I32(v) => v.iter().for_each(|&x| acc.update_i64(x as i64)),
                    ColBuf::I64(v) => v.iter().for_each(|&x| acc.update_i64(x)),
                    ColBuf::F64(v) => v.iter().for_each(|&x| acc.update_f64(x)),
                    other => {
                        for i in 0..chunk.len {
                            acc.update(&other.value(i, db));
                        }
                    }
                },
                Some(_) => unreachable!("guarded above"),
            }
        }
        let row: Vec<Value> = accs.iter().map(|a| a.finish()).collect();
        return rows_to_chunk(vec![row]);
    }
    for i in 0..chunk.len {
        let row = chunk.row(i, db);
        let key_vals: Vec<Value> = group_by.iter().map(|g| g.eval(&row[..])).collect();
        let key = GroupKey::of(&key_vals);
        let entry = groups.entry(key).or_insert_with(|| {
            (
                key_vals.clone(),
                aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
            )
        });
        for (acc, spec) in entry.1.iter_mut().zip(aggs) {
            match &spec.arg {
                Some(e) => acc.update(&e.eval(&row[..])),
                None => acc.update(&Value::Int32(1)),
            }
        }
    }
    if groups.is_empty() && group_by.is_empty() {
        let accs: Vec<Accumulator> = aggs.iter().map(|a| Accumulator::new(a.func)).collect();
        return rows_to_chunk(vec![accs.iter().map(|a| a.finish()).collect()]);
    }
    let rows: Vec<Vec<Value>> = groups
        .into_values()
        .map(|(mut k, accs)| {
            k.extend(accs.iter().map(|a| a.finish()));
            k
        })
        .collect();
    rows_to_chunk(rows)
}

/// Hash join of two materialized chunks.
fn hash_join(
    lc: &Chunk,
    rc: &Chunk,
    left_key: &Expr,
    right_key: &Expr,
    db: &dyn TableProvider,
) -> Chunk {
    let mut ht: HashMap<GroupKey, Vec<u32>> = HashMap::new();
    for i in 0..lc.len {
        let row = lc.row(i, db);
        let k = left_key.eval(&row[..]);
        if k.is_null() {
            continue;
        }
        ht.entry(GroupKey::single(&k)).or_default().push(i as u32);
    }
    let mut lpos = Vec::new();
    let mut rpos = Vec::new();
    for j in 0..rc.len {
        let row = rc.row(j, db);
        let k = right_key.eval(&row[..]);
        if k.is_null() {
            continue;
        }
        if let Some(ms) = ht.get(&GroupKey::single(&k)) {
            for &m in ms {
                lpos.push(m);
                rpos.push(j as u32);
            }
        }
    }
    let l = gather_chunk(lc, &lpos, db);
    let mut cols = l.cols;
    let r = gather_chunk(rc, &rpos, db);
    cols.extend(r.cols);
    Chunk {
        cols,
        len: lpos.len(),
    }
}

/// Build a chunk of decoded value rows (aggregation outputs).
fn rows_to_chunk(rows: Vec<Vec<Value>>) -> Chunk {
    let width = rows.first().map(|r| r.len()).unwrap_or(0);
    let len = rows.len();
    let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(len); width];
    for row in rows {
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    Chunk {
        cols: cols.into_iter().map(ColBuf::Val).collect(),
        len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::logical::AggFunc;
    use pdsm_storage::{ColumnDef, Schema};

    fn db() -> HashMap<String, Table> {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
                ColumnDef::nullable("f", DataType::Float64),
            ]),
        );
        for i in 0..100 {
            t.insert(&[
                Value::Int32(i),
                Value::Int32(i % 10),
                Value::Str(format!("name-{}", i % 3)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64)
                },
            ])
            .unwrap();
        }
        let mut m = HashMap::new();
        m.insert("t".to_string(), t);
        m
    }

    #[test]
    fn typed_selection_and_fetch() {
        let plan = QueryBuilder::scan("t")
            .filter(
                Expr::col(1)
                    .eq(Expr::lit(3))
                    .and(Expr::col(0).lt(Expr::lit(50))),
            )
            .project(vec![Expr::col(0)])
            .build();
        let out = BulkEngine.execute(&plan, &db()).unwrap();
        let mut got: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![3, 13, 23, 33, 43]);
    }

    #[test]
    fn like_via_dictionary_prescan() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(2).like("name-1"))
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let out = BulkEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.rows[0][0], Value::Int64(33));
    }

    #[test]
    fn nullable_aggregation_skips_nulls() {
        let plan = QueryBuilder::scan("t")
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Count, Expr::col(3)),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build();
        let out = BulkEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.rows[0][0], Value::Int64(75), "25 NULLs skipped");
        assert_eq!(out.rows[0][1], Value::Int64(4950));
    }

    #[test]
    fn group_by_string_column() {
        let plan = QueryBuilder::scan("t")
            .aggregate(vec![Expr::col(2)], vec![AggExpr::count_star()])
            .build();
        let out = BulkEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.len(), 3);
        for r in &out.rows {
            let n = r[1].as_i64().unwrap();
            assert!(n == 33 || n == 34);
        }
    }

    #[test]
    fn join_matches_volcano() {
        use crate::volcano::VolcanoEngine;
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(1).eq(Expr::lit(5)))
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .project(vec![Expr::col(0), Expr::col(6)])
            .build();
        let d = db();
        let a = BulkEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        a.assert_same(&b, "bulk vs volcano join");
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn sort_and_limit_match_volcano() {
        use crate::volcano::VolcanoEngine;
        let plan = QueryBuilder::scan("t")
            .project(vec![Expr::col(1), Expr::col(0)])
            .sort(vec![(Expr::col(0), true), (Expr::col(1), false)])
            .limit(7)
            .build();
        let d = db();
        let a = BulkEngine.execute(&plan, &d).unwrap();
        let b = VolcanoEngine.execute(&plan, &d).unwrap();
        assert_eq!(a.rows, b.rows, "sorted output must match exactly");
    }

    #[test]
    fn is_null_predicate() {
        let plan = QueryBuilder::scan("t")
            .filter(Expr::col(3).is_null())
            .aggregate(vec![], vec![AggExpr::count_star()])
            .build();
        let out = BulkEngine.execute(&plan, &db()).unwrap();
        assert_eq!(out.rows[0][0], Value::Int64(25));
    }
}
