//! Explicit-SIMD inner loops for the compiled engine's hottest kernels.
//!
//! The paper's CPU-efficiency argument is about what the innermost scan
//! loop does per tuple. This module widens that loop: predicate evaluation
//! and the fused filter+aggregate kernels process the immutable main store
//! in fixed-size chunks, as
//!
//! * a **chunked scalar** baseline — branch-free, autovectorization
//!   friendly, bit-identical to the row-at-a-time loops on every platform,
//!   and
//! * an `unsafe` **x86_64 SSE2/AVX2** path behind runtime feature
//!   detection, used only when the column is densely packed
//!   (`TypedCol::as_slice`, i.e. the column lives alone in its partition).
//!
//! Only integer comparisons and integer sums go wide: integer addition is
//! associative, so chunk-reordered accumulation is exactly the scalar
//! result. Float aggregation, tombstoned regions, and the decoded delta
//! tail keep the scalar path — that is what keeps all five engines
//! byte-identical (the same reasoning `pdsm-par` applies to
//! float-sensitive aggregates).
//!
//! The `PDSM_SIMD` knob selects the dispatch (`auto` | `scalar` |
//! `forced`); global counters record engaged SIMD vs scalar chunks and
//! scanned vs zone-pruned blocks so benches and CI can assert the fast
//! path actually ran (surfaced as `Database::scan_stats()`).

use pdsm_plan::expr::CmpOp;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// How wide kernels are dispatched (the `PDSM_SIMD` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Runtime feature detection; wide path when the data allows it.
    Auto,
    /// Chunked scalar only — the differential-testing baseline.
    Scalar,
    /// Like `auto`, but panics if no SIMD instruction set is available:
    /// pins benches/tests to the wide path instead of silently degrading.
    Forced,
}

impl SimdMode {
    fn parse(s: &str) -> Option<SimdMode> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(SimdMode::Auto),
            "scalar" => Some(SimdMode::Scalar),
            "forced" | "force" => Some(SimdMode::Forced),
            _ => None,
        }
    }
}

/// Process-wide programmatic override (tests, benches): 0 = none.
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Override the `PDSM_SIMD` environment knob for this process. `None`
/// restores environment dispatch. Benches use this to compare scalar and
/// wide kernels in one process without mutating the environment.
pub fn set_mode_override(mode: Option<SimdMode>) {
    let v = match mode {
        None => 0,
        Some(SimdMode::Auto) => 1,
        Some(SimdMode::Scalar) => 2,
        Some(SimdMode::Forced) => 3,
    };
    MODE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The active dispatch mode: programmatic override, else `PDSM_SIMD`,
/// else `auto`. Unrecognized values fall back to `auto`.
pub fn mode() -> SimdMode {
    match MODE_OVERRIDE.load(Ordering::Relaxed) {
        1 => return SimdMode::Auto,
        2 => return SimdMode::Scalar,
        3 => return SimdMode::Forced,
        _ => {}
    }
    std::env::var("PDSM_SIMD")
        .ok()
        .and_then(|s| SimdMode::parse(&s))
        .unwrap_or(SimdMode::Auto)
}

/// Is the wide path allowed (and, for `Forced`, available)?
pub fn wide_enabled(mode: SimdMode) -> bool {
    match mode {
        SimdMode::Scalar => false,
        SimdMode::Auto => cfg!(target_arch = "x86_64"),
        SimdMode::Forced => {
            if !cfg!(target_arch = "x86_64") {
                panic!(
                    "PDSM_SIMD=forced but no SIMD instruction set is available \
                     on this architecture"
                );
            }
            true
        }
    }
}

// ---------------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------------

static SIMD_CHUNKS: AtomicU64 = AtomicU64::new(0);
static SCALAR_CHUNKS: AtomicU64 = AtomicU64::new(0);
static BLOCKS_SCANNED: AtomicU64 = AtomicU64::new(0);
static BLOCKS_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide scan counters (`Database::scan_stats()`).
/// "Partitions" are the zone blocks of `pdsm_storage::zonemap` — the
/// horizontal row ranges a scan can skip; a "chunk" is one vectorized
/// inner-loop block (64 rows for predicate masks, [`CHUNK_ROWS`] for the
/// fused kernels).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounters {
    /// Chunks processed by the wide (SSE2/AVX2) path.
    pub simd_chunks: u64,
    /// Chunks processed by the chunked-scalar path.
    pub scalar_chunks: u64,
    /// Zone blocks entered by scans.
    pub partitions_scanned: u64,
    /// Zone blocks skipped entirely via zone-map refutation.
    pub partitions_pruned: u64,
}

/// Read the counters.
pub fn scan_counters() -> ScanCounters {
    ScanCounters {
        simd_chunks: SIMD_CHUNKS.load(Ordering::Relaxed),
        scalar_chunks: SCALAR_CHUNKS.load(Ordering::Relaxed),
        partitions_scanned: BLOCKS_SCANNED.load(Ordering::Relaxed),
        partitions_pruned: BLOCKS_PRUNED.load(Ordering::Relaxed),
    }
}

/// Zero the counters (benches and tests bracket runs with this).
pub fn reset_scan_counters() {
    SIMD_CHUNKS.store(0, Ordering::Relaxed);
    SCALAR_CHUNKS.store(0, Ordering::Relaxed);
    BLOCKS_SCANNED.store(0, Ordering::Relaxed);
    BLOCKS_PRUNED.store(0, Ordering::Relaxed);
}

/// Batched chunk tally — kernels accumulate locally and flush once per
/// call so the hot loops never touch shared cache lines.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChunkStats {
    pub simd: u64,
    pub scalar: u64,
}

impl ChunkStats {
    pub fn flush(self) {
        if self.simd != 0 {
            SIMD_CHUNKS.fetch_add(self.simd, Ordering::Relaxed);
        }
        if self.scalar != 0 {
            SCALAR_CHUNKS.fetch_add(self.scalar, Ordering::Relaxed);
        }
    }
}

/// Record zone blocks entered / skipped by one scan.
pub fn note_blocks(scanned: u64, pruned: u64) {
    if scanned != 0 {
        BLOCKS_SCANNED.fetch_add(scanned, Ordering::Relaxed);
    }
    if pruned != 0 {
        BLOCKS_PRUNED.fetch_add(pruned, Ordering::Relaxed);
    }
}

/// Rows per fused-kernel chunk (the 128–1024 band the cache hierarchy
/// favors; also the unit [`ScanCounters`] tallies for the fused kernels).
pub const CHUNK_ROWS: usize = 256;

// ---------------------------------------------------------------------------
// predicate normalization
// ---------------------------------------------------------------------------

/// An `i32`-domain comparison, normalized from the kernel's `i64` literal.
/// Literals outside the `i32` range make the predicate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormCmp {
    Never,
    Always,
    Cmp(CmpOp, i32),
}

/// Normalize `x as i64 OP v` (x an `i32`) into the `i32` domain.
pub fn normalize_i32_cmp(op: CmpOp, v: i64) -> NormCmp {
    if let Ok(v32) = i32::try_from(v) {
        return NormCmp::Cmp(op, v32);
    }
    let above = v > i32::MAX as i64;
    match op {
        CmpOp::Eq => NormCmp::Never,
        CmpOp::Ne => NormCmp::Always,
        CmpOp::Lt | CmpOp::Le => {
            if above {
                NormCmp::Always
            } else {
                NormCmp::Never
            }
        }
        CmpOp::Gt | CmpOp::Ge => {
            if above {
                NormCmp::Never
            } else {
                NormCmp::Always
            }
        }
    }
}

#[inline(always)]
fn cmp_i32(x: i32, op: CmpOp, v: i32) -> bool {
    match op {
        CmpOp::Eq => x == v,
        CmpOp::Ne => x != v,
        CmpOp::Lt => x < v,
        CmpOp::Le => x <= v,
        CmpOp::Gt => x > v,
        CmpOp::Ge => x >= v,
    }
}

#[inline(always)]
fn cmp_i64(x: i64, op: CmpOp, v: i64) -> bool {
    match op {
        CmpOp::Eq => x == v,
        CmpOp::Ne => x != v,
        CmpOp::Lt => x < v,
        CmpOp::Le => x <= v,
        CmpOp::Gt => x > v,
        CmpOp::Ge => x >= v,
    }
}

// ---------------------------------------------------------------------------
// predicate masks (≤ 64 rows per call)
// ---------------------------------------------------------------------------

/// Evaluate `data[j] OP v` for `j < data.len() (≤ 64)`; bit `j` of the
/// result is the verdict. Dispatches to AVX2/SSE2 when allowed.
pub fn mask_i32(data: &[i32], op: CmpOp, v: i64, wide: bool, stats: &mut ChunkStats) -> u64 {
    debug_assert!(data.len() <= 64);
    let (op, v32) = match normalize_i32_cmp(op, v) {
        NormCmp::Never => return 0,
        NormCmp::Always => return ones(data.len()),
        NormCmp::Cmp(op, v32) => (op, v32),
    };
    #[cfg(target_arch = "x86_64")]
    if wide {
        stats.simd += 1;
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just checked.
            return unsafe { mask_i32_avx2(data, op, v32) };
        }
        // SAFETY: SSE2 is baseline on x86_64.
        return unsafe { mask_i32_sse2(data, op, v32) };
    }
    let _ = wide;
    stats.scalar += 1;
    let mut m = 0u64;
    for (j, &x) in data.iter().enumerate() {
        m |= (cmp_i32(x, op, v32) as u64) << j;
    }
    m
}

/// `i64` variant of [`mask_i32`]. Goes wide only under AVX2 (SSE2 lacks
/// 64-bit compares).
pub fn mask_i64(data: &[i64], op: CmpOp, v: i64, wide: bool, stats: &mut ChunkStats) -> u64 {
    debug_assert!(data.len() <= 64);
    #[cfg(target_arch = "x86_64")]
    if wide && std::arch::is_x86_feature_detected!("avx2") {
        stats.simd += 1;
        // SAFETY: AVX2 presence just checked.
        return unsafe { mask_i64_avx2(data, op, v) };
    }
    let _ = wide;
    stats.scalar += 1;
    let mut m = 0u64;
    for (j, &x) in data.iter().enumerate() {
        m |= (cmp_i64(x, op, v) as u64) << j;
    }
    m
}

/// The all-ones mask of `len` bits.
#[inline(always)]
pub fn ones(len: usize) -> u64 {
    debug_assert!(len <= 64);
    if len == 64 {
        !0
    } else {
        (1u64 << len) - 1
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask_i32_avx2(data: &[i32], op: CmpOp, v: i32) -> u64 {
    use std::arch::x86_64::*;
    let vv = _mm256_set1_epi32(v);
    let mut m = 0u64;
    let mut j = 0;
    while j + 8 <= data.len() {
        let x = _mm256_loadu_si256(data.as_ptr().add(j) as *const __m256i);
        let hit = match op {
            CmpOp::Eq => _mm256_cmpeq_epi32(x, vv),
            CmpOp::Ne => not256(_mm256_cmpeq_epi32(x, vv)),
            CmpOp::Gt => _mm256_cmpgt_epi32(x, vv),
            CmpOp::Le => not256(_mm256_cmpgt_epi32(x, vv)),
            CmpOp::Lt => _mm256_cmpgt_epi32(vv, x),
            CmpOp::Ge => not256(_mm256_cmpgt_epi32(vv, x)),
        };
        let bits = _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32 as u64;
        m |= bits << j;
        j += 8;
    }
    for (k, &x) in data.iter().enumerate().skip(j) {
        m |= (cmp_i32(x, op, v) as u64) << k;
    }
    m
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn not256(x: std::arch::x86_64::__m256i) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    _mm256_xor_si256(x, _mm256_set1_epi32(-1))
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn mask_i32_sse2(data: &[i32], op: CmpOp, v: i32) -> u64 {
    use std::arch::x86_64::*;
    let vv = _mm_set1_epi32(v);
    let not = |x| _mm_xor_si128(x, _mm_set1_epi32(-1));
    let mut m = 0u64;
    let mut j = 0;
    while j + 4 <= data.len() {
        let x = _mm_loadu_si128(data.as_ptr().add(j) as *const __m128i);
        let hit = match op {
            CmpOp::Eq => _mm_cmpeq_epi32(x, vv),
            CmpOp::Ne => not(_mm_cmpeq_epi32(x, vv)),
            CmpOp::Gt => _mm_cmpgt_epi32(x, vv),
            CmpOp::Le => not(_mm_cmpgt_epi32(x, vv)),
            CmpOp::Lt => _mm_cmplt_epi32(x, vv),
            CmpOp::Ge => not(_mm_cmplt_epi32(x, vv)),
        };
        let bits = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u32 as u64;
        m |= bits << j;
        j += 4;
    }
    for (k, &x) in data.iter().enumerate().skip(j) {
        m |= (cmp_i32(x, op, v) as u64) << k;
    }
    m
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mask_i64_avx2(data: &[i64], op: CmpOp, v: i64) -> u64 {
    use std::arch::x86_64::*;
    let vv = _mm256_set1_epi64x(v);
    let mut m = 0u64;
    let mut j = 0;
    while j + 4 <= data.len() {
        let x = _mm256_loadu_si256(data.as_ptr().add(j) as *const __m256i);
        let hit = match op {
            CmpOp::Eq => _mm256_cmpeq_epi64(x, vv),
            CmpOp::Ne => not256(_mm256_cmpeq_epi64(x, vv)),
            CmpOp::Gt => _mm256_cmpgt_epi64(x, vv),
            CmpOp::Le => not256(_mm256_cmpgt_epi64(x, vv)),
            CmpOp::Lt => _mm256_cmpgt_epi64(vv, x),
            CmpOp::Ge => not256(_mm256_cmpgt_epi64(vv, x)),
        };
        let bits = _mm256_movemask_pd(_mm256_castsi256_pd(hit)) as u32 as u64;
        m |= bits << j;
        j += 4;
    }
    for (k, &x) in data.iter().enumerate().skip(j) {
        m |= (cmp_i64(x, op, v) as u64) << k;
    }
    m
}

// ---------------------------------------------------------------------------
// fused filter + sum (the Fig. 2c inner loop)
// ---------------------------------------------------------------------------

/// Fused filter-count / filter-sum over densely packed `i32` columns:
/// returns the number of rows of `pred` satisfying `OP v` and adds each
/// qualifying row's `aggs[k]` value into `sums[k]`. All slices share
/// indexing (`aggs[k].len() == pred.len()`). Masked integer adds make the
/// wide path exactly the scalar result in any chunk order.
pub fn fused_filter_sum_i32(
    pred: &[i32],
    op: CmpOp,
    v: i64,
    aggs: &[&[i32]],
    sums: &mut [i64],
    wide: bool,
    stats: &mut ChunkStats,
) -> u64 {
    debug_assert_eq!(aggs.len(), sums.len());
    debug_assert!(aggs.iter().all(|a| a.len() == pred.len()));
    let chunks = pred.len().div_ceil(CHUNK_ROWS).max(1) as u64;
    let (op, v32) = match normalize_i32_cmp(op, v) {
        NormCmp::Never => {
            stats.scalar += 1;
            return 0;
        }
        NormCmp::Always => {
            stats.scalar += chunks;
            for (s, a) in sums.iter_mut().zip(aggs) {
                *s += a.iter().map(|&x| x as i64).sum::<i64>();
            }
            return pred.len() as u64;
        }
        NormCmp::Cmp(op, v32) => (op, v32),
    };
    #[cfg(target_arch = "x86_64")]
    if wide {
        stats.simd += chunks;
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence just checked.
            return unsafe { fused_avx2(pred, op, v32, aggs, sums) };
        }
        // SAFETY: SSE2 is baseline on x86_64.
        return unsafe { fused_sse2(pred, op, v32, aggs, sums) };
    }
    let _ = wide;
    stats.scalar += chunks;
    fused_scalar(pred, op, v32, aggs, sums)
}

/// The chunked, branch-free scalar baseline: the qualifying mask becomes a
/// 0/−1 multiplier, so the loop has no data-dependent branches and the
/// compiler is free to autovectorize it.
fn fused_scalar(pred: &[i32], op: CmpOp, v: i32, aggs: &[&[i32]], sums: &mut [i64]) -> u64 {
    let mut hits = 0u64;
    match aggs {
        [] => {
            for &x in pred {
                hits += cmp_i32(x, op, v) as u64;
            }
        }
        [a] => {
            let (mut h, mut s) = (0u64, sums[0]);
            for (&x, &y) in pred.iter().zip(a.iter()) {
                let m = cmp_i32(x, op, v) as i64; // 0 or 1
                h += m as u64;
                s += m * y as i64;
            }
            hits = h;
            sums[0] = s;
        }
        _ => {
            for (i, &x) in pred.iter().enumerate() {
                let m = cmp_i32(x, op, v) as i64;
                hits += m as u64;
                for (s, a) in sums.iter_mut().zip(aggs) {
                    *s += m * a[i] as i64;
                }
            }
        }
    }
    hits
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fused_avx2(pred: &[i32], op: CmpOp, v: i32, aggs: &[&[i32]], sums: &mut [i64]) -> u64 {
    use std::arch::x86_64::*;
    let vv = _mm256_set1_epi32(v);
    let mut hits = 0u64;
    // One 4×i64 accumulator per aggregate column (≤ 8 in practice; spill
    // to a heap vec beyond a small stack arity is not worth the bother).
    let mut accs = vec![_mm256_setzero_si256(); aggs.len()];
    let n8 = pred.len() - pred.len() % 8;
    let mut i = 0;
    while i < n8 {
        let x = _mm256_loadu_si256(pred.as_ptr().add(i) as *const __m256i);
        let hit = match op {
            CmpOp::Eq => _mm256_cmpeq_epi32(x, vv),
            CmpOp::Ne => not256(_mm256_cmpeq_epi32(x, vv)),
            CmpOp::Gt => _mm256_cmpgt_epi32(x, vv),
            CmpOp::Le => not256(_mm256_cmpgt_epi32(x, vv)),
            CmpOp::Lt => _mm256_cmpgt_epi32(vv, x),
            CmpOp::Ge => not256(_mm256_cmpgt_epi32(vv, x)),
        };
        let bits = _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32;
        hits += bits.count_ones() as u64;
        if bits != 0 {
            for (k, a) in aggs.iter().enumerate() {
                let y = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let ym = _mm256_and_si256(y, hit); // losers become 0
                let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(ym));
                let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(ym, 1));
                accs[k] = _mm256_add_epi64(accs[k], _mm256_add_epi64(lo, hi));
            }
        }
        i += 8;
    }
    for (k, acc) in accs.iter().enumerate() {
        let mut lanes = [0i64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *acc);
        sums[k] += lanes.iter().sum::<i64>();
    }
    if n8 < pred.len() {
        hits += fused_scalar(&pred[n8..], op, v, &tails(aggs, n8), &mut sums[..]);
    }
    hits
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn fused_sse2(pred: &[i32], op: CmpOp, v: i32, aggs: &[&[i32]], sums: &mut [i64]) -> u64 {
    use std::arch::x86_64::*;
    let vv = _mm_set1_epi32(v);
    let not = |x| _mm_xor_si128(x, _mm_set1_epi32(-1));
    let mut hits = 0u64;
    let mut accs = vec![_mm_setzero_si128(); aggs.len()];
    let n4 = pred.len() - pred.len() % 4;
    let mut i = 0;
    while i < n4 {
        let x = _mm_loadu_si128(pred.as_ptr().add(i) as *const __m128i);
        let hit = match op {
            CmpOp::Eq => _mm_cmpeq_epi32(x, vv),
            CmpOp::Ne => not(_mm_cmpeq_epi32(x, vv)),
            CmpOp::Gt => _mm_cmpgt_epi32(x, vv),
            CmpOp::Le => not(_mm_cmpgt_epi32(x, vv)),
            CmpOp::Lt => _mm_cmplt_epi32(x, vv),
            CmpOp::Ge => not(_mm_cmplt_epi32(x, vv)),
        };
        let bits = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u32;
        hits += bits.count_ones() as u64;
        if bits != 0 {
            for (k, a) in aggs.iter().enumerate() {
                let y = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
                let ym = _mm_and_si128(y, hit);
                // Sign-extend the four masked i32 lanes into 2×2 i64 lanes.
                let sign = _mm_srai_epi32::<31>(ym);
                let lo = _mm_unpacklo_epi32(ym, sign);
                let hi = _mm_unpackhi_epi32(ym, sign);
                accs[k] = _mm_add_epi64(accs[k], _mm_add_epi64(lo, hi));
            }
        }
        i += 4;
    }
    for (k, acc) in accs.iter().enumerate() {
        let mut lanes = [0i64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, *acc);
        sums[k] += lanes[0] + lanes[1];
    }
    if n4 < pred.len() {
        hits += fused_scalar(&pred[n4..], op, v, &tails(aggs, n4), &mut sums[..]);
    }
    hits
}

#[cfg(target_arch = "x86_64")]
fn tails<'a>(aggs: &[&'a [i32]], from: usize) -> Vec<&'a [i32]> {
    aggs.iter().map(|a| &a[from..]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_mask(data: &[i32], op: CmpOp, v: i64) -> u64 {
        let mut m = 0u64;
        for (j, &x) in data.iter().enumerate() {
            if op.matches((x as i64).cmp(&v)) {
                m |= 1 << j;
            }
        }
        m
    }

    fn ref_fused(pred: &[i32], op: CmpOp, v: i64, aggs: &[&[i32]]) -> (u64, Vec<i64>) {
        let mut hits = 0u64;
        let mut sums = vec![0i64; aggs.len()];
        for (i, &x) in pred.iter().enumerate() {
            if op.matches((x as i64).cmp(&v)) {
                hits += 1;
                for (s, a) in sums.iter_mut().zip(aggs) {
                    *s += a[i] as i64;
                }
            }
        }
        (hits, sums)
    }

    fn ops() -> [CmpOp; 6] {
        [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ]
    }

    /// Deterministic pseudo-random i32s (SplitMix-ish).
    fn gen(n: usize, seed: u64, span: i32) -> Vec<i32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 27;
                (z as i32) % span
            })
            .collect()
    }

    #[test]
    fn masks_agree_with_reference_all_ops_and_lengths() {
        let mut stats = ChunkStats::default();
        for len in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 31, 33, 63, 64] {
            let data = gen(len, len as u64 + 1, 50);
            for op in ops() {
                for v in [-3i64, 0, 7, 49, i32::MAX as i64 + 5, i32::MIN as i64 - 5] {
                    let want = ref_mask(&data, op, v);
                    for wide in [false, true] {
                        assert_eq!(
                            mask_i32(&data, op, v, wide, &mut stats),
                            want,
                            "i32 len={len} op={op:?} v={v} wide={wide}"
                        );
                    }
                    let data64: Vec<i64> = data.iter().map(|&x| x as i64).collect();
                    let mut want64 = 0u64;
                    for (j, &x) in data64.iter().enumerate() {
                        if op.matches(x.cmp(&v)) {
                            want64 |= 1 << j;
                        }
                    }
                    for wide in [false, true] {
                        assert_eq!(
                            mask_i64(&data64, op, v, wide, &mut stats),
                            want64,
                            "i64 len={len} op={op:?} v={v} wide={wide}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_agrees_with_reference_across_tail_lengths_and_arities() {
        let mut stats = ChunkStats::default();
        for len in [0usize, 1, 5, 8, 17, 64, 255, 256, 1000, 1024] {
            let pred = gen(len, 42, 10);
            let a = gen(len, 43, 1000);
            let b = gen(len, 44, 1000);
            let c: Vec<i32> = gen(len, 45, 2).iter().map(|&x| x * i32::MAX).collect();
            for op in ops() {
                for v in [0i64, 4, 9, i32::MAX as i64 + 1] {
                    for aggs in [vec![], vec![&a[..]], vec![&a[..], &b[..], &c[..]]] {
                        let (want_hits, want_sums) = ref_fused(&pred, op, v, &aggs);
                        for wide in [false, true] {
                            let mut sums = vec![0i64; aggs.len()];
                            let hits = fused_filter_sum_i32(
                                &pred, op, v, &aggs, &mut sums, wide, &mut stats,
                            );
                            assert_eq!(hits, want_hits, "len={len} op={op:?} v={v} wide={wide}");
                            assert_eq!(sums, want_sums, "len={len} op={op:?} v={v} wide={wide}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fused_accumulates_on_top_of_existing_sums() {
        let pred = vec![1i32; 100];
        let a = vec![2i32; 100];
        let mut stats = ChunkStats::default();
        for wide in [false, true] {
            let mut sums = vec![10i64];
            let hits =
                fused_filter_sum_i32(&pred, CmpOp::Eq, 1, &[&a[..]], &mut sums, wide, &mut stats);
            assert_eq!(hits, 100);
            assert_eq!(sums, vec![210]);
        }
    }

    #[test]
    fn mode_parse_and_override() {
        assert_eq!(SimdMode::parse("auto"), Some(SimdMode::Auto));
        assert_eq!(SimdMode::parse("SCALAR"), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::parse("forced"), Some(SimdMode::Forced));
        assert_eq!(SimdMode::parse("bogus"), None);
        set_mode_override(Some(SimdMode::Scalar));
        assert_eq!(mode(), SimdMode::Scalar);
        assert!(!wide_enabled(mode()));
        set_mode_override(None);
    }

    #[test]
    fn counters_tick_and_reset() {
        reset_scan_counters();
        let mut stats = ChunkStats::default();
        let data = gen(64, 7, 100);
        let _ = mask_i32(&data, CmpOp::Lt, 50, false, &mut stats);
        let _ = mask_i32(
            &data,
            CmpOp::Lt,
            50,
            cfg!(target_arch = "x86_64"),
            &mut stats,
        );
        stats.flush();
        note_blocks(3, 5);
        let c = scan_counters();
        assert!(c.scalar_chunks >= 1);
        #[cfg(target_arch = "x86_64")]
        assert!(c.simd_chunks >= 1);
        assert_eq!(c.partitions_scanned, 3);
        assert_eq!(c.partitions_pruned, 5);
        reset_scan_counters();
        assert_eq!(scan_counters(), ScanCounters::default());
    }
}
