//! A simple growable bitmap used for per-column validity (NULL) tracking.

/// Growable bitset backed by `u64` words. Bit `i` set means "valid"
/// (non-NULL) when used as a validity mask.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bitmap with `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let word = if value { u64::MAX } else { 0 };
        let mut bm = Bitmap {
            words: vec![word; nwords],
            len,
        };
        bm.clear_tail();
        bm
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        let idx = self.len;
        self.len += 1;
        if idx / 64 == self.words.len() {
            self.words.push(0);
        }
        if value {
            self.words[idx / 64] |= 1u64 << (idx % 64);
        }
    }

    /// Read bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The backing words (persistence only; bit `i` lives in
    /// `words[i / 64]` at `1 << (i % 64)`).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild from persisted words. Tail bits past `len` are cleared so
    /// the invariant `count_ones` relies on holds whatever was on disk.
    pub(crate) fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(words.len() == len.div_ceil(64), "word count mismatch");
        let mut bm = Bitmap { words, len };
        bm.clear_tail();
        bm
    }

    /// Zero any bits beyond `len` in the last word (keeps `count_ones` exact).
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut bm = Bitmap::new();
        for i in 0..200 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 200);
        for i in 0..200 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        bm.set(1, true);
        assert!(bm.get(1));
        bm.set(0, false);
        assert!(!bm.get(0));
    }

    #[test]
    fn filled_counts() {
        let bm = Bitmap::filled(130, true);
        assert_eq!(bm.count_ones(), 130);
        let bm = Bitmap::filled(130, false);
        assert_eq!(bm.count_ones(), 0);
        assert!(Bitmap::new().is_empty());
    }

    #[test]
    fn count_ones_matches_iter() {
        let mut bm = Bitmap::new();
        for i in 0..1000 {
            bm.push(i % 7 < 3);
        }
        assert_eq!(bm.count_ones(), bm.iter().filter(|&b| b).count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::filled(3, true).get(3);
    }
}
