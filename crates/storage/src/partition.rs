//! A vertical partition: a fixed-stride array of tuple fragments.
//!
//! This is the paper's unit of storage. A partition holding columns
//! `[B,C,D,E]` of 4-byte ints has `R.w = 16`; scanning only `B` touches every
//! fragment but uses `u = 4` bytes of each — exactly the situation the
//! `s_trav_cr` access pattern models.
//!
//! Values are stored little-endian at fixed offsets inside each fragment.
//! Field offsets are padded to the field's natural alignment and the stride
//! to the fragment's maximal alignment, as a row store would.

use crate::bitmap::Bitmap;
use crate::error::{Error, Result};
use crate::schema::ColId;
use crate::types::DataType;
use std::marker::PhantomData;

/// An untyped fixed-width field value, the partition-level currency.
/// Strings appear here as dictionary codes (`U32`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RawVal {
    Null,
    I32(i32),
    I64(i64),
    F64(f64),
    U32(u32),
}

/// One vertical partition of a table.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Table-level column ids, in fragment field order.
    cols: Vec<ColId>,
    /// Types per field.
    types: Vec<DataType>,
    /// Byte offset of each field inside a fragment.
    offsets: Vec<usize>,
    /// Fragment width in bytes (`R.w`), padded to max field alignment.
    stride: usize,
    /// The arena: `len * stride` bytes.
    data: Vec<u8>,
    /// Number of fragments (`R.n`).
    len: usize,
    /// Validity bitmap per field; `None` for non-nullable fields.
    validity: Vec<Option<Bitmap>>,
}

impl Partition {
    /// Create an empty partition for the given member columns.
    /// `nullable[i]` states whether field `i` needs a validity bitmap.
    pub fn new(cols: Vec<ColId>, types: Vec<DataType>, nullable: Vec<bool>) -> Self {
        assert_eq!(cols.len(), types.len());
        assert_eq!(cols.len(), nullable.len());
        let mut offsets = Vec::with_capacity(types.len());
        let mut off = 0usize;
        let mut max_align = 1usize;
        for t in &types {
            let a = t.align();
            max_align = max_align.max(a);
            off = off.next_multiple_of(a);
            offsets.push(off);
            off += t.width();
        }
        let stride = off.next_multiple_of(max_align);
        let validity = nullable
            .into_iter()
            .map(|n| if n { Some(Bitmap::new()) } else { None })
            .collect();
        Partition {
            cols,
            types,
            offsets,
            stride,
            data: Vec::new(),
            len: 0,
            validity,
        }
    }

    /// Member column ids in fragment order.
    pub fn cols(&self) -> &[ColId] {
        &self.cols
    }

    /// Field types in fragment order.
    pub fn types(&self) -> &[DataType] {
        &self.types
    }

    /// Fragment width in bytes (the cost model's `R.w`).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Byte offset of field `slot` inside a fragment.
    #[inline]
    pub fn offset(&self, slot: usize) -> usize {
        self.offsets[slot]
    }

    /// Number of stored fragments (the cost model's `R.n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no fragments stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total bytes held by the value arena.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// Position of table column `col` within this partition's fields.
    pub fn slot_of(&self, col: ColId) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }

    /// Reserve space for `additional` more fragments.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional * self.stride);
    }

    /// Append one fragment. `vals` must be in field order with types matching
    /// the partition's field types (`U32` for `Str` fields).
    pub fn push_row(&mut self, vals: &[RawVal]) -> Result<()> {
        if vals.len() != self.cols.len() {
            return Err(Error::ArityMismatch {
                expected: self.cols.len(),
                got: vals.len(),
            });
        }
        let start = self.data.len();
        self.data.resize(start + self.stride, 0);
        for (slot, v) in vals.iter().enumerate() {
            let off = start + self.offsets[slot];
            let ty = self.types[slot];
            let valid = !matches!(v, RawVal::Null);
            match (v, ty) {
                (RawVal::Null, _) => {} // leave zeroed
                (RawVal::I32(x), DataType::Int32) => {
                    self.data[off..off + 4].copy_from_slice(&x.to_le_bytes())
                }
                (RawVal::I64(x), DataType::Int64) => {
                    self.data[off..off + 8].copy_from_slice(&x.to_le_bytes())
                }
                (RawVal::F64(x), DataType::Float64) => {
                    self.data[off..off + 8].copy_from_slice(&x.to_le_bytes())
                }
                (RawVal::U32(x), DataType::Str) => {
                    self.data[off..off + 4].copy_from_slice(&x.to_le_bytes())
                }
                (v, ty) => {
                    // roll back the partial fragment before erroring
                    self.data.truncate(start);
                    return Err(Error::TypeMismatch {
                        column: format!("col#{}", self.cols[slot]),
                        expected: ty.name(),
                        got: match v {
                            RawVal::I32(_) => "I32",
                            RawVal::I64(_) => "I64",
                            RawVal::F64(_) => "F64",
                            RawVal::U32(_) => "U32",
                            RawVal::Null => "Null",
                        },
                    });
                }
            }
            if let Some(bm) = &mut self.validity[slot] {
                bm.push(valid);
            } else if !valid {
                self.data.truncate(start);
                return Err(Error::NullViolation(format!("col#{}", self.cols[slot])));
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Read field `slot` of fragment `row` as an untyped value.
    pub fn get_raw(&self, row: usize, slot: usize) -> Result<RawVal> {
        if row >= self.len {
            return Err(Error::RowOutOfRange { row, len: self.len });
        }
        if let Some(bm) = &self.validity[slot] {
            if !bm.get(row) {
                return Ok(RawVal::Null);
            }
        }
        let off = row * self.stride + self.offsets[slot];
        Ok(match self.types[slot] {
            DataType::Int32 => RawVal::I32(i32::from_le_bytes(
                self.data[off..off + 4].try_into().unwrap(),
            )),
            DataType::Int64 => RawVal::I64(i64::from_le_bytes(
                self.data[off..off + 8].try_into().unwrap(),
            )),
            DataType::Float64 => RawVal::F64(f64::from_le_bytes(
                self.data[off..off + 8].try_into().unwrap(),
            )),
            DataType::Str => RawVal::U32(u32::from_le_bytes(
                self.data[off..off + 4].try_into().unwrap(),
            )),
        })
    }

    /// Overwrite field `slot` of fragment `row`.
    pub fn set_raw(&mut self, row: usize, slot: usize, v: RawVal) -> Result<()> {
        if row >= self.len {
            return Err(Error::RowOutOfRange { row, len: self.len });
        }
        let off = row * self.stride + self.offsets[slot];
        let ty = self.types[slot];
        let valid = !matches!(v, RawVal::Null);
        match (v, ty) {
            (RawVal::Null, _) => {
                if self.validity[slot].is_none() {
                    return Err(Error::NullViolation(format!("col#{}", self.cols[slot])));
                }
            }
            (RawVal::I32(x), DataType::Int32) => {
                self.data[off..off + 4].copy_from_slice(&x.to_le_bytes())
            }
            (RawVal::I64(x), DataType::Int64) => {
                self.data[off..off + 8].copy_from_slice(&x.to_le_bytes())
            }
            (RawVal::F64(x), DataType::Float64) => {
                self.data[off..off + 8].copy_from_slice(&x.to_le_bytes())
            }
            (RawVal::U32(x), DataType::Str) => {
                self.data[off..off + 4].copy_from_slice(&x.to_le_bytes())
            }
            _ => {
                return Err(Error::TypeMismatch {
                    column: format!("col#{}", self.cols[slot]),
                    expected: ty.name(),
                    got: "incompatible RawVal",
                })
            }
        }
        if let Some(bm) = &mut self.validity[slot] {
            bm.set(row, valid);
        }
        Ok(())
    }

    /// Validity of field `slot` at `row` (true = non-NULL).
    #[inline]
    pub fn is_valid(&self, row: usize, slot: usize) -> bool {
        match &self.validity[slot] {
            Some(bm) => bm.get(row),
            None => true,
        }
    }

    /// Validity bitmap of field `slot`, if the field is nullable.
    pub fn validity(&self, slot: usize) -> Option<&Bitmap> {
        self.validity[slot].as_ref()
    }

    /// Raw arena bytes (used by the trace generator in `pdsm-cachesim`).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Overwrite this (empty, freshly constructed) partition's contents
    /// from persisted state. Geometry (cols/types/offsets/stride) is
    /// derived deterministically by [`Partition::new`], so only the arena
    /// and validity bitmaps travel to disk.
    pub(crate) fn restore(&mut self, data: Vec<u8>, len: usize, validity: Vec<Option<Bitmap>>) {
        assert_eq!(data.len(), len * self.stride, "arena size mismatch");
        assert_eq!(validity.len(), self.cols.len(), "validity arity mismatch");
        for (slot, v) in validity.iter().enumerate() {
            assert_eq!(
                v.is_some(),
                self.validity[slot].is_some(),
                "nullability mismatch at slot {slot}"
            );
            if let Some(bm) = v {
                assert_eq!(bm.len(), len, "validity length mismatch at slot {slot}");
            }
        }
        self.data = data;
        self.len = len;
        self.validity = validity;
    }

    fn typed_col<T>(&self, slot: usize, want: &[DataType]) -> TypedCol<'_, T> {
        let ty = self.types[slot];
        assert!(
            want.contains(&ty),
            "field {slot} has type {ty}, reader wants {want:?}"
        );
        TypedCol {
            data: &self.data,
            offset: self.offsets[slot],
            stride: self.stride,
            len: self.len,
            _t: PhantomData,
        }
    }

    /// Zero-cost typed reader over an `Int32` field.
    pub fn i32_col(&self, slot: usize) -> I32Col<'_> {
        self.typed_col(slot, &[DataType::Int32])
    }

    /// Zero-cost typed reader over an `Int64` field.
    pub fn i64_col(&self, slot: usize) -> I64Col<'_> {
        self.typed_col(slot, &[DataType::Int64])
    }

    /// Zero-cost typed reader over a `Float64` field.
    pub fn f64_col(&self, slot: usize) -> F64Col<'_> {
        self.typed_col(slot, &[DataType::Float64])
    }

    /// Zero-cost typed reader over a `Str` field's dictionary codes.
    pub fn u32_col(&self, slot: usize) -> U32Col<'_> {
        self.typed_col(slot, &[DataType::Str])
    }
}

/// A strided typed view over one field of a partition. `get` compiles to a
/// single unaligned load — the inner-loop primitive of the compiled engine.
#[derive(Clone, Copy)]
pub struct TypedCol<'a, T> {
    data: &'a [u8],
    offset: usize,
    stride: usize,
    len: usize,
    _t: PhantomData<T>,
}

/// Reader over `i32` fields.
pub type I32Col<'a> = TypedCol<'a, i32>;
/// Reader over `i64` fields.
pub type I64Col<'a> = TypedCol<'a, i64>;
/// Reader over `f64` fields.
pub type F64Col<'a> = TypedCol<'a, f64>;
/// Reader over dictionary-code fields.
pub type U32Col<'a> = TypedCol<'a, u32>;

macro_rules! impl_typed_col {
    ($t:ty) => {
        impl<'a> TypedCol<'a, $t> {
            /// Number of rows.
            #[inline(always)]
            pub fn len(&self) -> usize {
                self.len
            }

            /// True iff the view has no rows.
            #[inline(always)]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Read the value at `row`.
            ///
            /// Bounds are checked only via `debug_assert`: the view was
            /// constructed over a well-formed arena (`len * stride` bytes)
            /// and engines iterate `0..len`, so a release-mode check in the
            /// innermost loop would only tax the very loops the paper's CPU
            /// efficiency argument is about.
            #[inline(always)]
            pub fn get(&self, row: usize) -> $t {
                debug_assert!(row < self.len);
                const W: usize = std::mem::size_of::<$t>();
                let off = row * self.stride + self.offset;
                debug_assert!(off + W <= self.data.len());
                unsafe {
                    let p = self.data.as_ptr().add(off) as *const $t;
                    p.read_unaligned()
                }
            }

            /// Iterate all values in row order.
            pub fn iter(&self) -> impl Iterator<Item = $t> + '_ {
                (0..self.len).map(move |i| self.get(i))
            }

            /// Byte distance between consecutive values (the partition's
            /// fragment stride).
            #[inline(always)]
            pub fn stride(&self) -> usize {
                self.stride
            }

            /// The values as one contiguous typed slice, when the field is
            /// densely packed (the column lives alone in its partition, so
            /// stride == value width) *and* the arena happens to be aligned
            /// for the type. This is the entry ticket to the SIMD kernels
            /// in `pdsm-exec`; callers fall back to strided `get` loops
            /// when it returns `None`.
            pub fn as_slice(&self) -> Option<&'a [$t]> {
                const W: usize = std::mem::size_of::<$t>();
                if self.stride != W {
                    return None;
                }
                let bytes = self.data.get(self.offset..self.offset + self.len * W)?;
                // SAFETY: every $t bit pattern is a valid value; align_to
                // only yields the middle when alignment holds.
                let (pre, mid, _) = unsafe { bytes.align_to::<$t>() };
                if pre.is_empty() && mid.len() == self.len {
                    Some(mid)
                } else {
                    None
                }
            }
        }
    };
}

impl_typed_col!(i32);
impl_typed_col!(i64);
impl_typed_col!(f64);
impl_typed_col!(u32);

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> Partition {
        // (i32, f64, str-code) fragment: offsets 0, 8, 16; stride 24.
        Partition::new(
            vec![0, 1, 2],
            vec![DataType::Int32, DataType::Float64, DataType::Str],
            vec![false, true, false],
        )
    }

    #[test]
    fn offsets_respect_alignment() {
        let p = part();
        assert_eq!(p.offset(0), 0);
        assert_eq!(p.offset(1), 8); // padded past the i32
        assert_eq!(p.offset(2), 16);
        assert_eq!(p.stride(), 24); // padded to 8-byte alignment
    }

    #[test]
    fn push_and_read_back() {
        let mut p = part();
        p.push_row(&[RawVal::I32(7), RawVal::F64(1.5), RawVal::U32(3)])
            .unwrap();
        p.push_row(&[RawVal::I32(-1), RawVal::Null, RawVal::U32(0)])
            .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.get_raw(0, 0).unwrap(), RawVal::I32(7));
        assert_eq!(p.get_raw(0, 1).unwrap(), RawVal::F64(1.5));
        assert_eq!(p.get_raw(1, 1).unwrap(), RawVal::Null);
        assert!(!p.is_valid(1, 1));
        assert!(p.is_valid(0, 1));
        assert!(matches!(
            p.get_raw(5, 0),
            Err(Error::RowOutOfRange { row: 5, len: 2 })
        ));
    }

    #[test]
    fn null_in_non_nullable_rejected_and_rolled_back() {
        let mut p = part();
        let err = p
            .push_row(&[RawVal::Null, RawVal::F64(0.0), RawVal::U32(0)])
            .unwrap_err();
        assert!(matches!(err, Error::NullViolation(_)));
        assert_eq!(p.len(), 0);
        assert_eq!(p.byte_size(), 0, "partial fragment must be rolled back");
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut p = part();
        let err = p
            .push_row(&[RawVal::F64(1.0), RawVal::F64(0.0), RawVal::U32(0)])
            .unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn typed_readers_see_strided_values() {
        let mut p = part();
        for i in 0..100 {
            p.push_row(&[
                RawVal::I32(i),
                RawVal::F64(i as f64 * 0.5),
                RawVal::U32(i as u32 * 2),
            ])
            .unwrap();
        }
        let a = p.i32_col(0);
        let b = p.f64_col(1);
        let c = p.u32_col(2);
        for i in 0..100usize {
            assert_eq!(a.get(i), i as i32);
            assert_eq!(b.get(i), i as f64 * 0.5);
            assert_eq!(c.get(i), i as u32 * 2);
        }
        assert_eq!(a.iter().map(|v| v as i64).sum::<i64>(), 4950);
    }

    #[test]
    fn set_raw_updates_in_place() {
        let mut p = part();
        p.push_row(&[RawVal::I32(1), RawVal::F64(2.0), RawVal::U32(3)])
            .unwrap();
        p.set_raw(0, 0, RawVal::I32(42)).unwrap();
        p.set_raw(0, 1, RawVal::Null).unwrap();
        assert_eq!(p.get_raw(0, 0).unwrap(), RawVal::I32(42));
        assert_eq!(p.get_raw(0, 1).unwrap(), RawVal::Null);
        // writing a value again revalidates
        p.set_raw(0, 1, RawVal::F64(9.0)).unwrap();
        assert_eq!(p.get_raw(0, 1).unwrap(), RawVal::F64(9.0));
        assert!(p.set_raw(0, 0, RawVal::Null).is_err());
        assert!(p.set_raw(3, 0, RawVal::I32(0)).is_err());
    }

    #[test]
    fn as_slice_only_for_densely_packed_fields() {
        // Multi-field partition: stride 24 ≠ 4, so no contiguous view.
        let mut p = part();
        p.push_row(&[RawVal::I32(1), RawVal::F64(2.0), RawVal::U32(3)])
            .unwrap();
        assert!(p.i32_col(0).as_slice().is_none());
        assert!(p.f64_col(1).as_slice().is_none());

        // Single-column partition: stride == width, contiguous view works.
        let mut lone = Partition::new(vec![0], vec![DataType::Int32], vec![false]);
        for i in 0..1000 {
            lone.push_row(&[RawVal::I32(i)]).unwrap();
        }
        let col = lone.i32_col(0);
        let s = col.as_slice().expect("packed i32 column is contiguous");
        assert_eq!(s.len(), 1000);
        assert!(s.iter().enumerate().all(|(i, &v)| v == i as i32));
        assert_eq!(col.stride(), 4);

        // Empty packed column: a Some(&[]) view, not a None.
        let empty = Partition::new(vec![0], vec![DataType::Int64], vec![false]);
        assert_eq!(empty.i64_col(0).as_slice(), Some(&[][..]));
    }

    #[test]
    #[should_panic(expected = "reader wants")]
    fn typed_reader_type_checked() {
        let mut p = part();
        p.push_row(&[RawVal::I32(1), RawVal::F64(2.0), RawVal::U32(3)])
            .unwrap();
        let _ = p.i64_col(0);
    }
}
