//! Byte-exact [`Table`] serialization — the checkpoint blob format.
//!
//! A persisted main store must reload *bit-identically*: dictionary codes
//! are referenced raw by the execution engines' grouped-by-key fast
//! paths, and the differential tests compare scan output byte-for-byte
//! across save/load. The format therefore dumps the arenas and
//! dictionaries verbatim and re-derives everything that is deterministic
//! from schema + layout (partition geometry, column locations) through
//! [`Table::with_layout`].
//!
//! Layout of a blob (all integers little-endian):
//!
//! ```text
//! "PDSMTBL1"  magic
//! u32         format version (2)
//! u64         generation (the merge counter at checkpoint time)
//! str         table name              (str = u32 length + UTF-8 bytes)
//! u32         #columns, then per column: str name, u8 type, u8 nullable
//! u32         #layout groups, then per group: u32 len + u32 col ids
//! per column: u8 has-dict, then u32 #strings + str each (code order)
//! u64         row count
//! per group:  u64 arena bytes + bytes, then per slot:
//!             u8 has-validity, u32 bit count, u64 words
//! per column: u8 zone tag (0 none, 1 int, 2 float), then for 1/2:
//!             u32 #blocks + per block: 8B min, 8B max, u8 flags   (v2+)
//! u32         CRC-32 of everything above
//! ```
//!
//! Version 1 blobs (no zone section) load fine — the zone map is simply
//! rebuilt lazily on first use. The zone build is deterministic, so a
//! load/re-save cycle stays byte-exact in either direction.
//!
//! [`from_bytes`] fails hard on any mismatch — unlike a WAL tail, a
//! committed checkpoint blob is written atomically, so corruption here is
//! damage, not an interrupted write.

use crate::bitmap::Bitmap;
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::types::DataType;
use crate::zonemap::{ColZone, ZoneBlock, ZoneMap, ZONE_BLOCK_ROWS};

const MAGIC: &[u8; 8] = b"PDSMTBL1";
const VERSION: u32 = 2;
/// Oldest version [`from_bytes`] still accepts (v1 = no zone section).
const MIN_VERSION: u32 = 1;
/// v3 = extent format: a CRC'd header with an (extent × group) directory
/// followed by independently-CRC'd payloads, so a buffer pool can fault
/// single partition extents without reading the whole blob.
const VERSION_EXTENTS: u32 = 3;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven. Shared by
/// every durable artifact in the workspace (WAL records, checkpoint
/// blobs, the manifest) via re-export from `pdsm-store`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int32 => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
    }
}

fn type_from_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Int32,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Str,
        _ => return None,
    })
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Serialize `table` as a generation-stamped checkpoint blob.
pub fn to_bytes(table: &Table, generation: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + table.byte_size());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    put_str(&mut buf, table.name());
    let cols = table.schema().columns();
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for c in cols {
        put_str(&mut buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(c.nullable as u8);
    }
    let groups = table.layout().groups();
    buf.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for g in groups {
        buf.extend_from_slice(&(g.len() as u32).to_le_bytes());
        for &c in g {
            buf.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    for (c, _) in cols.iter().enumerate() {
        match table.dicts()[c].as_ref() {
            None => buf.push(0),
            Some(d) => {
                buf.push(1);
                buf.extend_from_slice(&(d.len() as u32).to_le_bytes());
                for (_, s) in d.iter() {
                    put_str(&mut buf, s);
                }
            }
        }
    }
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for p in table.partitions() {
        let arena = p.raw_bytes();
        buf.extend_from_slice(&(arena.len() as u64).to_le_bytes());
        buf.extend_from_slice(arena);
        for slot in 0..p.cols().len() {
            match p.validity(slot) {
                None => buf.push(0),
                Some(bm) => {
                    buf.push(1);
                    buf.extend_from_slice(&(bm.len() as u32).to_le_bytes());
                    for w in bm.words() {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
        }
    }
    // v2: the zone map travels with the checkpoint so recovery starts
    // with scan pruning warm instead of paying a rebuild pass.
    let zones = table.zone_map();
    for zone in zones.cols() {
        match zone {
            ColZone::Skipped => buf.push(0),
            ColZone::Int(blocks) => {
                buf.push(1);
                buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    buf.extend_from_slice(&b.min.to_le_bytes());
                    buf.extend_from_slice(&b.max.to_le_bytes());
                    buf.push(zone_flags(b.has_null, b.has_value));
                }
            }
            ColZone::Float(blocks) => {
                buf.push(2);
                buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    buf.extend_from_slice(&b.min.to_bits().to_le_bytes());
                    buf.extend_from_slice(&b.max.to_bits().to_le_bytes());
                    buf.push(zone_flags(b.has_null, b.has_value));
                }
            }
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn zone_flags(has_null: bool, has_value: bool) -> u8 {
    (has_null as u8) | ((has_value as u8) << 1)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("unexpected end of blob"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

fn corrupt(why: &str) -> Error {
    Error::Io(format!("corrupt table blob: {why}"))
}

/// Deserialize a checkpoint blob back into `(table, generation)`. Any
/// framing, checksum, or invariant violation is a hard [`Error::Io`].
pub fn from_bytes(bytes: &[u8]) -> Result<(Table, u64)> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    if bytes.len() >= MAGIC.len() + 4 + 4 {
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version == VERSION_EXTENTS {
            return from_bytes_extents(bytes);
        }
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(corrupt("unsupported format version"));
    }
    let generation = r.u64()?;
    let name = r.str()?;
    let ncols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = r.str()?;
        let ty = type_from_tag(r.u8()?).ok_or_else(|| corrupt("bad type tag"))?;
        let nullable = r.u8()? != 0;
        cols.push(if nullable {
            ColumnDef::nullable(cname, ty)
        } else {
            ColumnDef::new(cname, ty)
        });
    }
    let schema = Schema::new(cols);
    let ngroups = r.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let glen = r.u32()? as usize;
        let mut g = Vec::with_capacity(glen);
        for _ in 0..glen {
            g.push(r.u32()? as usize);
        }
        groups.push(g);
    }
    let layout = Layout::from_groups(groups, ncols)?;
    let mut table = Table::with_layout(name, schema, layout)?;
    let mut dicts = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let has = r.u8()? != 0;
        let is_str = table.schema().columns()[c].ty == DataType::Str;
        if has != is_str {
            return Err(corrupt("dictionary presence does not match schema"));
        }
        if !has {
            dicts.push(None);
            continue;
        }
        let n = r.u32()? as usize;
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(r.str()?);
        }
        dicts.push(Some(Dictionary::from_strings(strings)));
    }
    let len = r.u64()? as usize;
    for pi in 0..table.layout().n_groups() {
        let arena_len = r.u64()? as usize;
        let arena = r.take(arena_len)?.to_vec();
        let p = &table.partitions()[pi];
        if arena.len() != len * p.stride() {
            return Err(corrupt("arena size does not match row count"));
        }
        let nslots = p.cols().len();
        let mut validity = Vec::with_capacity(nslots);
        for _slot in 0..nslots {
            let has = r.u8()? != 0;
            if !has {
                validity.push(None);
                continue;
            }
            let bits = r.u32()? as usize;
            if bits != len {
                return Err(corrupt("validity bitmap length mismatch"));
            }
            let nwords = bits.div_ceil(64);
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            validity.push(Some(Bitmap::from_words(words, bits)));
        }
        for (slot, v) in validity.iter().enumerate() {
            if v.is_some() != table.partitions()[pi].validity(slot).is_some() {
                return Err(corrupt("validity presence does not match schema"));
            }
        }
        table.partitions_mut()[pi].restore(arena, len, validity);
    }
    let zones = if version >= 2 {
        let n_blocks = len.div_ceil(ZONE_BLOCK_ROWS);
        let mut zone_cols = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let tag = r.u8()?;
            let ty = table.schema().columns()[c].ty;
            let want = match ty {
                DataType::Int32 | DataType::Int64 => 1,
                DataType::Float64 => 2,
                DataType::Str => 0,
            };
            if tag != want {
                return Err(corrupt("zone tag does not match column type"));
            }
            zone_cols.push(match tag {
                0 => ColZone::Skipped,
                1 => ColZone::Int(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                    min: i64::from_le_bytes(min),
                    max: i64::from_le_bytes(max),
                    has_null: false,
                    has_value: false,
                })?),
                _ => ColZone::Float(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                    min: f64::from_bits(u64::from_le_bytes(min)),
                    max: f64::from_bits(u64::from_le_bytes(max)),
                    has_null: false,
                    has_value: false,
                })?),
            });
        }
        Some(ZoneMap::from_parts(len, zone_cols))
    } else {
        None
    };
    if r.pos != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    table.restore_meta(dicts, len);
    if let Some(z) = zones {
        table.install_zones(z);
    }
    Ok((table, generation))
}

fn read_zone_blocks<T: Copy>(
    r: &mut Reader<'_>,
    n_blocks: usize,
    make: impl Fn([u8; 8], [u8; 8]) -> ZoneBlock<T>,
) -> Result<Vec<ZoneBlock<T>>> {
    let n = r.u32()? as usize;
    if n != n_blocks {
        return Err(corrupt("zone block count does not match row count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let min: [u8; 8] = r.take(8)?.try_into().unwrap();
        let max: [u8; 8] = r.take(8)?.try_into().unwrap();
        let flags = r.u8()?;
        if flags & !0b11 != 0 {
            return Err(corrupt("bad zone flags"));
        }
        let mut b = make(min, max);
        b.has_null = flags & 1 != 0;
        b.has_value = flags & 2 != 0;
        out.push(b);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// v3: extent checkpoints
// ---------------------------------------------------------------------------
//
// ```text
// "PDSMTBL1"  magic
// u32         format version (3)
// u32         header_len (bytes 0..header_len are the header, CRC included)
// u64         generation
// str name / columns / groups / dicts / u64 row count    (as v2)
// zone section                                           (as v2)
// u32         extent_rows (multiple of ZONE_BLOCK_ROWS)
// u32         n_extents   (= ceil(rows / extent_rows))
// per extent, per group: u64 payload offset + u64 payload length
// u32         CRC-32 of the header bytes above
// then per (extent, group) payload at its directory offset:
//   arena slice (rows_in_extent * stride bytes)
//   per slot: u8 has-validity + validity words for the extent's rows
//   u32 CRC-32 of the payload bytes above
// ```
//
// Extents start on ZONE_BLOCK_ROWS boundaries, so each extent covers whole
// zone blocks and whole 64-bit validity words; concatenating the extent
// slices reproduces the resident arenas and bitmaps bit-for-bit.

/// Default extent size. 64 Ki rows = 64 zone blocks per extent.
pub const DEFAULT_EXTENT_ROWS: usize = 65_536;

/// Extent size knob: `PDSM_EXTENT_ROWS`, rounded up to a whole number of
/// zone blocks (min one block of 1024 rows).
pub fn extent_rows_from_env() -> usize {
    match std::env::var("PDSM_EXTENT_ROWS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) => n.max(1).div_ceil(ZONE_BLOCK_ROWS) * ZONE_BLOCK_ROWS,
        None => DEFAULT_EXTENT_ROWS,
    }
}

/// Parsed v3 header: everything needed to locate, decode, and validate
/// extent payloads without materializing any row data.
#[derive(Debug, Clone)]
pub struct TableHeader {
    pub name: String,
    pub schema: Schema,
    pub layout: Layout,
    pub dicts: Vec<Option<Dictionary>>,
    pub zones: Option<ZoneMap>,
    pub len: usize,
    pub extent_rows: usize,
    pub generation: u64,
    /// `[extent][group] -> (file offset, payload length incl. CRC)`.
    pub dir: Vec<Vec<(u64, u64)>>,
    /// Per-group arena stride in bytes (derived from schema + layout).
    pub strides: Vec<usize>,
    /// Per-group, per-slot: does this slot carry a validity bitmap?
    pub slot_validity: Vec<Vec<bool>>,
    /// Total header length in bytes (payloads start here).
    pub header_len: usize,
}

impl TableHeader {
    pub fn n_extents(&self) -> usize {
        self.len.div_ceil(self.extent_rows)
    }

    pub fn n_groups(&self) -> usize {
        self.strides.len()
    }

    /// Row range `[lo, hi)` covered by extent `e`.
    pub fn extent_row_range(&self, e: usize) -> (usize, usize) {
        let lo = e * self.extent_rows;
        (lo, ((e + 1) * self.extent_rows).min(self.len))
    }

    /// Decoded in-memory size of one (extent, group) payload — what the
    /// buffer pool charges against its budget for a resident frame.
    pub fn extent_bytes(&self, e: usize, g: usize) -> usize {
        let (lo, hi) = self.extent_row_range(e);
        let rows = hi - lo;
        let words: usize = self.slot_validity[g]
            .iter()
            .map(|&has| if has { rows.div_ceil(64) * 8 } else { 0 })
            .sum();
        rows * self.strides[g] + words
    }

    /// Total decoded bytes of the whole table (all extents, all groups).
    pub fn total_bytes(&self) -> usize {
        (0..self.n_extents())
            .map(|e| {
                (0..self.n_groups())
                    .map(|g| self.extent_bytes(e, g))
                    .sum::<usize>()
            })
            .sum()
    }
}

/// One decoded (extent, group) payload: an arena slice plus the validity
/// words for the extent's row range. This is the unit a pool frame holds.
#[derive(Debug, Clone)]
pub struct ExtentData {
    pub arena: Vec<u8>,
    pub validity: Vec<Option<Vec<u64>>>,
}

impl ExtentData {
    pub fn byte_size(&self) -> usize {
        self.arena.len()
            + self
                .validity
                .iter()
                .map(|v| v.as_ref().map_or(0, |w| w.len() * 8))
                .sum::<usize>()
    }
}

/// Serialize `table` in the v3 extent format. Byte content of the arenas
/// and bitmaps is identical to [`to_bytes`] — only the framing differs —
/// so a v3 load is bit-exact with a v2 load of the same table.
pub fn to_bytes_extents(table: &Table, generation: u64, extent_rows: usize) -> Vec<u8> {
    assert!(
        extent_rows > 0 && extent_rows.is_multiple_of(ZONE_BLOCK_ROWS),
        "extent_rows must be a positive multiple of ZONE_BLOCK_ROWS"
    );
    let len = table.len();
    let n_extents = len.div_ceil(extent_rows);
    let ngroups = table.layout().n_groups();

    let mut head = Vec::with_capacity(256);
    head.extend_from_slice(MAGIC);
    head.extend_from_slice(&VERSION_EXTENTS.to_le_bytes());
    head.extend_from_slice(&0u32.to_le_bytes()); // header_len, patched below
    head.extend_from_slice(&generation.to_le_bytes());
    put_str(&mut head, table.name());
    let cols = table.schema().columns();
    head.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for c in cols {
        put_str(&mut head, &c.name);
        head.push(type_tag(c.ty));
        head.push(c.nullable as u8);
    }
    let groups = table.layout().groups();
    head.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for g in groups {
        head.extend_from_slice(&(g.len() as u32).to_le_bytes());
        for &c in g {
            head.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    for (c, _) in cols.iter().enumerate() {
        match table.dicts()[c].as_ref() {
            None => head.push(0),
            Some(d) => {
                head.push(1);
                head.extend_from_slice(&(d.len() as u32).to_le_bytes());
                for (_, s) in d.iter() {
                    put_str(&mut head, s);
                }
            }
        }
    }
    head.extend_from_slice(&(len as u64).to_le_bytes());
    let zones = table.zone_map();
    for zone in zones.cols() {
        match zone {
            ColZone::Skipped => head.push(0),
            ColZone::Int(blocks) => {
                head.push(1);
                head.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    head.extend_from_slice(&b.min.to_le_bytes());
                    head.extend_from_slice(&b.max.to_le_bytes());
                    head.push(zone_flags(b.has_null, b.has_value));
                }
            }
            ColZone::Float(blocks) => {
                head.push(2);
                head.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    head.extend_from_slice(&b.min.to_bits().to_le_bytes());
                    head.extend_from_slice(&b.max.to_bits().to_le_bytes());
                    head.push(zone_flags(b.has_null, b.has_value));
                }
            }
        }
    }
    head.extend_from_slice(&(extent_rows as u32).to_le_bytes());
    head.extend_from_slice(&(n_extents as u32).to_le_bytes());

    let header_len = head.len() + n_extents * ngroups * 16 + 4;
    head[12..16].copy_from_slice(&(header_len as u32).to_le_bytes());

    // Build the payloads, recording the directory as offsets accumulate.
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(n_extents * ngroups);
    let mut off = header_len as u64;
    for e in 0..n_extents {
        let lo = e * extent_rows;
        let hi = ((e + 1) * extent_rows).min(len);
        for p in table.partitions() {
            let mut pl =
                Vec::with_capacity((hi - lo) * p.stride() + p.cols().len() * (1 + (hi - lo) / 8));
            pl.extend_from_slice(&p.raw_bytes()[lo * p.stride()..hi * p.stride()]);
            for slot in 0..p.cols().len() {
                match p.validity(slot) {
                    None => pl.push(0),
                    Some(bm) => {
                        pl.push(1);
                        for w in &bm.words()[lo / 64..hi.div_ceil(64)] {
                            pl.extend_from_slice(&w.to_le_bytes());
                        }
                    }
                }
            }
            let crc = crc32(&pl);
            pl.extend_from_slice(&crc.to_le_bytes());
            payloads.push(pl);
        }
    }
    for pl in &payloads {
        head.extend_from_slice(&off.to_le_bytes());
        head.extend_from_slice(&(pl.len() as u64).to_le_bytes());
        off += pl.len() as u64;
    }
    let crc = crc32(&head);
    head.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(head.len(), header_len);
    let mut buf = head;
    for pl in payloads {
        buf.extend_from_slice(&pl);
    }
    buf
}

/// Parse a v3 header from a prefix of the blob (at least `header_len`
/// bytes). The header carries its own CRC, so a caller holding only the
/// file's head can validate it without reading any payload.
pub fn read_header(bytes: &[u8]) -> Result<TableHeader> {
    if bytes.len() < 16 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != VERSION_EXTENTS {
        return Err(corrupt("not an extent-format blob"));
    }
    let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    if header_len < 20 || header_len > bytes.len() {
        return Err(corrupt("bad header length"));
    }
    let (body, crc_bytes) = bytes[..header_len].split_at(header_len - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(corrupt("header checksum mismatch"));
    }
    let mut r = Reader { buf: body, pos: 16 };
    let generation = r.u64()?;
    let name = r.str()?;
    let ncols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = r.str()?;
        let ty = type_from_tag(r.u8()?).ok_or_else(|| corrupt("bad type tag"))?;
        let nullable = r.u8()? != 0;
        cols.push(if nullable {
            ColumnDef::nullable(cname, ty)
        } else {
            ColumnDef::new(cname, ty)
        });
    }
    let schema = Schema::new(cols);
    let ngroups = r.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let glen = r.u32()? as usize;
        let mut g = Vec::with_capacity(glen);
        for _ in 0..glen {
            g.push(r.u32()? as usize);
        }
        groups.push(g);
    }
    let layout = Layout::from_groups(groups, ncols)?;
    let skeleton = Table::with_layout(name.clone(), schema.clone(), layout.clone())?;
    let mut dicts = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let has = r.u8()? != 0;
        if has != (schema.columns()[c].ty == DataType::Str) {
            return Err(corrupt("dictionary presence does not match schema"));
        }
        if !has {
            dicts.push(None);
            continue;
        }
        let n = r.u32()? as usize;
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(r.str()?);
        }
        dicts.push(Some(Dictionary::from_strings(strings)));
    }
    let len = r.u64()? as usize;
    let n_blocks = len.div_ceil(ZONE_BLOCK_ROWS);
    let mut zone_cols = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let tag = r.u8()?;
        let want = match schema.columns()[c].ty {
            DataType::Int32 | DataType::Int64 => 1,
            DataType::Float64 => 2,
            DataType::Str => 0,
        };
        if tag != want {
            return Err(corrupt("zone tag does not match column type"));
        }
        zone_cols.push(match tag {
            0 => ColZone::Skipped,
            1 => ColZone::Int(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                min: i64::from_le_bytes(min),
                max: i64::from_le_bytes(max),
                has_null: false,
                has_value: false,
            })?),
            _ => ColZone::Float(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                min: f64::from_bits(u64::from_le_bytes(min)),
                max: f64::from_bits(u64::from_le_bytes(max)),
                has_null: false,
                has_value: false,
            })?),
        });
    }
    let zones = Some(ZoneMap::from_parts(len, zone_cols));
    let extent_rows = r.u32()? as usize;
    if extent_rows == 0 || !extent_rows.is_multiple_of(ZONE_BLOCK_ROWS) {
        return Err(corrupt("bad extent size"));
    }
    let n_extents = r.u32()? as usize;
    if n_extents != len.div_ceil(extent_rows) {
        return Err(corrupt("extent count does not match row count"));
    }
    let mut dir = Vec::with_capacity(n_extents);
    for _ in 0..n_extents {
        let mut row = Vec::with_capacity(ngroups);
        for _ in 0..ngroups {
            let off = r.u64()?;
            let plen = r.u64()?;
            row.push((off, plen));
        }
        dir.push(row);
    }
    if r.pos != body.len() {
        return Err(corrupt("trailing header bytes"));
    }
    let strides = skeleton.partitions().iter().map(|p| p.stride()).collect();
    let slot_validity = skeleton
        .partitions()
        .iter()
        .map(|p| {
            (0..p.cols().len())
                .map(|s| p.validity(s).is_some())
                .collect()
        })
        .collect();
    Ok(TableHeader {
        name,
        schema,
        layout,
        dicts,
        zones,
        len,
        extent_rows,
        generation,
        dir,
        strides,
        slot_validity,
        header_len,
    })
}

/// Decode one (extent, group) payload — the exact byte range named by the
/// header directory. Verifies the payload CRC and all geometry.
pub fn decode_extent(h: &TableHeader, e: usize, g: usize, payload: &[u8]) -> Result<ExtentData> {
    let (lo, hi) = h.extent_row_range(e);
    let rows = hi - lo;
    if payload.len() < 4 {
        return Err(corrupt("extent payload too short"));
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(corrupt("extent checksum mismatch"));
    }
    let mut r = Reader { buf: body, pos: 0 };
    let arena = r.take(rows * h.strides[g])?.to_vec();
    let mut validity = Vec::with_capacity(h.slot_validity[g].len());
    for &slot_has in &h.slot_validity[g] {
        let has = r.u8()? != 0;
        if has != slot_has {
            return Err(corrupt("validity presence does not match schema"));
        }
        if !has {
            validity.push(None);
            continue;
        }
        let nwords = rows.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        for _ in 0..nwords {
            words.push(r.u64()?);
        }
        validity.push(Some(words));
    }
    if r.pos != body.len() {
        return Err(corrupt("trailing extent bytes"));
    }
    Ok(ExtentData { arena, validity })
}

/// Build a self-contained mini [`Table`] holding exactly the rows of
/// extent `e` (`exts` = one decoded payload per layout group, group
/// order). Dictionaries are shared with the full table, and the extent's
/// slice of the zone map is installed, so engines scan it exactly as they
/// would the corresponding rows of the resident table.
pub fn extent_table(
    h: &TableHeader,
    e: usize,
    exts: &[std::sync::Arc<ExtentData>],
) -> Result<Table> {
    let (lo, hi) = h.extent_row_range(e);
    let rows = hi - lo;
    if exts.len() != h.n_groups() {
        return Err(corrupt("extent group arity mismatch"));
    }
    let mut t = Table::with_layout(h.name.clone(), h.schema.clone(), h.layout.clone())?;
    for (g, ext) in exts.iter().enumerate() {
        if ext.arena.len() != rows * h.strides[g] {
            return Err(corrupt("extent arena size mismatch"));
        }
        let validity: Vec<Option<Bitmap>> = ext
            .validity
            .iter()
            .map(|v| v.as_ref().map(|w| Bitmap::from_words(w.clone(), rows)))
            .collect();
        t.partitions_mut()[g].restore(ext.arena.clone(), rows, validity);
    }
    t.restore_meta(h.dicts.clone(), rows);
    if let Some(z) = &h.zones {
        t.install_zones(z.slice_rows(lo, hi));
    }
    Ok(t)
}

/// Reassemble the full resident [`Table`] from every decoded extent
/// (`exts[extent][group]`). Bit-identical to what [`from_bytes`] of the
/// equivalent v2 blob would produce.
pub fn assemble_table(h: &TableHeader, exts: &[Vec<std::sync::Arc<ExtentData>>]) -> Result<Table> {
    let len = h.len;
    let n_extents = h.n_extents();
    if exts.len() != n_extents {
        return Err(corrupt("extent count mismatch"));
    }
    let mut t = Table::with_layout(h.name.clone(), h.schema.clone(), h.layout.clone())?;
    for g in 0..h.n_groups() {
        let mut arena = Vec::with_capacity(len * h.strides[g]);
        let mut words: Vec<Option<Vec<u64>>> = h.slot_validity[g]
            .iter()
            .map(|&has| {
                if has {
                    Some(Vec::with_capacity(len.div_ceil(64)))
                } else {
                    None
                }
            })
            .collect();
        for (e, row) in exts.iter().enumerate() {
            if row.len() != h.n_groups() {
                return Err(corrupt("extent group arity mismatch"));
            }
            let ext = &row[g];
            let (lo, hi) = h.extent_row_range(e);
            if ext.arena.len() != (hi - lo) * h.strides[g] {
                return Err(corrupt("extent arena size mismatch"));
            }
            arena.extend_from_slice(&ext.arena);
            for (acc, w) in words.iter_mut().zip(&ext.validity) {
                if let (Some(acc), Some(w)) = (acc.as_mut(), w.as_ref()) {
                    acc.extend_from_slice(w);
                }
            }
        }
        let validity: Vec<Option<Bitmap>> = words
            .into_iter()
            .map(|w| w.map(|w| Bitmap::from_words(w, len)))
            .collect();
        t.partitions_mut()[g].restore(arena, len, validity);
    }
    t.restore_meta(h.dicts.clone(), len);
    if let Some(z) = &h.zones {
        t.install_zones(z.clone());
    }
    Ok(t)
}

/// Full v3 load: header, every payload, reassembly.
fn from_bytes_extents(bytes: &[u8]) -> Result<(Table, u64)> {
    let h = read_header(bytes)?;
    let mut end = h.header_len as u64;
    let mut exts = Vec::with_capacity(h.n_extents());
    for e in 0..h.n_extents() {
        let mut row = Vec::with_capacity(h.n_groups());
        for g in 0..h.n_groups() {
            let (off, plen) = h.dir[e][g];
            let payload = off
                .checked_add(plen)
                .filter(|&e2| e2 <= bytes.len() as u64)
                .map(|e2| &bytes[off as usize..e2 as usize])
                .ok_or_else(|| corrupt("extent directory out of range"))?;
            end = end.max(off + plen);
            row.push(std::sync::Arc::new(decode_extent(&h, e, g, payload)?));
        }
        exts.push(row);
    }
    if end != bytes.len() as u64 {
        return Err(corrupt("trailing bytes"));
    }
    let t = assemble_table(&h, &exts)?;
    Ok((t, h.generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn crc_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn demo(layout: Layout) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
            ColumnDef::new("qty", DataType::Int64),
        ]);
        let mut t = Table::with_layout("demo", schema, layout).unwrap();
        for i in 0..100i32 {
            t.insert(&[
                Value::Int32(i),
                Value::Str(format!("item-{}", i % 9)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 * 0.5)
                },
                Value::Int64(i as i64 * 3),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn round_trip_is_byte_exact_across_layouts() {
        for layout in [
            Layout::row(4),
            Layout::column(4),
            Layout::from_groups(vec![vec![0, 3], vec![1], vec![2]], 4).unwrap(),
        ] {
            let t = demo(layout);
            let bytes = to_bytes(&t, 7);
            let (back, generation) = from_bytes(&bytes).unwrap();
            assert_eq!(generation, 7);
            assert_eq!(back.name(), t.name());
            assert_eq!(back.layout(), t.layout());
            assert_eq!(back.len(), t.len());
            // Byte-exact: arenas, codes, and a re-serialize all match.
            for (a, b) in t.partitions().iter().zip(back.partitions()) {
                assert_eq!(a.raw_bytes(), b.raw_bytes());
            }
            let code_a = t.str_code_reader(1).get(42);
            let code_b = back.str_code_reader(1).get(42);
            assert_eq!(code_a, code_b);
            assert_eq!(to_bytes(&back, 7), bytes);
            for r in 0..t.len() {
                assert_eq!(t.row(r).unwrap(), back.row(r).unwrap());
            }
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new(vec![ColumnDef::new("x", DataType::Int32)]);
        let t = Table::with_layout("empty", schema, Layout::column(1)).unwrap();
        let bytes = to_bytes(&t, 0);
        let (back, generation) = from_bytes(&bytes).unwrap();
        assert_eq!(generation, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn zone_map_travels_with_the_blob() {
        let t = demo(Layout::column(4));
        let warmed = t.zone_map().clone();
        let bytes = to_bytes(&t, 3);
        let (back, _) = from_bytes(&bytes).unwrap();
        // The reloaded table answers pruning questions without a rebuild
        // pass: its installed map equals the one computed from the data.
        assert_eq!(**back.zone_map(), *warmed);
        assert_eq!(to_bytes(&back, 3), bytes);
    }

    #[test]
    fn version_1_blob_without_zone_section_still_loads() {
        let t = demo(Layout::row(4));
        let v2 = to_bytes(&t, 9);
        // Surgically rebuild the v1 form: drop the zone section (which sits
        // between the partitions and the CRC), stamp version 1, re-CRC.
        let zone_len: usize = t
            .zone_map()
            .cols()
            .iter()
            .map(|z| match z {
                ColZone::Skipped => 1,
                ColZone::Int(b) => 1 + 4 + b.len() * 17,
                ColZone::Float(b) => 1 + 4 + b.len() * 17,
            })
            .sum();
        let body_end = v2.len() - 4 - zone_len;
        let mut v1 = v2[..body_end].to_vec();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let crc = crc32(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());
        let (back, generation) = from_bytes(&v1).unwrap();
        assert_eq!(generation, 9);
        assert_eq!(back.len(), t.len());
        // No installed map — but the lazy rebuild produces the same one.
        assert_eq!(**back.zone_map(), **t.zone_map());
    }

    fn demo_rows(layout: Layout, n: i32) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
            ColumnDef::new("qty", DataType::Int64),
        ]);
        let mut t = Table::with_layout("demo", schema, layout).unwrap();
        for i in 0..n {
            t.insert(&[
                Value::Int32(i),
                Value::Str(format!("item-{}", i % 9)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 * 0.5)
                },
                Value::Int64(i as i64 * 3),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn v3_round_trip_matches_v2_bit_for_bit() {
        for layout in [
            Layout::row(4),
            Layout::column(4),
            Layout::from_groups(vec![vec![0, 3], vec![1], vec![2]], 4).unwrap(),
        ] {
            // 3000 rows at 1024-row extents = two full extents + a partial.
            let t = demo_rows(layout, 3000);
            let v3 = to_bytes_extents(&t, 11, ZONE_BLOCK_ROWS);
            let (back, generation) = from_bytes(&v3).unwrap();
            assert_eq!(generation, 11);
            // The reassembled table re-serializes to the same v2 blob as
            // the original: arenas, dicts, zones all bit-identical.
            assert_eq!(to_bytes(&back, 11), to_bytes(&t, 11));
            assert_eq!(**back.zone_map(), **t.zone_map());
        }
    }

    #[test]
    fn v3_extent_tables_cover_the_rows_exactly() {
        let t = demo_rows(
            Layout::from_groups(vec![vec![0, 2], vec![1, 3]], 4).unwrap(),
            2500,
        );
        let blob = to_bytes_extents(&t, 5, ZONE_BLOCK_ROWS);
        let h = read_header(&blob).unwrap();
        assert_eq!(h.n_extents(), 3);
        assert_eq!(h.len, 2500);
        let mut seen = 0usize;
        for e in 0..h.n_extents() {
            let exts: Vec<_> = (0..h.n_groups())
                .map(|g| {
                    let (off, plen) = h.dir[e][g];
                    let payload = &blob[off as usize..(off + plen) as usize];
                    std::sync::Arc::new(decode_extent(&h, e, g, payload).unwrap())
                })
                .collect();
            let mini = extent_table(&h, e, &exts).unwrap();
            let (lo, hi) = h.extent_row_range(e);
            assert_eq!(mini.len(), hi - lo);
            for r in 0..mini.len() {
                assert_eq!(mini.row(r).unwrap(), t.row(lo + r).unwrap());
            }
            seen += mini.len();
        }
        assert_eq!(seen, t.len());
    }

    #[test]
    fn v3_empty_table_round_trips() {
        let schema = Schema::new(vec![ColumnDef::nullable("x", DataType::Int32)]);
        let t = Table::with_layout("empty", schema, Layout::column(1)).unwrap();
        let blob = to_bytes_extents(&t, 2, ZONE_BLOCK_ROWS);
        let (back, generation) = from_bytes(&blob).unwrap();
        assert_eq!(generation, 2);
        assert!(back.is_empty());
        let h = read_header(&blob).unwrap();
        assert_eq!(h.n_extents(), 0);
    }

    #[test]
    fn v3_any_bit_flip_is_rejected() {
        let t = demo_rows(Layout::row(4), 1500);
        let bytes = to_bytes_extents(&t, 1, ZONE_BLOCK_ROWS);
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(from_bytes(&bad).is_err(), "flip at {pos} accepted");
        }
        for cut in [0, 4, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn any_bit_flip_is_rejected() {
        let t = demo(Layout::row(4));
        let bytes = to_bytes(&t, 1);
        // Sample a spread of positions (every 97th byte) to keep it fast.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(from_bytes(&bad).is_err(), "flip at {pos} accepted");
        }
        // Truncations are rejected too.
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }
}
