//! Byte-exact [`Table`] serialization — the checkpoint blob format.
//!
//! A persisted main store must reload *bit-identically*: dictionary codes
//! are referenced raw by the execution engines' grouped-by-key fast
//! paths, and the differential tests compare scan output byte-for-byte
//! across save/load. The format therefore dumps the arenas and
//! dictionaries verbatim and re-derives everything that is deterministic
//! from schema + layout (partition geometry, column locations) through
//! [`Table::with_layout`].
//!
//! Layout of a blob (all integers little-endian):
//!
//! ```text
//! "PDSMTBL1"  magic
//! u32         format version (2)
//! u64         generation (the merge counter at checkpoint time)
//! str         table name              (str = u32 length + UTF-8 bytes)
//! u32         #columns, then per column: str name, u8 type, u8 nullable
//! u32         #layout groups, then per group: u32 len + u32 col ids
//! per column: u8 has-dict, then u32 #strings + str each (code order)
//! u64         row count
//! per group:  u64 arena bytes + bytes, then per slot:
//!             u8 has-validity, u32 bit count, u64 words
//! per column: u8 zone tag (0 none, 1 int, 2 float), then for 1/2:
//!             u32 #blocks + per block: 8B min, 8B max, u8 flags   (v2+)
//! u32         CRC-32 of everything above
//! ```
//!
//! Version 1 blobs (no zone section) load fine — the zone map is simply
//! rebuilt lazily on first use. The zone build is deterministic, so a
//! load/re-save cycle stays byte-exact in either direction.
//!
//! [`from_bytes`] fails hard on any mismatch — unlike a WAL tail, a
//! committed checkpoint blob is written atomically, so corruption here is
//! damage, not an interrupted write.

use crate::bitmap::Bitmap;
use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::types::DataType;
use crate::zonemap::{ColZone, ZoneBlock, ZoneMap, ZONE_BLOCK_ROWS};

const MAGIC: &[u8; 8] = b"PDSMTBL1";
const VERSION: u32 = 2;
/// Oldest version [`from_bytes`] still accepts (v1 = no zone section).
const MIN_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven. Shared by
/// every durable artifact in the workspace (WAL records, checkpoint
/// blobs, the manifest) via re-export from `pdsm-store`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int32 => 0,
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
    }
}

fn type_from_tag(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Int32,
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Str,
        _ => return None,
    })
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Serialize `table` as a generation-stamped checkpoint blob.
pub fn to_bytes(table: &Table, generation: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + table.byte_size());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&generation.to_le_bytes());
    put_str(&mut buf, table.name());
    let cols = table.schema().columns();
    buf.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for c in cols {
        put_str(&mut buf, &c.name);
        buf.push(type_tag(c.ty));
        buf.push(c.nullable as u8);
    }
    let groups = table.layout().groups();
    buf.extend_from_slice(&(groups.len() as u32).to_le_bytes());
    for g in groups {
        buf.extend_from_slice(&(g.len() as u32).to_le_bytes());
        for &c in g {
            buf.extend_from_slice(&(c as u32).to_le_bytes());
        }
    }
    for (c, _) in cols.iter().enumerate() {
        match table.dicts()[c].as_ref() {
            None => buf.push(0),
            Some(d) => {
                buf.push(1);
                buf.extend_from_slice(&(d.len() as u32).to_le_bytes());
                for (_, s) in d.iter() {
                    put_str(&mut buf, s);
                }
            }
        }
    }
    buf.extend_from_slice(&(table.len() as u64).to_le_bytes());
    for p in table.partitions() {
        let arena = p.raw_bytes();
        buf.extend_from_slice(&(arena.len() as u64).to_le_bytes());
        buf.extend_from_slice(arena);
        for slot in 0..p.cols().len() {
            match p.validity(slot) {
                None => buf.push(0),
                Some(bm) => {
                    buf.push(1);
                    buf.extend_from_slice(&(bm.len() as u32).to_le_bytes());
                    for w in bm.words() {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                }
            }
        }
    }
    // v2: the zone map travels with the checkpoint so recovery starts
    // with scan pruning warm instead of paying a rebuild pass.
    let zones = table.zone_map();
    for zone in zones.cols() {
        match zone {
            ColZone::Skipped => buf.push(0),
            ColZone::Int(blocks) => {
                buf.push(1);
                buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    buf.extend_from_slice(&b.min.to_le_bytes());
                    buf.extend_from_slice(&b.max.to_le_bytes());
                    buf.push(zone_flags(b.has_null, b.has_value));
                }
            }
            ColZone::Float(blocks) => {
                buf.push(2);
                buf.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
                for b in blocks {
                    buf.extend_from_slice(&b.min.to_bits().to_le_bytes());
                    buf.extend_from_slice(&b.max.to_bits().to_le_bytes());
                    buf.push(zone_flags(b.has_null, b.has_value));
                }
            }
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

fn zone_flags(has_null: bool, has_value: bool) -> u8 {
    (has_null as u8) | ((has_value as u8) << 1)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("unexpected end of blob"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

fn corrupt(why: &str) -> Error {
    Error::Io(format!("corrupt table blob: {why}"))
}

/// Deserialize a checkpoint blob back into `(table, generation)`. Any
/// framing, checksum, or invariant violation is a hard [`Error::Io`].
pub fn from_bytes(bytes: &[u8]) -> Result<(Table, u64)> {
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(corrupt("unsupported format version"));
    }
    let generation = r.u64()?;
    let name = r.str()?;
    let ncols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = r.str()?;
        let ty = type_from_tag(r.u8()?).ok_or_else(|| corrupt("bad type tag"))?;
        let nullable = r.u8()? != 0;
        cols.push(if nullable {
            ColumnDef::nullable(cname, ty)
        } else {
            ColumnDef::new(cname, ty)
        });
    }
    let schema = Schema::new(cols);
    let ngroups = r.u32()? as usize;
    let mut groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let glen = r.u32()? as usize;
        let mut g = Vec::with_capacity(glen);
        for _ in 0..glen {
            g.push(r.u32()? as usize);
        }
        groups.push(g);
    }
    let layout = Layout::from_groups(groups, ncols)?;
    let mut table = Table::with_layout(name, schema, layout)?;
    let mut dicts = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let has = r.u8()? != 0;
        let is_str = table.schema().columns()[c].ty == DataType::Str;
        if has != is_str {
            return Err(corrupt("dictionary presence does not match schema"));
        }
        if !has {
            dicts.push(None);
            continue;
        }
        let n = r.u32()? as usize;
        let mut strings = Vec::with_capacity(n);
        for _ in 0..n {
            strings.push(r.str()?);
        }
        dicts.push(Some(Dictionary::from_strings(strings)));
    }
    let len = r.u64()? as usize;
    for pi in 0..table.layout().n_groups() {
        let arena_len = r.u64()? as usize;
        let arena = r.take(arena_len)?.to_vec();
        let p = &table.partitions()[pi];
        if arena.len() != len * p.stride() {
            return Err(corrupt("arena size does not match row count"));
        }
        let nslots = p.cols().len();
        let mut validity = Vec::with_capacity(nslots);
        for _slot in 0..nslots {
            let has = r.u8()? != 0;
            if !has {
                validity.push(None);
                continue;
            }
            let bits = r.u32()? as usize;
            if bits != len {
                return Err(corrupt("validity bitmap length mismatch"));
            }
            let nwords = bits.div_ceil(64);
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            validity.push(Some(Bitmap::from_words(words, bits)));
        }
        for (slot, v) in validity.iter().enumerate() {
            if v.is_some() != table.partitions()[pi].validity(slot).is_some() {
                return Err(corrupt("validity presence does not match schema"));
            }
        }
        table.partitions_mut()[pi].restore(arena, len, validity);
    }
    let zones = if version >= 2 {
        let n_blocks = len.div_ceil(ZONE_BLOCK_ROWS);
        let mut zone_cols = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let tag = r.u8()?;
            let ty = table.schema().columns()[c].ty;
            let want = match ty {
                DataType::Int32 | DataType::Int64 => 1,
                DataType::Float64 => 2,
                DataType::Str => 0,
            };
            if tag != want {
                return Err(corrupt("zone tag does not match column type"));
            }
            zone_cols.push(match tag {
                0 => ColZone::Skipped,
                1 => ColZone::Int(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                    min: i64::from_le_bytes(min),
                    max: i64::from_le_bytes(max),
                    has_null: false,
                    has_value: false,
                })?),
                _ => ColZone::Float(read_zone_blocks(&mut r, n_blocks, |min, max| ZoneBlock {
                    min: f64::from_bits(u64::from_le_bytes(min)),
                    max: f64::from_bits(u64::from_le_bytes(max)),
                    has_null: false,
                    has_value: false,
                })?),
            });
        }
        Some(ZoneMap::from_parts(len, zone_cols))
    } else {
        None
    };
    if r.pos != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    table.restore_meta(dicts, len);
    if let Some(z) = zones {
        table.install_zones(z);
    }
    Ok((table, generation))
}

fn read_zone_blocks<T: Copy>(
    r: &mut Reader<'_>,
    n_blocks: usize,
    make: impl Fn([u8; 8], [u8; 8]) -> ZoneBlock<T>,
) -> Result<Vec<ZoneBlock<T>>> {
    let n = r.u32()? as usize;
    if n != n_blocks {
        return Err(corrupt("zone block count does not match row count"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let min: [u8; 8] = r.take(8)?.try_into().unwrap();
        let max: [u8; 8] = r.take(8)?.try_into().unwrap();
        let flags = r.u8()?;
        if flags & !0b11 != 0 {
            return Err(corrupt("bad zone flags"));
        }
        let mut b = make(min, max);
        b.has_null = flags & 1 != 0;
        b.has_value = flags & 2 != 0;
        out.push(b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    #[test]
    fn crc_known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn demo(layout: Layout) -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
            ColumnDef::new("qty", DataType::Int64),
        ]);
        let mut t = Table::with_layout("demo", schema, layout).unwrap();
        for i in 0..100i32 {
            t.insert(&[
                Value::Int32(i),
                Value::Str(format!("item-{}", i % 9)),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 * 0.5)
                },
                Value::Int64(i as i64 * 3),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn round_trip_is_byte_exact_across_layouts() {
        for layout in [
            Layout::row(4),
            Layout::column(4),
            Layout::from_groups(vec![vec![0, 3], vec![1], vec![2]], 4).unwrap(),
        ] {
            let t = demo(layout);
            let bytes = to_bytes(&t, 7);
            let (back, generation) = from_bytes(&bytes).unwrap();
            assert_eq!(generation, 7);
            assert_eq!(back.name(), t.name());
            assert_eq!(back.layout(), t.layout());
            assert_eq!(back.len(), t.len());
            // Byte-exact: arenas, codes, and a re-serialize all match.
            for (a, b) in t.partitions().iter().zip(back.partitions()) {
                assert_eq!(a.raw_bytes(), b.raw_bytes());
            }
            let code_a = t.str_code_reader(1).get(42);
            let code_b = back.str_code_reader(1).get(42);
            assert_eq!(code_a, code_b);
            assert_eq!(to_bytes(&back, 7), bytes);
            for r in 0..t.len() {
                assert_eq!(t.row(r).unwrap(), back.row(r).unwrap());
            }
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let schema = Schema::new(vec![ColumnDef::new("x", DataType::Int32)]);
        let t = Table::with_layout("empty", schema, Layout::column(1)).unwrap();
        let bytes = to_bytes(&t, 0);
        let (back, generation) = from_bytes(&bytes).unwrap();
        assert_eq!(generation, 0);
        assert!(back.is_empty());
    }

    #[test]
    fn zone_map_travels_with_the_blob() {
        let t = demo(Layout::column(4));
        let warmed = t.zone_map().clone();
        let bytes = to_bytes(&t, 3);
        let (back, _) = from_bytes(&bytes).unwrap();
        // The reloaded table answers pruning questions without a rebuild
        // pass: its installed map equals the one computed from the data.
        assert_eq!(**back.zone_map(), *warmed);
        assert_eq!(to_bytes(&back, 3), bytes);
    }

    #[test]
    fn version_1_blob_without_zone_section_still_loads() {
        let t = demo(Layout::row(4));
        let v2 = to_bytes(&t, 9);
        // Surgically rebuild the v1 form: drop the zone section (which sits
        // between the partitions and the CRC), stamp version 1, re-CRC.
        let zone_len: usize = t
            .zone_map()
            .cols()
            .iter()
            .map(|z| match z {
                ColZone::Skipped => 1,
                ColZone::Int(b) => 1 + 4 + b.len() * 17,
                ColZone::Float(b) => 1 + 4 + b.len() * 17,
            })
            .sum();
        let body_end = v2.len() - 4 - zone_len;
        let mut v1 = v2[..body_end].to_vec();
        v1[8..12].copy_from_slice(&1u32.to_le_bytes());
        let crc = crc32(&v1);
        v1.extend_from_slice(&crc.to_le_bytes());
        let (back, generation) = from_bytes(&v1).unwrap();
        assert_eq!(generation, 9);
        assert_eq!(back.len(), t.len());
        // No installed map — but the lazy rebuild produces the same one.
        assert_eq!(**back.zone_map(), **t.zone_map());
    }

    #[test]
    fn any_bit_flip_is_rejected() {
        let t = demo(Layout::row(4));
        let bytes = to_bytes(&t, 1);
        // Sample a spread of positions (every 97th byte) to keep it fast.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(from_bytes(&bad).is_err(), "flip at {pos} accepted");
        }
        // Truncations are rejected too.
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }
}
