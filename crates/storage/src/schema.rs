//! Table schemas: ordered, named, typed columns.

use crate::error::{Error, Result};
use crate::types::DataType;

/// Index of a column within its table's schema.
pub type ColId = usize;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the schema.
    pub name: String,
    /// Value type.
    pub ty: DataType,
    /// Whether NULLs are allowed. Defaults to `false` via [`ColumnDef::new`].
    pub nullable: bool,
}

impl ColumnDef {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// Nullable column.
    pub fn nullable(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of columns. Column ids are positions in this list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema. Panics on duplicate column names (a schema is static
    /// configuration; failing fast beats threading a `Result` everywhere).
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            assert!(seen.insert(c.name.clone()), "duplicate column {:?}", c.name);
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// All column definitions in id order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Definition of column `id`.
    pub fn column(&self, id: ColId) -> Result<&ColumnDef> {
        self.columns.get(id).ok_or(Error::UnknownColumn(id))
    }

    /// Resolve a column name to its id.
    pub fn col_id(&self, name: &str) -> Result<ColId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::UnknownColumnName(name.to_owned()))
    }

    /// Width in bytes of a full N-ary tuple of this schema (sum of column
    /// widths, no padding) — the `R.w` of a row-store partition.
    pub fn tuple_width(&self) -> usize {
        self.columns.iter().map(|c| c.ty.width()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int32),
            ColumnDef::nullable("b", DataType::Str),
            ColumnDef::new("c", DataType::Float64),
        ])
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = schema3();
        assert_eq!(s.col_id("b").unwrap(), 1);
        assert_eq!(s.column(2).unwrap().ty, DataType::Float64);
        assert!(matches!(s.col_id("z"), Err(Error::UnknownColumnName(_))));
        assert!(matches!(s.column(9), Err(Error::UnknownColumn(9))));
    }

    #[test]
    fn tuple_width_sums_column_widths() {
        assert_eq!(schema3().tuple_width(), 4 + 4 + 8);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int32),
            ColumnDef::new("a", DataType::Int64),
        ]);
    }
}
