//! Zone maps: per-block min/max summaries of the immutable main store.
//!
//! The main store is horizontally divided into fixed-size *zone blocks* of
//! [`ZONE_BLOCK_ROWS`] rows. For every numeric column the zone map records,
//! per block, the minimum and maximum non-NULL value plus two presence bits
//! (any NULL? any non-NULL?). A selective scan consults the map before
//! entering a block: if the conjunction of its predicates cannot hold for
//! any row of the block, the block is *refuted* and skipped entirely —
//! the "fewer partitions entered" half of the SIMD + pruning work (the
//! other half being wider inner loops, `pdsm-exec`'s `simd` module).
//!
//! Soundness notes, encoded in the refutation rules below:
//!
//! * NULL never satisfies a comparison, so min/max over the **non-NULL**
//!   values refutes comparisons even in blocks that contain NULLs, and an
//!   all-NULL block (`has_value == false`) refutes *every* comparison.
//! * Tombstones only remove rows, so a refuted block stays refuted no
//!   matter which of its rows are dead — pruning needs no tombstone mask.
//! * The delta tail is never covered: zone maps describe the immutable
//!   main only, and every scan still walks the tail scalar-style.
//! * `f64` blocks that contain a NaN are recorded as unbounded
//!   (`-inf..inf`), because NaN's comparison semantics differ per operator.
//! * String columns are skipped (dictionary codes are assigned in intern
//!   order, so code ranges carry no value order); a [`ColZone::Skipped`]
//!   column never refutes anything.

use crate::bitmap::Bitmap;
use crate::schema::ColId;
use crate::table::Table;
use crate::types::DataType;

/// Rows per zone block. Matches the low end of the morsel size range so a
/// morsel always covers whole blocks.
pub const ZONE_BLOCK_ROWS: usize = 1024;

/// Per-block summary of one numeric column. `min`/`max` range over the
/// non-NULL values and are `T::default()` when the block is all-NULL
/// (`has_value == false`) — a fixed value keeps serialization
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneBlock<T> {
    pub min: T,
    pub max: T,
    pub has_null: bool,
    pub has_value: bool,
}

/// The zone summary of one column across all blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum ColZone {
    /// `Int32` / `Int64` columns, widened to `i64`.
    Int(Vec<ZoneBlock<i64>>),
    /// `Float64` columns.
    Float(Vec<ZoneBlock<f64>>),
    /// Columns zone maps do not summarize (strings).
    Skipped,
}

/// Comparison operator of a zone predicate (mirrors the planner's `CmpOp`;
/// duplicated here so storage stays independent of the plan crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A predicate conjunct in the reduced form zone maps can test. Callers
/// (the compiled engine, the morsel dispatcher, the planner) translate
/// their own predicate representations into these; anything that does not
/// fit simply contributes no `ZonePred` and never prunes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZonePred {
    /// `col OP v` over an integer column.
    I64Cmp { col: ColId, op: ZoneOp, v: i64 },
    /// `col OP v` over a float column.
    F64Cmp { col: ColId, op: ZoneOp, v: f64 },
    /// `col IS [NOT] NULL`.
    IsNull { col: ColId, negate: bool },
}

fn cmp_refuted<T: Copy + PartialOrd + PartialEq>(b: &ZoneBlock<T>, op: ZoneOp, v: T) -> bool {
    if !b.has_value {
        // Only NULLs here, and NULL satisfies no comparison.
        return true;
    }
    match op {
        ZoneOp::Eq => v < b.min || v > b.max,
        ZoneOp::Ne => b.min == v && b.max == v,
        ZoneOp::Lt => b.min >= v,
        ZoneOp::Le => b.min > v,
        ZoneOp::Gt => b.max <= v,
        ZoneOp::Ge => b.max < v,
    }
}

/// Min/max-per-block summary of a whole table (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    n_rows: usize,
    cols: Vec<ColZone>,
}

impl ZoneMap {
    /// Build the zone map of `t` in one typed pass per column.
    pub fn build(t: &Table) -> ZoneMap {
        let n = t.len();
        let cols = (0..t.schema().len())
            .map(|c| {
                let (pi, slot) = t.col_location(c);
                let validity = t.partition(pi).validity(slot);
                match t.schema().columns()[c].ty {
                    DataType::Int32 => {
                        let r = t.i32_reader(c);
                        ColZone::Int(int_blocks(n, validity, |i| r.get(i) as i64))
                    }
                    DataType::Int64 => {
                        let r = t.i64_reader(c);
                        ColZone::Int(int_blocks(n, validity, |i| r.get(i)))
                    }
                    DataType::Float64 => {
                        let r = t.f64_reader(c);
                        ColZone::Float(float_blocks(n, validity, |i| r.get(i)))
                    }
                    DataType::Str => ColZone::Skipped,
                }
            })
            .collect();
        ZoneMap { n_rows: n, cols }
    }

    /// Construct from already-materialized parts (persistence only).
    pub(crate) fn from_parts(n_rows: usize, cols: Vec<ColZone>) -> ZoneMap {
        ZoneMap { n_rows, cols }
    }

    /// Rows covered (the main store's length at build time).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Zone map restricted to the row range `[lo, hi)`, which must start
    /// on a [`ZONE_BLOCK_ROWS`] boundary. Used by the buffer pool to give
    /// each checkpoint extent a self-contained map whose block stats are
    /// bit-identical to the corresponding slice of the full-table map.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> ZoneMap {
        assert!(lo.is_multiple_of(ZONE_BLOCK_ROWS) && lo <= hi && hi <= self.n_rows);
        let b0 = lo / ZONE_BLOCK_ROWS;
        let b1 = hi.div_ceil(ZONE_BLOCK_ROWS);
        let cols = self
            .cols
            .iter()
            .map(|c| match c {
                ColZone::Skipped => ColZone::Skipped,
                ColZone::Int(blocks) => ColZone::Int(blocks[b0..b1].to_vec()),
                ColZone::Float(blocks) => ColZone::Float(blocks[b0..b1].to_vec()),
            })
            .collect();
        ZoneMap {
            n_rows: hi - lo,
            cols,
        }
    }

    /// Number of zone blocks (`ceil(n_rows / ZONE_BLOCK_ROWS)`).
    pub fn n_blocks(&self) -> usize {
        self.n_rows.div_ceil(ZONE_BLOCK_ROWS)
    }

    /// Per-column summaries, schema order (persistence only).
    pub(crate) fn cols(&self) -> &[ColZone] {
        &self.cols
    }

    /// Row range `[start, end)` of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let start = b * ZONE_BLOCK_ROWS;
        (start, ((b + 1) * ZONE_BLOCK_ROWS).min(self.n_rows))
    }

    /// Can `pred` hold for some row of block `b`? (False = refuted.)
    pub fn block_maybe(&self, b: usize, pred: &ZonePred) -> bool {
        let zone = |col: ColId| self.cols.get(col);
        let refuted = match *pred {
            ZonePred::I64Cmp { col, op, v } => match zone(col) {
                Some(ColZone::Int(blocks)) => cmp_refuted(&blocks[b], op, v),
                _ => false,
            },
            ZonePred::F64Cmp { col, op, v } => match zone(col) {
                Some(ColZone::Float(blocks)) => cmp_refuted(&blocks[b], op, v),
                _ => false,
            },
            ZonePred::IsNull { col, negate } => match zone(col) {
                Some(ColZone::Int(blocks)) => {
                    let blk = &blocks[b];
                    if negate {
                        !blk.has_value
                    } else {
                        !blk.has_null
                    }
                }
                Some(ColZone::Float(blocks)) => {
                    let blk = &blocks[b];
                    if negate {
                        !blk.has_value
                    } else {
                        !blk.has_null
                    }
                }
                _ => false,
            },
        };
        !refuted
    }

    /// Is block `b` refuted by the conjunction `preds`? (Any single
    /// impossible conjunct refutes the whole block.)
    pub fn block_refuted(&self, b: usize, preds: &[ZonePred]) -> bool {
        preds.iter().any(|p| !self.block_maybe(b, p))
    }

    /// Per-block refutation bitmap for the conjunction `preds`.
    pub fn pruned_blocks(&self, preds: &[ZonePred]) -> Vec<bool> {
        (0..self.n_blocks())
            .map(|b| self.block_refuted(b, preds))
            .collect()
    }

    /// `(total blocks, refuted blocks)` for the conjunction `preds`.
    pub fn prune_stats(&self, preds: &[ZonePred]) -> (usize, usize) {
        let total = self.n_blocks();
        let pruned = (0..total).filter(|&b| self.block_refuted(b, preds)).count();
        (total, pruned)
    }
}

fn int_blocks(
    n: usize,
    validity: Option<&Bitmap>,
    get: impl Fn(usize) -> i64,
) -> Vec<ZoneBlock<i64>> {
    let mut out = Vec::with_capacity(n.div_ceil(ZONE_BLOCK_ROWS));
    let mut start = 0;
    while start < n {
        let end = (start + ZONE_BLOCK_ROWS).min(n);
        let mut blk = ZoneBlock {
            min: 0i64,
            max: 0i64,
            has_null: false,
            has_value: false,
        };
        for i in start..end {
            if validity.is_some_and(|bm| !bm.get(i)) {
                blk.has_null = true;
                continue;
            }
            let v = get(i);
            if blk.has_value {
                blk.min = blk.min.min(v);
                blk.max = blk.max.max(v);
            } else {
                blk.min = v;
                blk.max = v;
                blk.has_value = true;
            }
        }
        out.push(blk);
        start = end;
    }
    out
}

fn float_blocks(
    n: usize,
    validity: Option<&Bitmap>,
    get: impl Fn(usize) -> f64,
) -> Vec<ZoneBlock<f64>> {
    let mut out = Vec::with_capacity(n.div_ceil(ZONE_BLOCK_ROWS));
    let mut start = 0;
    while start < n {
        let end = (start + ZONE_BLOCK_ROWS).min(n);
        let mut blk = ZoneBlock {
            min: 0f64,
            max: 0f64,
            has_null: false,
            has_value: false,
        };
        for i in start..end {
            if validity.is_some_and(|bm| !bm.get(i)) {
                blk.has_null = true;
                continue;
            }
            let v = get(i);
            if v.is_nan() {
                // NaN compares unpredictably per operator: widen the block
                // to unbounded so no comparison is ever refuted.
                blk.min = f64::NEG_INFINITY;
                blk.max = f64::INFINITY;
                blk.has_value = true;
                continue;
            }
            if blk.has_value {
                blk.min = blk.min.min(v);
                blk.max = blk.max.max(v);
            } else {
                blk.min = v;
                blk.max = v;
                blk.has_value = true;
            }
        }
        out.push(blk);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use crate::schema::{ColumnDef, Schema};
    use crate::types::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int32),
            ColumnDef::nullable("b", DataType::Int64),
            ColumnDef::nullable("f", DataType::Float64),
            ColumnDef::new("s", DataType::Str),
        ])
    }

    fn eq(col: ColId, v: i64) -> ZonePred {
        ZonePred::I64Cmp {
            col,
            op: ZoneOp::Eq,
            v,
        }
    }

    #[test]
    fn blocks_cover_rows_and_ranges_are_tight() {
        let mut t = Table::with_layout("t", schema(), Layout::column(4)).unwrap();
        for i in 0..(ZONE_BLOCK_ROWS as i64 * 2 + 100) {
            t.insert(&[
                Value::Int32(i as i32),
                Value::Int64(i * 10),
                Value::Float64(i as f64),
                Value::Str(format!("s{i}")),
            ])
            .unwrap();
        }
        let z = ZoneMap::build(&t);
        assert_eq!(z.n_blocks(), 3);
        assert_eq!(z.block_range(2), (2 * ZONE_BLOCK_ROWS, t.len()));
        // Column a is monotonic, so a value from the last block refutes the
        // first two blocks and only those.
        let preds = [eq(0, (ZONE_BLOCK_ROWS as i64 * 2) + 5)];
        assert!(z.block_refuted(0, &preds));
        assert!(z.block_refuted(1, &preds));
        assert!(!z.block_refuted(2, &preds));
        assert_eq!(z.prune_stats(&preds), (3, 2));
    }

    #[test]
    fn all_null_block_refutes_every_comparison_but_not_is_null() {
        let mut t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        for i in 0..10 {
            t.insert(&[
                Value::Int32(i),
                Value::Null,
                Value::Null,
                Value::Str("x".into()),
            ])
            .unwrap();
        }
        let z = ZoneMap::build(&t);
        assert_eq!(z.n_blocks(), 1);
        for op in [
            ZoneOp::Eq,
            ZoneOp::Ne,
            ZoneOp::Lt,
            ZoneOp::Le,
            ZoneOp::Gt,
            ZoneOp::Ge,
        ] {
            assert!(z.block_refuted(0, &[ZonePred::I64Cmp { col: 1, op, v: 0 }]));
            assert!(z.block_refuted(0, &[ZonePred::F64Cmp { col: 2, op, v: 0.0 }]));
        }
        // IS NULL can hold; IS NOT NULL cannot.
        assert!(!z.block_refuted(
            0,
            &[ZonePred::IsNull {
                col: 1,
                negate: false
            }]
        ));
        assert!(z.block_refuted(
            0,
            &[ZonePred::IsNull {
                col: 1,
                negate: true
            }]
        ));
    }

    #[test]
    fn single_value_block_degenerate_min_eq_max() {
        let mut t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        t.insert(&[
            Value::Int32(7),
            Value::Int64(7),
            Value::Float64(7.0),
            Value::Str("x".into()),
        ])
        .unwrap();
        let z = ZoneMap::build(&t);
        // min == max == 7: Eq 7 possible, Eq 8 refuted, Ne 7 refuted,
        // Ne 8 possible, Lt 7 refuted, Le 7 possible.
        assert!(!z.block_refuted(0, &[eq(0, 7)]));
        assert!(z.block_refuted(0, &[eq(0, 8)]));
        let ne7 = ZonePred::I64Cmp {
            col: 0,
            op: ZoneOp::Ne,
            v: 7,
        };
        let ne8 = ZonePred::I64Cmp {
            col: 0,
            op: ZoneOp::Ne,
            v: 8,
        };
        assert!(z.block_refuted(0, &[ne7]));
        assert!(!z.block_refuted(0, &[ne8]));
        let lt7 = ZonePred::I64Cmp {
            col: 0,
            op: ZoneOp::Lt,
            v: 7,
        };
        let le7 = ZonePred::I64Cmp {
            col: 0,
            op: ZoneOp::Le,
            v: 7,
        };
        assert!(z.block_refuted(0, &[lt7]));
        assert!(!z.block_refuted(0, &[le7]));
    }

    #[test]
    fn string_columns_are_skipped_and_never_refute() {
        let mut t = Table::with_layout("t", schema(), Layout::column(4)).unwrap();
        t.insert(&[
            Value::Int32(1),
            Value::Int64(1),
            Value::Float64(1.0),
            Value::Str("only".into()),
        ])
        .unwrap();
        let z = ZoneMap::build(&t);
        assert!(matches!(z.cols()[3], ColZone::Skipped));
        // Predicates aimed at the string column never refute, whatever shape.
        assert!(!z.block_refuted(0, &[eq(3, 999)]));
        assert!(!z.block_refuted(
            0,
            &[ZonePred::IsNull {
                col: 3,
                negate: false
            }]
        ));
    }

    #[test]
    fn mixed_null_block_still_refutes_by_value_range() {
        let mut t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        for i in 0..20i64 {
            t.insert(&[
                Value::Int32(i as i32),
                if i % 2 == 0 {
                    Value::Null
                } else {
                    Value::Int64(i)
                },
                Value::Float64(0.5),
                Value::Str("x".into()),
            ])
            .unwrap();
        }
        let z = ZoneMap::build(&t);
        // Non-NULL b values are 1..=19 odd: b = 100 refuted, b = 3 not.
        assert!(z.block_refuted(0, &[eq(1, 100)]));
        assert!(!z.block_refuted(0, &[eq(1, 3)]));
        // The block has NULLs, so IS NULL is possible.
        assert!(!z.block_refuted(
            0,
            &[ZonePred::IsNull {
                col: 1,
                negate: false
            }]
        ));
    }

    #[test]
    fn nan_widens_float_block_to_unbounded() {
        let mut t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        t.insert(&[
            Value::Int32(0),
            Value::Int64(0),
            Value::Float64(f64::NAN),
            Value::Str("x".into()),
        ])
        .unwrap();
        let z = ZoneMap::build(&t);
        for op in [ZoneOp::Eq, ZoneOp::Lt, ZoneOp::Gt, ZoneOp::Ne] {
            assert!(
                !z.block_refuted(0, &[ZonePred::F64Cmp { col: 2, op, v: 1.0 }]),
                "{op:?}"
            );
        }
    }

    #[test]
    fn empty_table_has_no_blocks() {
        let t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        let z = ZoneMap::build(&t);
        assert_eq!(z.n_blocks(), 0);
        assert_eq!(z.prune_stats(&[eq(0, 1)]), (0, 0));
    }

    #[test]
    fn build_is_deterministic() {
        let mut t = Table::with_layout("t", schema(), Layout::row(4)).unwrap();
        for i in 0..100 {
            t.insert(&[
                Value::Int32(i % 13),
                Value::Int64(i as i64),
                Value::Float64(i as f64 / 3.0),
                Value::Str(format!("s{}", i % 5)),
            ])
            .unwrap();
        }
        assert_eq!(ZoneMap::build(&t), ZoneMap::build(&t));
    }
}
