//! Row representation used at the API boundary (inserts and query results).

use crate::types::Value;

/// An owned tuple of values, one per schema column (or per projected column
/// in a query result).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Empty row.
    pub fn new() -> Self {
        Row(Vec::new())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff the row has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Field `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// Borrow all fields.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl std::fmt::Display for Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_display() {
        let r: Row = vec![Value::Int32(1), Value::from("x"), Value::Null]
            .into_iter()
            .collect();
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(1), &Value::from("x"));
        assert_eq!(r.to_string(), "(1, x, NULL)");
        assert!(Row::new().is_empty());
    }
}
