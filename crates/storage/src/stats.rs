//! Lightweight per-column statistics for selectivity estimation.
//!
//! The planner's cardinality estimator (`pdsm-plan::selectivity`) and the
//! layout optimizer both need distinct counts and value ranges. Statistics
//! are computed exactly in one pass — table loads in this system are bulk and
//! offline, matching the paper's benchmark setup.

use crate::types::Value;
use std::collections::HashSet;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of rows scanned.
    pub row_count: usize,
    /// Number of NULLs.
    pub null_count: usize,
    /// Number of distinct non-NULL values.
    pub distinct_count: usize,
    /// Minimum non-NULL value, if any row was non-NULL.
    pub min: Option<Value>,
    /// Maximum non-NULL value, if any row was non-NULL.
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Compute stats from an iterator of values.
    pub fn compute<'a>(values: impl Iterator<Item = Value> + 'a) -> Self {
        let mut row_count = 0usize;
        let mut null_count = 0usize;
        let mut distinct: HashSet<String> = HashSet::new();
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for v in values {
            row_count += 1;
            if v.is_null() {
                null_count += 1;
                continue;
            }
            // Hash on the display form: values within one column share a type,
            // so the textual form is injective enough for exact counting.
            distinct.insert(v.to_string());
            let replace_min = match &min {
                None => true,
                Some(m) => crate::types::cmp_values(&v, m).is_lt(),
            };
            if replace_min {
                min = Some(v.clone());
            }
            let replace_max = match &max {
                None => true,
                Some(m) => crate::types::cmp_values(&v, m).is_gt(),
            };
            if replace_max {
                max = Some(v);
            }
        }
        ColumnStats {
            row_count,
            null_count,
            distinct_count: distinct.len(),
            min,
            max,
        }
    }

    /// Fraction of rows that are non-NULL.
    pub fn density(&self) -> f64 {
        if self.row_count == 0 {
            0.0
        } else {
            1.0 - self.null_count as f64 / self.row_count as f64
        }
    }

    /// Estimated selectivity of an equality predicate against this column:
    /// uniform assumption `density / distinct`.
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct_count == 0 {
            0.0
        } else {
            self.density() / self.distinct_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let vals = vec![
            Value::Int32(3),
            Value::Int32(1),
            Value::Null,
            Value::Int32(3),
            Value::Int32(7),
        ];
        let s = ColumnStats::compute(vals.into_iter());
        assert_eq!(s.row_count, 5);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 3);
        assert_eq!(s.min, Some(Value::Int32(1)));
        assert_eq!(s.max, Some(Value::Int32(7)));
        assert!((s.density() - 0.8).abs() < 1e-12);
        assert!((s.eq_selectivity() - 0.8 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_null() {
        let s = ColumnStats::compute(std::iter::empty());
        assert_eq!(s.eq_selectivity(), 0.0);
        assert_eq!(s.density(), 0.0);
        let s = ColumnStats::compute(vec![Value::Null; 4].into_iter());
        assert_eq!(s.distinct_count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.density(), 0.0);
    }
}
