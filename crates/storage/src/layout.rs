//! Vertical partitioning layouts (§III-B / §V of the paper).
//!
//! A [`Layout`] assigns every column of a schema to exactly one partition
//! group. The paper's three storage models fall out as special cases; the
//! layout optimizer in `pdsm-layout` produces arbitrary hybrids.

use crate::error::{Error, Result};
use crate::schema::ColId;

/// Classification of a layout, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Single partition holding all columns (NSM).
    Row,
    /// One partition per column (DSM).
    Column,
    /// Anything else (PDSM).
    Hybrid,
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LayoutKind::Row => "row",
            LayoutKind::Column => "column",
            LayoutKind::Hybrid => "hybrid",
        })
    }
}

/// A disjoint cover of a schema's columns by ordered groups.
///
/// Group order and intra-group column order are significant: they determine
/// the physical field order inside each partition's tuple fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    groups: Vec<Vec<ColId>>,
    n_cols: usize,
}

impl Layout {
    /// Row-store layout: one partition with all `n_cols` columns.
    pub fn row(n_cols: usize) -> Self {
        Layout {
            groups: vec![(0..n_cols).collect()],
            n_cols,
        }
    }

    /// Column-store layout: one partition per column.
    pub fn column(n_cols: usize) -> Self {
        Layout {
            groups: (0..n_cols).map(|c| vec![c]).collect(),
            n_cols,
        }
    }

    /// Arbitrary layout from explicit groups. Validates that the groups form
    /// a disjoint cover of `0..n_cols`.
    pub fn from_groups(groups: Vec<Vec<ColId>>, n_cols: usize) -> Result<Self> {
        let mut seen = vec![false; n_cols];
        for g in &groups {
            if g.is_empty() {
                return Err(Error::InvalidLayout("empty group".into()));
            }
            for &c in g {
                if c >= n_cols {
                    return Err(Error::InvalidLayout(format!(
                        "column {c} out of range for {n_cols}-column schema"
                    )));
                }
                if seen[c] {
                    return Err(Error::InvalidLayout(format!("column {c} in two groups")));
                }
                seen[c] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(Error::InvalidLayout(format!(
                "column {missing} not assigned to any group"
            )));
        }
        Ok(Layout { groups, n_cols })
    }

    /// The partition groups.
    pub fn groups(&self) -> &[Vec<ColId>] {
        &self.groups
    }

    /// Number of columns covered.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of partitions.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Which group contains column `c`.
    pub fn group_of(&self, c: ColId) -> usize {
        self.groups
            .iter()
            .position(|g| g.contains(&c))
            .expect("layout invariant: every column assigned")
    }

    /// Classify as row / column / hybrid.
    pub fn kind(&self) -> LayoutKind {
        if self.groups.len() == 1 {
            LayoutKind::Row
        } else if self.groups.iter().all(|g| g.len() == 1) {
            LayoutKind::Column
        } else {
            LayoutKind::Hybrid
        }
    }

    /// Canonical form: groups sorted by first member, members sorted. Two
    /// layouts that co-locate the same column sets compare equal in this
    /// form, regardless of declaration order.
    pub fn canonical(&self) -> Layout {
        let mut groups: Vec<Vec<ColId>> = self
            .groups
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        groups.sort_by_key(|g| g[0]);
        Layout {
            groups,
            n_cols: self.n_cols,
        }
    }
}

impl std::fmt::Display for Layout {
    /// Paper-style notation: `{{0,1},{2}}`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{{")?;
            for (j, c) in g.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "}}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_cases_classify() {
        assert_eq!(Layout::row(4).kind(), LayoutKind::Row);
        assert_eq!(Layout::column(4).kind(), LayoutKind::Column);
        let h = Layout::from_groups(vec![vec![0, 1], vec![2], vec![3]], 4).unwrap();
        assert_eq!(h.kind(), LayoutKind::Hybrid);
        // A one-column schema is simultaneously row and column; row wins.
        assert_eq!(Layout::row(1).kind(), LayoutKind::Row);
    }

    #[test]
    fn validation_rejects_non_covers() {
        assert!(Layout::from_groups(vec![vec![0], vec![0]], 1).is_err()); // dup
        assert!(Layout::from_groups(vec![vec![0]], 2).is_err()); // missing 1
        assert!(Layout::from_groups(vec![vec![0], vec![]], 1).is_err()); // empty
        assert!(Layout::from_groups(vec![vec![5]], 2).is_err()); // out of range
    }

    #[test]
    fn group_of_finds_owner() {
        let l = Layout::from_groups(vec![vec![2, 0], vec![1]], 3).unwrap();
        assert_eq!(l.group_of(0), 0);
        assert_eq!(l.group_of(1), 1);
        assert_eq!(l.group_of(2), 0);
    }

    #[test]
    fn canonical_ignores_order() {
        let a = Layout::from_groups(vec![vec![2, 0], vec![1]], 3).unwrap();
        let b = Layout::from_groups(vec![vec![1], vec![0, 2]], 3).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_ne!(a, b);
    }

    #[test]
    fn display_paper_notation() {
        let l = Layout::from_groups(vec![vec![0, 1], vec![2]], 3).unwrap();
        assert_eq!(l.to_string(), "{{0,1},{2}}");
    }
}
