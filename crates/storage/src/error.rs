//! Error type shared by the storage layer.

use std::fmt;

/// Storage-layer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A column id was out of range for the schema.
    UnknownColumn(usize),
    /// A column name was not found in the schema.
    UnknownColumnName(String),
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// NULL written to a non-nullable column.
    NullViolation(String),
    /// A row index was out of range.
    RowOutOfRange { row: usize, len: usize },
    /// A row id addressed a tombstoned (deleted or superseded) row in a
    /// versioned table.
    RowDeleted { row: usize },
    /// The number of values in a row did not match the schema width.
    ArityMismatch { expected: usize, got: usize },
    /// A layout did not form a disjoint cover of the schema's columns.
    InvalidLayout(String),
    /// A merge build was begun on a versioned table that already has one
    /// pending.
    MergeInProgress,
    /// A merge build was finished against a table whose merge state moved
    /// on (another merge completed, or the pending build was aborted).
    StaleMergeBuild,
    /// Durability I/O failed (WAL append, checkpoint write, recovery
    /// read). Carries the rendered `std::io::Error` so this enum stays
    /// `Clone + Eq`.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownColumn(id) => write!(f, "unknown column id {id}"),
            Error::UnknownColumnName(n) => write!(f, "unknown column name {n:?}"),
            Error::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on column {column:?}: expected {expected}, got {got}"
            ),
            Error::NullViolation(c) => write!(f, "NULL written to non-nullable column {c:?}"),
            Error::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range (table has {len} rows)")
            }
            Error::RowDeleted { row } => write!(f, "row {row} is deleted"),
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} columns, got {got}"
                )
            }
            Error::InvalidLayout(msg) => write!(f, "invalid layout: {msg}"),
            Error::MergeInProgress => {
                write!(f, "a merge build is already pending on this table")
            }
            Error::StaleMergeBuild => {
                write!(f, "merge build is stale: the table's merge state moved on")
            }
            Error::Io(msg) => write!(f, "durability I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Storage-layer result.
pub type Result<T> = std::result::Result<T, Error>;
