//! Column data types and the dynamic [`Value`] representation.
//!
//! All types are stored at a fixed width inside partitions so that every
//! partition has a constant stride (`R.w` in the paper's cost model).
//! Strings occupy 4 bytes in-line: a `u32` code into the column's
//! [`crate::Dictionary`].

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float.
    Float64,
    /// Dictionary-encoded UTF-8 string (stored as a `u32` code).
    Str,
}

impl DataType {
    /// Width in bytes of this type inside a partition's tuple fragment.
    #[inline]
    pub const fn width(self) -> usize {
        match self {
            DataType::Int32 => 4,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Str => 4,
        }
    }

    /// Alignment requirement of the in-partition representation.
    #[inline]
    pub const fn align(self) -> usize {
        self.width()
    }

    /// Human-readable name (used in error messages).
    pub const fn name(self) -> &'static str {
        match self {
            DataType::Int32 => "Int32",
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Str => "Str",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed value, used at the storage API boundary (inserts,
/// point reads, query results). Hot paths in the execution engines never
/// touch `Value`; they use the typed column readers instead.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    Int32(i32),
    Int64(i64),
    Float64(f64),
    Str(String),
}

impl Value {
    /// The [`DataType`] this value conforms to, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int32(_) => "Int32",
            Value::Int64(_) => "Int64",
            Value::Float64(_) => "Float64",
            Value::Str(_) => "Str",
        }
    }

    /// True iff the value is SQL NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (widening `Int32` to `i64`), `None` for other variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric view (integers widened to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Total ordering over values of the *same* type, with NULL sorting first.
/// Mixed-type comparisons order by type tag; the planner never produces them.
pub fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    use Value::*;
    match (a, b) {
        (Null, Null) => Equal,
        (Null, _) => Less,
        (_, Null) => Greater,
        (Int32(x), Int32(y)) => x.cmp(y),
        (Int64(x), Int64(y)) => x.cmp(y),
        (Int32(x), Int64(y)) => (*x as i64).cmp(y),
        (Int64(x), Int32(y)) => x.cmp(&(*y as i64)),
        (Float64(x), Float64(y)) => x.partial_cmp(y).unwrap_or(Equal),
        (Float64(x), Int32(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Equal),
        (Float64(x), Int64(y)) => x.partial_cmp(&(*y as f64)).unwrap_or(Equal),
        (Int32(x), Float64(y)) => (*x as f64).partial_cmp(y).unwrap_or(Equal),
        (Int64(x), Float64(y)) => (*x as f64).partial_cmp(y).unwrap_or(Equal),
        (Str(x), Str(y)) => x.cmp(y),
        (Str(_), _) => Greater,
        (_, Str(_)) => Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn widths_match_paper_fixed_stride_assumption() {
        assert_eq!(DataType::Int32.width(), 4);
        assert_eq!(DataType::Int64.width(), 8);
        assert_eq!(DataType::Float64.width(), 8);
        assert_eq!(DataType::Str.width(), 4); // dictionary code
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(7i32).as_i64(), Some(7));
        assert_eq!(Value::from(7i64).as_f64(), Some(7.0));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(1.5).data_type(), Some(DataType::Float64));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(cmp_values(&Value::Null, &Value::Int32(0)), Ordering::Less);
        assert_eq!(
            cmp_values(&Value::Int32(0), &Value::Null),
            Ordering::Greater
        );
        assert_eq!(cmp_values(&Value::Null, &Value::Null), Ordering::Equal);
    }

    #[test]
    fn cross_width_integer_comparison() {
        assert_eq!(
            cmp_values(&Value::Int32(5), &Value::Int64(5)),
            Ordering::Equal
        );
        assert_eq!(
            cmp_values(&Value::Int64(-1), &Value::Int32(1)),
            Ordering::Less
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from(3i32).to_string(), "3");
        assert_eq!(Value::from("abc").to_string(), "abc");
        assert_eq!(DataType::Str.to_string(), "Str");
    }
}
