//! Tables: a schema, a partitioning layout, and the partitions themselves.

use crate::dictionary::Dictionary;
use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::partition::{Partition, RawVal};
use crate::row::Row;
use crate::schema::{ColId, Schema};
use crate::stats::ColumnStats;
use crate::types::{DataType, Value};
use crate::zonemap::ZoneMap;
use std::sync::{Arc, OnceLock};

/// A memory-resident table stored according to a vertical-partitioning
/// [`Layout`]. Dictionaries for `Str` columns live at the table level so that
/// relayouting never re-encodes strings.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    layout: Layout,
    partitions: Vec<Partition>,
    /// `col_loc[c] = (partition index, slot within partition)`.
    col_loc: Vec<(usize, usize)>,
    /// One dictionary per `Str` column (index = ColId), `None` otherwise.
    dicts: Vec<Option<Dictionary>>,
    len: usize,
    /// Lazily built zone map (see [`crate::zonemap`]). Every `&mut` path
    /// that can change stored values clears it; cloning a table with a
    /// built map shares it (it is immutable once built).
    zones: OnceLock<Arc<ZoneMap>>,
}

impl Table {
    /// New table in row-store (NSM) layout.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let layout = Layout::row(schema.len());
        Self::with_layout(name, schema, layout).expect("row layout is always valid")
    }

    /// New table with an explicit layout.
    pub fn with_layout(name: impl Into<String>, schema: Schema, layout: Layout) -> Result<Self> {
        if layout.n_cols() != schema.len() {
            return Err(Error::InvalidLayout(format!(
                "layout covers {} columns, schema has {}",
                layout.n_cols(),
                schema.len()
            )));
        }
        let mut partitions = Vec::with_capacity(layout.n_groups());
        let mut col_loc = vec![(0usize, 0usize); schema.len()];
        for (pi, group) in layout.groups().iter().enumerate() {
            let types: Vec<DataType> = group.iter().map(|&c| schema.columns()[c].ty).collect();
            let nullable: Vec<bool> = group
                .iter()
                .map(|&c| schema.columns()[c].nullable)
                .collect();
            for (slot, &c) in group.iter().enumerate() {
                col_loc[c] = (pi, slot);
            }
            partitions.push(Partition::new(group.clone(), types, nullable));
        }
        let dicts = schema
            .columns()
            .iter()
            .map(|c| {
                if c.ty == DataType::Str {
                    Some(Dictionary::new())
                } else {
                    None
                }
            })
            .collect();
        Ok(Table {
            name: name.into(),
            schema,
            layout,
            partitions,
            col_loc,
            dicts,
            len: 0,
            zones: OnceLock::new(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The active layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All partitions, in layout group order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Partition `i`.
    pub fn partition(&self, i: usize) -> &Partition {
        &self.partitions[i]
    }

    /// `(partition index, slot)` of column `c`.
    pub fn col_location(&self, c: ColId) -> (usize, usize) {
        self.col_loc[c]
    }

    /// Dictionary of a `Str` column.
    pub fn dict(&self, c: ColId) -> Option<&Dictionary> {
        self.dicts.get(c).and_then(|d| d.as_ref())
    }

    /// Total bytes held by all partition arenas.
    pub fn byte_size(&self) -> usize {
        self.partitions.iter().map(|p| p.byte_size()).sum()
    }

    /// Pre-allocate space for `additional` rows in every partition.
    pub fn reserve(&mut self, additional: usize) {
        for p in &mut self.partitions {
            p.reserve(additional);
        }
    }

    /// Encode a [`Value`] for column `c` into the partition representation,
    /// interning strings into the column dictionary.
    fn encode(&mut self, c: ColId, v: &Value) -> Result<RawVal> {
        let def = &self.schema.columns()[c];
        match (v, def.ty) {
            (Value::Null, _) => {
                if def.nullable {
                    Ok(RawVal::Null)
                } else {
                    Err(Error::NullViolation(def.name.clone()))
                }
            }
            (Value::Int32(x), DataType::Int32) => Ok(RawVal::I32(*x)),
            (Value::Int64(x), DataType::Int64) => Ok(RawVal::I64(*x)),
            (Value::Int32(x), DataType::Int64) => Ok(RawVal::I64(*x as i64)),
            (Value::Float64(x), DataType::Float64) => Ok(RawVal::F64(*x)),
            (Value::Int32(x), DataType::Float64) => Ok(RawVal::F64(*x as f64)),
            (Value::Str(s), DataType::Str) => {
                let dict = self.dicts[c].as_mut().expect("Str column has dictionary");
                Ok(RawVal::U32(dict.intern(s)))
            }
            (v, ty) => Err(Error::TypeMismatch {
                column: def.name.clone(),
                expected: ty.name(),
                got: v.type_name(),
            }),
        }
    }

    /// Insert one row (values in schema column order). Returns the new row id.
    pub fn insert(&mut self, values: &[Value]) -> Result<usize> {
        if values.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                got: values.len(),
            });
        }
        // Encode first so a failure cannot leave partitions inconsistent.
        let mut encoded = Vec::with_capacity(values.len());
        for (c, v) in values.iter().enumerate() {
            encoded.push(self.encode(c, v)?);
        }
        for p in &mut self.partitions {
            let frag: Vec<RawVal> = p.cols().iter().map(|&c| encoded[c]).collect();
            p.push_row(&frag)
                .expect("encoded fragment matches partition types");
        }
        self.len += 1;
        self.invalidate_zones();
        Ok(self.len - 1)
    }

    /// Insert many rows atomically: every row is validated and encoded
    /// before any is stored, so one bad row leaves the table unchanged.
    /// (Strings of rejected rows may still have been interned — dictionary
    /// growth is harmless, codes are only referenced by stored rows.)
    pub fn insert_batch(&mut self, rows: &[Vec<Value>]) -> Result<()> {
        let mut encoded_rows = Vec::with_capacity(rows.len());
        for values in rows {
            if values.len() != self.schema.len() {
                return Err(Error::ArityMismatch {
                    expected: self.schema.len(),
                    got: values.len(),
                });
            }
            let mut encoded = Vec::with_capacity(values.len());
            for (c, v) in values.iter().enumerate() {
                encoded.push(self.encode(c, v)?);
            }
            encoded_rows.push(encoded);
        }
        self.reserve(encoded_rows.len());
        for encoded in &encoded_rows {
            for p in &mut self.partitions {
                let frag: Vec<RawVal> = p.cols().iter().map(|&c| encoded[c]).collect();
                p.push_row(&frag)
                    .expect("encoded fragment matches partition types");
            }
            self.len += 1;
        }
        self.invalidate_zones();
        Ok(())
    }

    /// Read one cell, decoding dictionary codes back to strings.
    pub fn get(&self, row: usize, c: ColId) -> Result<Value> {
        if row >= self.len {
            return Err(Error::RowOutOfRange { row, len: self.len });
        }
        if c >= self.schema.len() {
            return Err(Error::UnknownColumn(c));
        }
        let (pi, slot) = self.col_loc[c];
        let raw = self.partitions[pi].get_raw(row, slot)?;
        Ok(self.decode(c, raw))
    }

    /// Decode a partition-level value of column `c` into a [`Value`].
    pub fn decode(&self, c: ColId, raw: RawVal) -> Value {
        match raw {
            RawVal::Null => Value::Null,
            RawVal::I32(x) => Value::Int32(x),
            RawVal::I64(x) => Value::Int64(x),
            RawVal::F64(x) => Value::Float64(x),
            RawVal::U32(code) => {
                let dict = self.dicts[c].as_ref().expect("Str column has dictionary");
                Value::Str(dict.decode(code).to_owned())
            }
        }
    }

    /// Overwrite one cell.
    pub fn update(&mut self, row: usize, c: ColId, v: &Value) -> Result<()> {
        if row >= self.len {
            return Err(Error::RowOutOfRange { row, len: self.len });
        }
        if c >= self.schema.len() {
            return Err(Error::UnknownColumn(c));
        }
        let raw = self.encode(c, v)?;
        let (pi, slot) = self.col_loc[c];
        self.invalidate_zones();
        self.partitions[pi].set_raw(row, slot, raw)
    }

    /// Materialize row `row` as a [`Row`] of decoded values.
    pub fn row(&self, row: usize) -> Result<Row> {
        (0..self.schema.len())
            .map(|c| self.get(row, c))
            .collect::<Result<Vec<_>>>()
            .map(Row)
    }

    /// Iterate all rows (decoded). Intended for tests and small results, not
    /// for engine hot paths.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(move |r| self.row(r).expect("in-range"))
    }

    /// Rebuild this table's data under a different layout. Dictionaries are
    /// shared (cloned), so codes remain stable across layouts — a property
    /// the differential tests rely on.
    pub fn relayout(&self, layout: Layout) -> Result<Table> {
        if layout.n_cols() != self.schema.len() {
            return Err(Error::InvalidLayout(format!(
                "layout covers {} columns, schema has {}",
                layout.n_cols(),
                self.schema.len()
            )));
        }
        let mut out = Table::with_layout(self.name.clone(), self.schema.clone(), layout)?;
        out.dicts = self.dicts.clone();
        out.reserve(self.len);
        for p_out in &mut out.partitions {
            let srcs: Vec<(usize, usize)> = p_out.cols().iter().map(|&c| self.col_loc[c]).collect();
            for row in 0..self.len {
                let frag: Vec<RawVal> = srcs
                    .iter()
                    .map(|&(pi, slot)| self.partitions[pi].get_raw(row, slot).expect("in-range"))
                    .collect();
                p_out.push_row(&frag).expect("same types");
            }
        }
        out.len = self.len;
        Ok(out)
    }

    /// Compute statistics of column `c` (one full decode pass).
    pub fn col_stats(&self, c: ColId) -> ColumnStats {
        ColumnStats::compute((0..self.len).map(move |r| self.get(r, c).expect("in-range")))
    }

    /// Typed reader over column `c`, which must be `Int32`.
    pub fn i32_reader(&self, c: ColId) -> crate::partition::I32Col<'_> {
        let (pi, slot) = self.col_loc[c];
        self.partitions[pi].i32_col(slot)
    }

    /// Typed reader over column `c`, which must be `Int64`.
    pub fn i64_reader(&self, c: ColId) -> crate::partition::I64Col<'_> {
        let (pi, slot) = self.col_loc[c];
        self.partitions[pi].i64_col(slot)
    }

    /// Typed reader over column `c`, which must be `Float64`.
    pub fn f64_reader(&self, c: ColId) -> crate::partition::F64Col<'_> {
        let (pi, slot) = self.col_loc[c];
        self.partitions[pi].f64_col(slot)
    }

    /// Typed reader over the dictionary codes of `Str` column `c`.
    pub fn str_code_reader(&self, c: ColId) -> crate::partition::U32Col<'_> {
        let (pi, slot) = self.col_loc[c];
        self.partitions[pi].u32_col(slot)
    }

    /// Validity check for one cell without decoding.
    pub fn is_valid(&self, row: usize, c: ColId) -> bool {
        let (pi, slot) = self.col_loc[c];
        self.partitions[pi].is_valid(row, slot)
    }

    /// The table's zone map (per-block min/max summaries, see
    /// [`crate::zonemap`]), built on first use and cached until the next
    /// mutation. An `Arc` so merge/checkpoint paths can warm and hand the
    /// map across clones for free.
    pub fn zone_map(&self) -> &Arc<ZoneMap> {
        self.zones.get_or_init(|| Arc::new(ZoneMap::build(self)))
    }

    /// Install a pre-built zone map (persistence / merge warm-up only).
    /// No-op if a map is already cached. The caller asserts `z` describes
    /// exactly this table's contents.
    pub(crate) fn install_zones(&self, z: ZoneMap) {
        debug_assert_eq!(z.n_rows(), self.len);
        let _ = self.zones.set(Arc::new(z));
    }

    /// Drop the cached zone map; called by every mutating path.
    fn invalidate_zones(&mut self) {
        self.zones = OnceLock::new();
    }

    /// All per-column dictionaries, schema order (persistence only).
    pub(crate) fn dicts(&self) -> &[Option<Dictionary>] {
        &self.dicts
    }

    /// Overwrite dictionaries and row count from persisted state
    /// (persistence only; partitions are restored separately).
    pub(crate) fn restore_meta(&mut self, dicts: Vec<Option<Dictionary>>, len: usize) {
        assert_eq!(dicts.len(), self.schema.len(), "dictionary arity mismatch");
        self.dicts = dicts;
        self.len = len;
        self.invalidate_zones();
    }

    /// Mutable partitions (persistence only).
    pub(crate) fn partitions_mut(&mut self) -> &mut [Partition] {
        self.invalidate_zones();
        &mut self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn demo_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int32),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("price", DataType::Float64),
            ColumnDef::new("qty", DataType::Int64),
        ])
    }

    fn demo_table(layout: Layout) -> Table {
        let mut t = Table::with_layout("demo", demo_schema(), layout).unwrap();
        for i in 0..50i32 {
            t.insert(&[
                Value::Int32(i),
                Value::Str(format!("item-{}", i % 7)),
                if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 * 1.25)
                },
                Value::Int64(i as i64 * 10),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn insert_get_roundtrip_all_layouts() {
        for layout in [
            Layout::row(4),
            Layout::column(4),
            Layout::from_groups(vec![vec![0, 3], vec![1], vec![2]], 4).unwrap(),
        ] {
            let t = demo_table(layout);
            assert_eq!(t.len(), 50);
            assert_eq!(t.get(13, 0).unwrap(), Value::Int32(13));
            assert_eq!(t.get(13, 1).unwrap(), Value::Str("item-6".into()));
            assert_eq!(t.get(10, 2).unwrap(), Value::Null);
            assert_eq!(t.get(13, 3).unwrap(), Value::Int64(130));
        }
    }

    #[test]
    fn relayout_roundtrip_preserves_rows() {
        let row_t = demo_table(Layout::row(4));
        let col_t = row_t.relayout(Layout::column(4)).unwrap();
        let hyb = col_t
            .relayout(Layout::from_groups(vec![vec![1, 2], vec![0], vec![3]], 4).unwrap())
            .unwrap();
        let back = hyb.relayout(Layout::row(4)).unwrap();
        for r in 0..row_t.len() {
            assert_eq!(row_t.row(r).unwrap(), col_t.row(r).unwrap());
            assert_eq!(row_t.row(r).unwrap(), hyb.row(r).unwrap());
            assert_eq!(row_t.row(r).unwrap(), back.row(r).unwrap());
        }
    }

    #[test]
    fn typed_readers_work_across_layouts() {
        for layout in [
            Layout::row(4),
            Layout::column(4),
            Layout::from_groups(vec![vec![0, 2], vec![1, 3]], 4).unwrap(),
        ] {
            let t = demo_table(layout);
            let ids = t.i32_reader(0);
            let qty = t.i64_reader(3);
            let sum: i64 = (0..t.len()).map(|r| ids.get(r) as i64 + qty.get(r)).sum();
            assert_eq!(sum, (0..50i64).map(|i| i + i * 10).sum::<i64>());
        }
    }

    #[test]
    fn update_and_null_handling() {
        let mut t = demo_table(Layout::column(4));
        t.update(3, 2, &Value::Null).unwrap();
        assert_eq!(t.get(3, 2).unwrap(), Value::Null);
        assert!(!t.is_valid(3, 2));
        t.update(3, 2, &Value::Float64(8.5)).unwrap();
        assert_eq!(t.get(3, 2).unwrap(), Value::Float64(8.5));
        assert!(t.update(3, 0, &Value::Null).is_err(), "id not nullable");
        assert!(t.update(999, 0, &Value::Int32(0)).is_err());
    }

    #[test]
    fn insert_errors_are_atomic() {
        let mut t = demo_table(Layout::row(4));
        let before = t.len();
        assert!(t.insert(&[Value::Int32(1)]).is_err(), "arity");
        assert!(t
            .insert(&[
                Value::Str("wrong".into()),
                Value::Str("x".into()),
                Value::Null,
                Value::Int64(0)
            ])
            .is_err());
        assert_eq!(t.len(), before);
        assert_eq!(t.partitions()[0].len(), before);
    }

    #[test]
    fn insert_batch_is_atomic() {
        let mut t = demo_table(Layout::column(4));
        let before = t.len();
        let rows = vec![
            vec![
                Value::Int32(100),
                Value::Str("ok".into()),
                Value::Null,
                Value::Int64(1),
            ],
            vec![Value::Int32(101)], // arity error
        ];
        assert!(matches!(
            t.insert_batch(&rows),
            Err(Error::ArityMismatch { .. })
        ));
        assert_eq!(t.len(), before, "no partial batch");
        for p in t.partitions() {
            assert_eq!(p.len(), before);
        }
        let rows = vec![
            vec![
                Value::Int32(100),
                Value::Str("ok".into()),
                Value::Null,
                Value::Int64(1),
            ],
            vec![
                Value::Int32(101),
                Value::Str("ok2".into()),
                Value::Float64(2.0),
                Value::Int64(2),
            ],
        ];
        t.insert_batch(&rows).unwrap();
        assert_eq!(t.len(), before + 2);
        assert_eq!(t.get(before + 1, 0).unwrap(), Value::Int32(101));
    }

    #[test]
    fn column_bounds_are_errors_not_panics() {
        let mut t = demo_table(Layout::row(4));
        assert!(matches!(t.get(0, 99), Err(Error::UnknownColumn(99))));
        assert!(matches!(
            t.update(0, 99, &Value::Int32(1)),
            Err(Error::UnknownColumn(99))
        ));
        assert!(matches!(
            t.update(999, 0, &Value::Int32(1)),
            Err(Error::RowOutOfRange { .. })
        ));
        assert!(matches!(
            t.update(0, 1, &Value::Int64(5)),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn widening_int_to_float_and_i64() {
        let mut t = Table::new(
            "w",
            Schema::new(vec![
                ColumnDef::new("f", DataType::Float64),
                ColumnDef::new("l", DataType::Int64),
            ]),
        );
        t.insert(&[Value::Int32(3), Value::Int32(4)]).unwrap();
        assert_eq!(t.get(0, 0).unwrap(), Value::Float64(3.0));
        assert_eq!(t.get(0, 1).unwrap(), Value::Int64(4));
    }

    #[test]
    fn stats_and_sizes() {
        let t = demo_table(Layout::row(4));
        let s = t.col_stats(1);
        assert_eq!(s.distinct_count, 7);
        assert_eq!(s.null_count, 0);
        let s = t.col_stats(2);
        assert_eq!(s.null_count, 10);
        assert!(t.byte_size() >= 50 * (4 + 4 + 8 + 8));
        // row layout: one partition, stride = padded fragment
        assert_eq!(t.partitions().len(), 1);
    }

    #[test]
    fn dictionary_shared_across_relayout() {
        let t = demo_table(Layout::row(4));
        let c = t.relayout(Layout::column(4)).unwrap();
        // same code must decode to the same string in both layouts
        let code_row = t.str_code_reader(1).get(5);
        let code_col = c.str_code_reader(1).get(5);
        assert_eq!(code_row, code_col);
        assert_eq!(
            t.dict(1).unwrap().decode(code_row),
            c.dict(1).unwrap().decode(code_col)
        );
    }
}
