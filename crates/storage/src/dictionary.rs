//! Per-column string dictionaries.
//!
//! Strings are stored out-of-line: each distinct string gets a dense `u32`
//! code, and partitions store only the code. This keeps partition strides
//! fixed (the cost model's `R.w`) and makes equality predicates on strings a
//! single integer comparison. `LIKE`-style predicates are evaluated against
//! the dictionary once and then reduce to a code-set membership test — the
//! same trick used by the column stores the paper compares against.

use std::collections::HashMap;

/// An order-preserving-insertion string dictionary.
///
/// Codes are assigned in first-seen order, so they are *not* sorted; range
/// predicates on strings go through [`Dictionary::codes_matching`].
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    strings: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff no strings interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Intern `s`, returning its code (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&c) = self.codes.get(s) {
            return c;
        }
        let c = u32::try_from(self.strings.len()).expect("dictionary overflow");
        self.strings.push(s.to_owned());
        self.codes.insert(s.to_owned(), c);
        c
    }

    /// Code of `s` if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// The string behind `code`. Panics on an unknown code (storage-internal
    /// codes are always valid by construction).
    pub fn decode(&self, code: u32) -> &str {
        &self.strings[code as usize]
    }

    /// Codes of all strings satisfying `pred` (used for LIKE / prefix / range
    /// predicates: one pass over the dictionary instead of one per row).
    pub fn codes_matching(&self, mut pred: impl FnMut(&str) -> bool) -> Vec<u32> {
        self.strings
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Rebuild from persisted strings, codes assigned by position — the
    /// inverse of dumping [`Dictionary::iter`] in code order, so codes
    /// survive a save/load cycle byte-identically.
    pub(crate) fn from_strings(strings: Vec<String>) -> Self {
        let codes = strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
        Dictionary { strings, codes }
    }

    /// Iterate `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char), ASCII semantics.
///
/// Implemented with the standard two-pointer backtracking algorithm; linear
/// in practice for the catalog-style patterns the benchmarks use.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_ti) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_ti = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(a), "alpha");
        assert_eq!(d.code_of("beta"), Some(b));
        assert_eq!(d.code_of("gamma"), None);
    }

    #[test]
    fn codes_matching_prefix() {
        let mut d = Dictionary::new();
        for s in ["apple", "apricot", "banana", "avocado"] {
            d.intern(s);
        }
        let codes = d.codes_matching(|s| s.starts_with("ap"));
        let names: Vec<&str> = codes.iter().map(|&c| d.decode(c)).collect();
        assert_eq!(names, vec!["apple", "apricot"]);
    }

    #[test]
    fn like_basics() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("a%", "abc"));
        assert!(like_match("%c", "abc"));
        assert!(like_match("%b%", "abc"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("%%", "x"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
    }

    #[test]
    fn like_backtracking() {
        assert!(like_match("%ab%ab%", "xxabyyabzz"));
        assert!(!like_match("%ab%ab%", "xxabyy"));
        assert!(like_match("a%b%c", "a123b456c"));
        assert!(!like_match("a%b%c", "a123c456b"));
    }

    #[test]
    fn iter_in_code_order() {
        let mut d = Dictionary::new();
        d.intern("z");
        d.intern("a");
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "z"), (1, "a")]);
    }
}
