//! # pdsm-storage
//!
//! In-memory relational storage with **arbitrary vertical partitioning**, the
//! substrate for the Partially Decomposed Storage Model (PDSM) of
//! *Pirk et al., "CPU and Cache Efficient Management of Memory-Resident
//! Databases", ICDE 2013*.
//!
//! A [`Table`] stores its rows in one or more [`Partition`]s. Each partition
//! holds a contiguous, fixed-stride array of *tuple fragments*: the values of
//! a subset of the table's columns, interleaved row-major. The three classic
//! storage models are special cases of the partitioning [`Layout`]:
//!
//! * **NSM / row store** — a single partition containing every column,
//! * **DSM / column store** — one partition per column,
//! * **PDSM / hybrid** — any other grouping.
//!
//! Strings are dictionary-encoded (a fixed-width `u32` code lives in the
//! partition, the bytes live in a per-column [`Dictionary`]), so every
//! partition has a fixed stride and scans translate into predictable,
//! prefetcher-friendly memory traffic — the property the paper's cost model
//! (crate `pdsm-cost`) relies on.
//!
//! ```
//! use pdsm_storage::{ColumnDef, DataType, Layout, Schema, Table, Value};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::new("id", DataType::Int32),
//!     ColumnDef::new("name", DataType::Str),
//!     ColumnDef::new("price", DataType::Float64),
//! ]);
//! // Hybrid layout: (id, price) together, name alone.
//! let layout = Layout::from_groups(vec![vec![0, 2], vec![1]], 3).unwrap();
//! let mut t = Table::with_layout("products", schema, layout).unwrap();
//! t.insert(&[Value::Int32(1), Value::from("widget"), Value::Float64(9.99)])
//!     .unwrap();
//! assert_eq!(t.get(0, 1).unwrap(), Value::from("widget"));
//! ```

pub mod bitmap;
pub mod dictionary;
pub mod error;
pub mod layout;
pub mod partition;
pub mod persist;
pub mod row;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;
pub mod zonemap;

pub use bitmap::Bitmap;
pub use dictionary::Dictionary;
pub use error::{Error, Result};
pub use layout::{Layout, LayoutKind};
pub use partition::{F64Col, I32Col, I64Col, Partition, U32Col};
pub use persist::crc32;
pub use row::Row;
pub use schema::{ColId, ColumnDef, Schema};
pub use stats::ColumnStats;
pub use table::Table;
pub use types::{DataType, Value};
pub use zonemap::{ColZone, ZoneBlock, ZoneMap, ZoneOp, ZonePred, ZONE_BLOCK_ROWS};
