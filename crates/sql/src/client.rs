//! Scripted-client driving: run `.sql` files against a server and fold the
//! responses into a deterministic hash.
//!
//! Shared between the `sql-client` binary (CI) and the workspace test that
//! keeps the checked-in expectation hashes honest — both must byte-agree
//! on normalization and hashing or the check is meaningless.

use crate::session::{read_response, WireResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Run every statement of `file` over one fresh connection to `addr`,
/// returning the accumulated result hash. With `print`, echo each
/// statement's normalized result to stdout.
///
/// Hash input per statement: `ROWS <n>`, the header line, then the data
/// rows float-normalized and sorted — or `OK <n>` for DML. A server `ERR`
/// aborts with the offending line number.
pub fn drive_file(addr: &str, file: &str, print: bool) -> Result<u64, String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read: {e}"))?;
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut greeting = String::new();
    reader.read_line(&mut greeting).map_err(|e| e.to_string())?;
    if !greeting.starts_with("HELLO") {
        return Err(format!("unexpected greeting {greeting:?}"));
    }

    let mut hasher = Fnv1a::new();
    for (lineno, stmt) in text.lines().enumerate() {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        writeln!(writer, "{stmt}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let resp = read_response(&mut reader).map_err(|e| e.to_string())?;
        match resp {
            WireResponse::Rows { header, data } => {
                hasher.line(&format!("ROWS {}", data.len()));
                hasher.line(&header);
                let mut normalized: Vec<String> = data.iter().map(|l| normalize_line(l)).collect();
                normalized.sort();
                if print {
                    println!("-- line {}: {stmt}", lineno + 1);
                    println!("{header}");
                    for l in &normalized {
                        println!("{l}");
                    }
                }
                for l in &normalized {
                    hasher.line(l);
                }
            }
            WireResponse::Count(n) => {
                hasher.line(&format!("OK {n}"));
                if print {
                    println!("-- line {}: {stmt}\nOK {n}", lineno + 1);
                }
            }
            WireResponse::Error(msg) => {
                return Err(format!("line {}: server error: {msg}", lineno + 1))
            }
            WireResponse::Bye => return Err("unexpected BYE".to_string()),
        }
    }
    writeln!(writer, "QUIT").ok();
    writer.flush().ok();
    Ok(hasher.finish())
}

/// Reformat float-looking fields to 9 decimal places so accumulation order
/// can never flip a digit, mirroring `QueryOutput::normalized`.
pub fn normalize_line(line: &str) -> String {
    line.split('\t')
        .map(|f| {
            let looks_float = f.contains('.') || f.contains('e') || f.contains('E');
            match (looks_float, f.parse::<f64>()) {
                (true, Ok(v)) => format!("{v:.9}"),
                _ => f.to_string(),
            }
        })
        .collect::<Vec<_>>()
        .join("\t")
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Standard 64-bit offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }

    /// Fold one line (a trailing `\n` is hashed for framing).
    pub fn line(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
        self.0 ^= b'\n' as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_rewrites_only_float_fields() {
        assert_eq!(normalize_line("abc\t1.5\t10"), "abc\t1.500000000\t10");
        // Int-looking and non-numeric fields stay verbatim.
        assert_eq!(normalize_line("1e3x\tNULL"), "1e3x\tNULL");
    }

    #[test]
    fn hash_is_framing_sensitive() {
        let mut a = Fnv1a::new();
        a.line("ab");
        a.line("c");
        let mut b = Fnv1a::new();
        b.line("a");
        b.line("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
