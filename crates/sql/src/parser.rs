//! Hand-written recursive-descent parser.
//!
//! Grammar (statements; `[]` optional, `{}` repeated):
//!
//! ```text
//! statement   := select | EXPLAIN select | insert | update | delete
//!              | create_table | create_index
//! select      := SELECT items FROM ident { [INNER] JOIN ident ON expr }
//!                [WHERE expr] [GROUP BY expr {, expr}]
//!                [ORDER BY key [ASC|DESC] {, key [ASC|DESC]}] [LIMIT int]
//! items       := '*' | item {, item}
//! item        := expr [AS ident]
//! key         := int | expr                  -- 1-based ordinal or expression
//! insert      := INSERT INTO ident ['(' ident {, ident} ')']
//!                VALUES row {, row}
//! row         := '(' literal {, literal} ')'
//! update      := UPDATE ident SET ident '=' literal {, ident '=' literal}
//!                [WHERE expr]
//! delete      := DELETE FROM ident [WHERE expr]
//! create_table:= CREATE TABLE ident '(' coldef {, coldef} ')'
//! coldef      := ident typename [NULL | NOT NULL]
//! create_index:= CREATE INDEX [ident] ON ident '(' ident ')' [USING ident]
//! ```
//!
//! Expression precedence, loosest first: `OR`, `AND`, `NOT`, comparison /
//! `LIKE` / `IS [NOT] NULL` (non-associative), `+ -`, `* / %`, unary minus,
//! primary. Aggregate calls (`count`/`sum`/`min`/`max`/`avg`) are ordinary
//! identifiers followed by `(`; any other call site is a parse error.

use crate::ast::*;
use crate::error::{Span, SqlError};
use crate::token::{lex, Tok};
use pdsm_plan::{AggFunc, ArithOp, CmpOp};
use pdsm_storage::Value;

/// Parse one statement (optionally terminated by `;`) from `src`.
pub fn parse(src: &str) -> Result<AstStatement, SqlError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
    };
    let stmt = p.statement()?;
    p.eat(&Tok::Semi);
    let (t, s) = p.peek();
    if t != &Tok::Eof {
        return Err(SqlError::parse(
            format!("expected end of statement, found {}", t.describe()),
            s,
        ));
    }
    Ok(stmt)
}

struct Parser<'a> {
    toks: &'a [(Tok, Span)],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> (&'a Tok, Span) {
        let (t, s) = &self.toks[self.pos.min(self.toks.len() - 1)];
        (t, *s)
    }

    fn bump(&mut self) -> (Tok, Span) {
        let (t, s) = self.peek();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        (t.clone(), s)
    }

    /// Consume `t` if it is next; report whether it was.
    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek().0 == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<Span, SqlError> {
        let (next, s) = self.peek();
        if next == &t {
            self.bump();
            Ok(s)
        } else {
            Err(SqlError::parse(
                format!("expected {what}, found {}", next.describe()),
                s,
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, SqlError> {
        let (t, span) = self.peek();
        match t {
            Tok::Ident(name) => {
                let id = Ident {
                    name: name.clone(),
                    span,
                };
                self.bump();
                Ok(id)
            }
            other => Err(SqlError::parse(
                format!("expected {what}, found {}", other.describe()),
                span,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<AstStatement, SqlError> {
        let (t, span) = self.peek();
        match t {
            Tok::Select => Ok(AstStatement::Select(self.select()?)),
            Tok::Explain => {
                self.bump();
                Ok(AstStatement::Explain(self.select()?))
            }
            Tok::Insert => self.insert(),
            Tok::Update => self.update(),
            Tok::Delete => self.delete(),
            Tok::Create => self.create(),
            other => Err(SqlError::parse(
                format!(
                    "expected SELECT, EXPLAIN, INSERT, UPDATE, DELETE or CREATE, found {}",
                    other.describe()
                ),
                span,
            )),
        }
    }

    fn select(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect(Tok::Select, "SELECT")?;
        let items = if let (Tok::Star, s) = self.peek() {
            self.bump();
            SelectList::Star(s)
        } else {
            let mut items = vec![self.select_item()?];
            while self.eat(&Tok::Comma) {
                items.push(self.select_item()?);
            }
            SelectList::Items(items)
        };
        self.expect(Tok::From, "FROM")?;
        let from = self.expect_ident("table name")?;
        let mut joins = Vec::new();
        loop {
            if self.eat(&Tok::Inner) {
                self.expect(Tok::Join, "JOIN")?;
            } else if !self.eat(&Tok::Join) {
                break;
            }
            let table = self.expect_ident("table name")?;
            self.expect(Tok::On, "ON")?;
            let on = self.expr()?;
            joins.push(JoinClause { table, on });
        }
        let pred = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat(&Tok::Group) {
            self.expect(Tok::By, "BY")?;
            group_by.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat(&Tok::Order) {
            self.expect(Tok::By, "BY")?;
            loop {
                let key = match self.peek() {
                    (Tok::Int(n), s) => {
                        let n = *n;
                        self.bump();
                        if n < 1 {
                            return Err(SqlError::parse(
                                format!("ORDER BY ordinal must be >= 1, got {n}"),
                                s,
                            ));
                        }
                        OrderKey::Ordinal(n as usize, s)
                    }
                    _ => OrderKey::Expr(self.expr()?),
                };
                let asc = if self.eat(&Tok::Desc) {
                    false
                } else {
                    self.eat(&Tok::Asc);
                    true
                };
                order_by.push((key, asc));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat(&Tok::Limit) {
            let (t, s) = self.peek();
            match t {
                Tok::Int(n) if *n >= 0 => {
                    let n = *n as usize;
                    self.bump();
                    Some((n, s))
                }
                other => {
                    return Err(SqlError::parse(
                        format!(
                            "expected non-negative LIMIT count, found {}",
                            other.describe()
                        ),
                        s,
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            items,
            from,
            joins,
            pred,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        let expr = self.expr()?;
        let alias = if self.eat(&Tok::As) {
            Some(self.expect_ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn insert(&mut self) -> Result<AstStatement, SqlError> {
        self.expect(Tok::Insert, "INSERT")?;
        self.expect(Tok::Into, "INTO")?;
        let table = self.expect_ident("table name")?;
        let columns = if self.eat(&Tok::LParen) {
            let mut cols = vec![self.expect_ident("column name")?];
            while self.eat(&Tok::Comma) {
                cols.push(self.expect_ident("column name")?);
            }
            self.expect(Tok::RParen, ")")?;
            Some(cols)
        } else {
            None
        };
        self.expect(Tok::Values, "VALUES")?;
        let mut rows = vec![self.value_row()?];
        while self.eat(&Tok::Comma) {
            rows.push(self.value_row()?);
        }
        Ok(AstStatement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn value_row(&mut self) -> Result<Vec<(Value, Span)>, SqlError> {
        self.expect(Tok::LParen, "(")?;
        let mut row = vec![self.literal()?];
        while self.eat(&Tok::Comma) {
            row.push(self.literal()?);
        }
        self.expect(Tok::RParen, ")")?;
        Ok(row)
    }

    /// A literal with optional sign, as allowed in VALUES / SET positions.
    fn literal(&mut self) -> Result<(Value, Span), SqlError> {
        let (t, span) = self.peek();
        let negative = matches!(t, Tok::Minus);
        if negative || matches!(t, Tok::Plus) {
            self.bump();
        }
        let (t, s) = self.peek();
        let v = match t {
            Tok::Int(n) => {
                let n = if negative { -*n } else { *n };
                int_value(n)
            }
            Tok::Float(x) => Value::Float64(if negative { -*x } else { *x }),
            Tok::Str(txt) if !negative => Value::Str(txt.clone()),
            Tok::Null if !negative => Value::Null,
            other => {
                return Err(SqlError::parse(
                    format!("expected literal, found {}", other.describe()),
                    s,
                ))
            }
        };
        self.bump();
        Ok((v, span.merge(s)))
    }

    fn update(&mut self) -> Result<AstStatement, SqlError> {
        self.expect(Tok::Update, "UPDATE")?;
        let table = self.expect_ident("table name")?;
        self.expect(Tok::Set, "SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident("column name")?;
            self.expect(Tok::Eq, "=")?;
            let val = self.literal()?;
            sets.push((col, val));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let pred = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(AstStatement::Update { table, sets, pred })
    }

    fn delete(&mut self) -> Result<AstStatement, SqlError> {
        self.expect(Tok::Delete, "DELETE")?;
        self.expect(Tok::From, "FROM")?;
        let table = self.expect_ident("table name")?;
        let pred = if self.eat(&Tok::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(AstStatement::Delete { table, pred })
    }

    fn create(&mut self) -> Result<AstStatement, SqlError> {
        self.expect(Tok::Create, "CREATE")?;
        let (t, span) = self.peek();
        match t {
            Tok::Table => {
                self.bump();
                let name = self.expect_ident("table name")?;
                self.expect(Tok::LParen, "(")?;
                let mut columns = vec![self.column_def()?];
                while self.eat(&Tok::Comma) {
                    columns.push(self.column_def()?);
                }
                self.expect(Tok::RParen, ")")?;
                Ok(AstStatement::CreateTable { name, columns })
            }
            Tok::Index => {
                self.bump();
                // Optional index name — accepted and ignored: the engine
                // keys indexes by (table, column).
                if matches!(self.peek().0, Tok::Ident(_)) {
                    self.bump();
                }
                self.expect(Tok::On, "ON")?;
                let table = self.expect_ident("table name")?;
                self.expect(Tok::LParen, "(")?;
                let column = self.expect_ident("column name")?;
                self.expect(Tok::RParen, ")")?;
                let using = if self.eat(&Tok::Using) {
                    Some(self.expect_ident("index kind")?)
                } else {
                    None
                };
                Ok(AstStatement::CreateIndex {
                    table,
                    column,
                    using,
                })
            }
            other => Err(SqlError::parse(
                format!("expected TABLE or INDEX, found {}", other.describe()),
                span,
            )),
        }
    }

    fn column_def(&mut self) -> Result<AstColumnDef, SqlError> {
        let name = self.expect_ident("column name")?;
        let ty = self.expect_ident("type name")?;
        // Optional VARCHAR(30)-style width — parsed and ignored (strings
        // are dictionary-encoded, width is irrelevant).
        if self.eat(&Tok::LParen) {
            let (t, s) = self.peek();
            if !matches!(t, Tok::Int(_)) {
                return Err(SqlError::parse(
                    format!("expected type width, found {}", t.describe()),
                    s,
                ));
            }
            self.bump();
            self.expect(Tok::RParen, ")")?;
        }
        let nullable = if self.eat(&Tok::Not) {
            self.expect(Tok::Null, "NULL")?;
            false
        } else {
            self.eat(&Tok::Null)
        };
        Ok(AstColumnDef { name, ty, nullable })
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            e = AstExpr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut e = self.not_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.not_expr()?;
            e = AstExpr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<AstExpr, SqlError> {
        if self.eat(&Tok::Not) {
            Ok(AstExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<AstExpr, SqlError> {
        let left = self.add_expr()?;
        let (t, _) = self.peek();
        let op = match t {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            Tok::Like => {
                self.bump();
                let (p, s) = self.peek();
                return match p {
                    Tok::Str(pat) => {
                        let pat = pat.clone();
                        self.bump();
                        Ok(AstExpr::Like {
                            expr: Box::new(left),
                            pattern: pat,
                            span: s,
                        })
                    }
                    other => Err(SqlError::parse(
                        format!("expected LIKE pattern string, found {}", other.describe()),
                        s,
                    )),
                };
            }
            Tok::Is => {
                self.bump();
                let negated = self.eat(&Tok::Not);
                self.expect(Tok::Null, "NULL")?;
                return Ok(AstExpr::IsNull {
                    expr: Box::new(left),
                    negated,
                });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let right = self.add_expr()?;
                Ok(AstExpr::Cmp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn add_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek().0 {
                Tok::Plus => ArithOp::Add,
                Tok::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = AstExpr::Arith {
                op,
                left: Box::new(e),
                right: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<AstExpr, SqlError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek().0 {
                Tok::Star => ArithOp::Mul,
                Tok::Slash => ArithOp::Div,
                Tok::Percent => ArithOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = AstExpr::Arith {
                op,
                left: Box::new(e),
                right: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<AstExpr, SqlError> {
        if let (Tok::Minus, span) = self.peek() {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(match inner {
                // Fold the sign into numeric literals so `-5` binds as a
                // literal (type coercion applies), not as `0 - 5`.
                AstExpr::Lit(Value::Int32(v), s) => {
                    AstExpr::Lit(int_value(-(v as i64)), span.merge(s))
                }
                AstExpr::Lit(Value::Int64(v), s) => {
                    AstExpr::Lit(int_value(v.wrapping_neg()), span.merge(s))
                }
                AstExpr::Lit(Value::Float64(v), s) => {
                    AstExpr::Lit(Value::Float64(-v), span.merge(s))
                }
                other => AstExpr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(AstExpr::Lit(Value::Int32(0), span)),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<AstExpr, SqlError> {
        let (t, span) = self.peek();
        match t {
            Tok::Int(n) => {
                let v = int_value(*n);
                self.bump();
                Ok(AstExpr::Lit(v, span))
            }
            Tok::Float(x) => {
                let v = Value::Float64(*x);
                self.bump();
                Ok(AstExpr::Lit(v, span))
            }
            Tok::Str(s) => {
                let v = Value::Str(s.clone());
                self.bump();
                Ok(AstExpr::Lit(v, span))
            }
            Tok::Null => {
                self.bump();
                Ok(AstExpr::Lit(Value::Null, span))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen, ")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let name = name.clone();
                self.bump();
                // Function call?
                if self.peek().0 == &Tok::LParen {
                    return self.call(name, span);
                }
                // Qualified column?
                if self.eat(&Tok::Dot) {
                    let col = self.expect_ident("column name")?;
                    return Ok(AstExpr::Col {
                        table: Some(name),
                        name: col.name,
                        span: span.merge(col.span),
                    });
                }
                Ok(AstExpr::Col {
                    table: None,
                    name,
                    span,
                })
            }
            other => Err(SqlError::parse(
                format!("expected expression, found {}", other.describe()),
                span,
            )),
        }
    }

    fn call(&mut self, name: String, span: Span) -> Result<AstExpr, SqlError> {
        let func = match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return Err(SqlError::parse(format!("unknown function {name:?}"), span)),
        };
        self.expect(Tok::LParen, "(")?;
        let arg = if self.peek().0 == &Tok::Star {
            self.bump();
            if func != AggFunc::Count {
                return Err(SqlError::parse(
                    format!("{func}(*) is not valid; only count(*) takes '*'"),
                    span,
                ));
            }
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let close = self.expect(Tok::RParen, ")")?;
        Ok(AstExpr::Agg {
            func,
            arg,
            span: span.merge(close),
        })
    }
}

/// An integer literal: `Int32` when it fits, otherwise `Int64` — mirroring
/// the storage engine's narrowest-type convention.
fn int_value(n: i64) -> Value {
    match i32::try_from(n) {
        Ok(v) => Value::Int32(v),
        Err(_) => Value::Int64(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_star_minimal() {
        let ast = parse("SELECT * FROM VBAK").unwrap();
        match ast {
            AstStatement::Select(s) => {
                assert!(matches!(s.items, SelectList::Star(_)));
                assert_eq!(s.from.name, "VBAK");
                assert!(s.pred.is_none());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn precedence_or_binds_loosest() {
        // a = 1 AND b = 2 OR c = 3  →  Or(And(..), ..)
        let ast = parse("SELECT * FROM t WHERE a = 1 AND b = 2 OR c = 3").unwrap();
        let AstStatement::Select(s) = ast else {
            panic!()
        };
        assert!(matches!(s.pred, Some(AstExpr::Or(..))));
    }

    #[test]
    fn arithmetic_precedence() {
        // a + b * c parses as a + (b * c)
        let ast = parse("SELECT a + b * c FROM t").unwrap();
        let AstStatement::Select(s) = ast else {
            panic!()
        };
        let SelectList::Items(items) = s.items else {
            panic!()
        };
        match &items[0].expr {
            AstExpr::Arith {
                op: ArithOp::Add,
                right,
                ..
            } => assert!(matches!(
                **right,
                AstExpr::Arith {
                    op: ArithOp::Mul,
                    ..
                }
            )),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_order_limit() {
        let ast = parse(
            "SELECT KUNNR, count(*), sum(NETWR) FROM VBAK \
             GROUP BY KUNNR ORDER BY 3 DESC LIMIT 10",
        )
        .unwrap();
        let AstStatement::Select(s) = ast else {
            panic!()
        };
        let SelectList::Items(items) = &s.items else {
            panic!()
        };
        assert_eq!(items.len(), 3);
        assert!(items[1].expr.has_agg());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(matches!(s.order_by[0], (OrderKey::Ordinal(3, _), false)));
        assert_eq!(s.limit.map(|(n, _)| n), Some(10));
    }

    #[test]
    fn join_with_qualified_columns() {
        let ast = parse("SELECT * FROM VBAK JOIN VBAP ON VBAK.VBELN = VBAP.VBELN").unwrap();
        let AstStatement::Select(s) = ast else {
            panic!()
        };
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.name, "VBAP");
    }

    #[test]
    fn insert_with_negative_literals() {
        let ast = parse("INSERT INTO t (a, b) VALUES (1, -2.5), (-3, NULL)").unwrap();
        let AstStatement::Insert { rows, columns, .. } = ast else {
            panic!()
        };
        assert_eq!(columns.as_ref().unwrap().len(), 2);
        assert_eq!(rows[0][1].0, Value::Float64(-2.5));
        assert_eq!(rows[1][0].0, Value::Int32(-3));
        assert_eq!(rows[1][1].0, Value::Null);
    }

    #[test]
    fn update_delete_create() {
        assert!(matches!(
            parse("UPDATE t SET a = 1, b = 'x' WHERE c > 0").unwrap(),
            AstStatement::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE a IS NOT NULL").unwrap(),
            AstStatement::Delete { .. }
        ));
        let AstStatement::CreateTable { columns, .. } =
            parse("CREATE TABLE t (a INT NOT NULL, b VARCHAR(30) NULL, c DOUBLE)").unwrap()
        else {
            panic!()
        };
        assert_eq!(columns.len(), 3);
        assert!(!columns[0].nullable);
        assert!(columns[1].nullable);
        assert!(!columns[2].nullable);
        assert!(matches!(
            parse("CREATE INDEX idx ON t (a) USING HASH").unwrap(),
            AstStatement::CreateIndex { .. }
        ));
    }

    #[test]
    fn errors_have_spans() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert_eq!(err.span().start, 7);
        let err = parse("SELECT nosuchfn(a) FROM t").unwrap_err();
        assert!(err.to_string().contains("unknown function"));
        assert!(parse("SELECT sum(*) FROM t").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT -1").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t; SELECT * FROM u").is_err());
        assert!(parse("SELECT * FROM t )").is_err());
    }
}
