//! Line-protocol TCP server over `Arc<Database>`.
//!
//! One OS thread per connection, each running its own [`Session`]. The
//! accept loop enforces a connection limit (excess connections get
//! `ERR server at capacity` and are closed) and supports graceful
//! shutdown: new connections are refused, live sessions are drained, and
//! every thread is joined before [`SqlServer::shutdown`] returns.
//!
//! Connection-level commands (not SQL, handled by the server loop):
//!
//! * `QUIT` / `EXIT` — `BYE`, then the connection closes.
//! * `STATS` — a two-column `metric / value` result with the database's
//!   plan- and result-cache counters (hit rates, resident bytes,
//!   invalidations), so clients and CI can assert cache behaviour over
//!   the wire.
//! * `SHUTDOWN` — `OK 0`, then the whole server shuts down gracefully.
//!
//! Blank lines and `--` comment lines are ignored without a response, so
//! clients can stream `.sql` files verbatim.

use crate::session::{write_response, Response, Session};
use pdsm_core::Database;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrent sessions; further connections are refused with
    /// `ERR server at capacity`.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_sessions: 64 }
    }
}

/// A running SQL server. Dropping it without calling
/// [`SqlServer::shutdown`] leaves the accept thread running detached;
/// call `shutdown()` (or send `SHUTDOWN` over the wire and [`SqlServer::wait`])
/// for an orderly stop.
pub struct SqlServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SqlServer {
    /// Bind `bind_addr` (e.g. `127.0.0.1:0`) and start accepting
    /// connections against `db`.
    pub fn start(
        db: Arc<Database>,
        bind_addr: &str,
        cfg: ServerConfig,
    ) -> std::io::Result<SqlServer> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(listener, db, cfg, shutdown))
        };
        Ok(SqlServer {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown, wake the acceptor, and join every thread. Live
    /// sessions finish their in-flight statement and disconnect.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Block until the server stops on its own (a client sent `SHUTDOWN`).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    db: Arc<Database>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        handles.retain(|h| !h.is_finished());
        if active.load(Ordering::SeqCst) >= cfg.max_sessions {
            let mut s = stream;
            let _ = write_response(&mut s, &Response::Error("server at capacity".into()));
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let db = Arc::clone(&db);
        let shutdown = Arc::clone(&shutdown);
        let active = Arc::clone(&active);
        let server_addr = listener.local_addr().ok();
        handles.push(std::thread::spawn(move || {
            let _ = serve_connection(stream, db, &shutdown);
            active.fetch_sub(1, Ordering::SeqCst);
            // If this session initiated shutdown, wake the acceptor.
            if shutdown.load(Ordering::SeqCst) {
                if let Some(addr) = server_addr {
                    let _ = TcpStream::connect(addr);
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
}

fn serve_connection(
    stream: TcpStream,
    db: Arc<Database>,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    // Short read timeouts let the session poll the shutdown flag while
    // idle; partially read lines accumulate in `buf` across timeouts.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writeln!(writer, "HELLO pdsm-sql 1")?;
    writer.flush()?;
    let session = Session::new(Arc::clone(&db));
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let line = std::mem::take(&mut buf);
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match line.to_ascii_uppercase().as_str() {
            "QUIT" | "EXIT" => {
                writeln!(writer, "BYE")?;
                writer.flush()?;
                return Ok(());
            }
            "STATS" => {
                write_response(&mut writer, &stats_response(&db))?;
                continue;
            }
            "SHUTDOWN" => {
                write_response(&mut writer, &Response::Count(0))?;
                shutdown.store(true, Ordering::SeqCst);
                return Ok(());
            }
            _ => {}
        }
        let resp = session.statement(line);
        write_response(&mut writer, &resp)?;
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// The `STATS` command's payload: every plan- and result-cache counter as
/// a `metric / value` row, in a fixed order so clients can parse by line.
fn stats_response(db: &Database) -> Response {
    use pdsm_storage::Value;
    let s = db.cache_stats();
    let rows: Vec<(&str, i64)> = vec![
        ("result_cache_enabled", s.result.enabled as i64),
        ("result_cache_budget_bytes", s.result.budget_bytes as i64),
        ("result_cache_bytes", s.result.bytes as i64),
        ("result_cache_entries", s.result.entries as i64),
        ("result_cache_hits", s.result.hits as i64),
        ("result_cache_fragment_hits", s.result.fragment_hits as i64),
        ("result_cache_misses", s.result.misses as i64),
        ("result_cache_bypasses", s.result.bypasses as i64),
        ("result_cache_evictions", s.result.evictions as i64),
        ("result_cache_invalidations", s.result.invalidations as i64),
        ("result_cache_insertions", s.result.insertions as i64),
        ("plan_cache_hits", s.plan.hits as i64),
        ("plan_cache_misses", s.plan.misses as i64),
        ("plan_cache_evictions", s.plan.evictions as i64),
        ("plan_cache_invalidations", s.plan.invalidations as i64),
        ("plan_cache_entries", s.plan.entries as i64),
    ];
    // Buffer-pool counters ride along when pooling is enabled; an
    // all-resident database reports none, keeping the fixed prefix above
    // byte-stable for existing clients.
    let mut rows = rows;
    if let Some(p) = db.pool_stats() {
        rows.extend([
            ("pool_budget_bytes", p.budget_bytes as i64),
            ("pool_resident_bytes", p.resident_bytes as i64),
            ("pool_peak_resident_bytes", p.peak_resident_bytes as i64),
            ("pool_frames", p.frames as i64),
            ("pool_pinned_frames", p.pinned_frames as i64),
            ("pool_hits", p.hits as i64),
            ("pool_misses", p.misses as i64),
            ("pool_evictions", p.evictions as i64),
            ("pool_overcommits", p.overcommits as i64),
            ("pool_skipped_faults", p.skipped_faults as i64),
            ("pool_fault_ns_total", p.fault_ns_total as i64),
            ("pool_fault_ns_max", p.fault_ns_max as i64),
        ]);
    }
    Response::Rows {
        columns: vec!["metric".into(), "value".into()],
        rows: rows
            .into_iter()
            .map(|(m, v)| vec![Value::Str(m.to_string()), Value::Int64(v)])
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{read_response, WireResponse};
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn server() -> SqlServer {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
            ]),
        )
        .unwrap();
        SqlServer::start(Arc::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap()
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            let writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut greeting = String::new();
            reader.read_line(&mut greeting).unwrap();
            assert!(greeting.starts_with("HELLO pdsm-sql"), "{greeting:?}");
            Client { reader, writer }
        }

        fn send(&mut self, sql: &str) -> WireResponse {
            writeln!(self.writer, "{sql}").unwrap();
            self.writer.flush().unwrap();
            read_response(&mut self.reader).unwrap()
        }
    }

    #[test]
    fn insert_query_quit_over_tcp() {
        let srv = server();
        let mut c = Client::connect(srv.local_addr());
        assert_eq!(
            c.send("INSERT INTO t VALUES (1, 'x'), (2, 'y')"),
            WireResponse::Count(2)
        );
        match c.send("SELECT a, s FROM t ORDER BY 1") {
            WireResponse::Rows { header, data } => {
                assert_eq!(header, "a\ts");
                assert_eq!(data, vec!["1\tx", "2\ty"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match c.send("SELECT * FROM nosuch") {
            WireResponse::Error(msg) => assert!(msg.contains("unknown table")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.send("QUIT"), WireResponse::Bye);
        srv.shutdown();
    }

    #[test]
    fn concurrent_sessions_and_graceful_shutdown() {
        let srv = server();
        let addr = srv.local_addr();
        let mut a = Client::connect(addr);
        let mut b = Client::connect(addr);
        assert_eq!(a.send("CREATE TABLE ta (x INT)"), WireResponse::Count(0));
        assert_eq!(b.send("CREATE TABLE tb (y INT)"), WireResponse::Count(0));
        let ha = std::thread::spawn(move || {
            for i in 0..50 {
                let r = a.send(&format!("INSERT INTO ta VALUES ({i})"));
                assert_eq!(r, WireResponse::Count(1));
            }
            a.send("SELECT count(*) FROM ta")
        });
        let hb = std::thread::spawn(move || {
            for i in 0..50 {
                let r = b.send(&format!("INSERT INTO tb VALUES ({i})"));
                assert_eq!(r, WireResponse::Count(1));
            }
            b.send("SELECT count(*) FROM tb")
        });
        for h in [ha, hb] {
            match h.join().unwrap() {
                WireResponse::Rows { data, .. } => assert_eq!(data, vec!["50"]),
                other => panic!("unexpected {other:?}"),
            }
        }
        srv.shutdown();
    }

    #[test]
    fn stats_command_reports_cache_counters() {
        let srv = server();
        let mut c = Client::connect(srv.local_addr());
        for i in 0..4 {
            assert_eq!(
                c.send(&format!("INSERT INTO t VALUES ({i}, 'x')")),
                WireResponse::Count(1)
            );
        }
        // Two identical aggregates: the second can hit the result cache.
        for _ in 0..2 {
            match c.send("SELECT count(*) FROM t WHERE a > 0") {
                WireResponse::Rows { data, .. } => assert_eq!(data, vec!["3"]),
                other => panic!("unexpected {other:?}"),
            }
        }
        match c.send("STATS") {
            WireResponse::Rows { header, data } => {
                assert_eq!(header, "metric\tvalue");
                assert!(data.iter().any(|l| l.starts_with("result_cache_enabled\t")));
                assert!(data.iter().any(|l| l.starts_with("plan_cache_hits\t")));
            }
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown();
    }

    #[test]
    fn session_limit_refuses_excess_connections() {
        let db = Arc::new(Database::new());
        let srv = SqlServer::start(db, "127.0.0.1:0", ServerConfig { max_sessions: 1 }).unwrap();
        let _c1 = Client::connect(srv.local_addr());
        // Give the acceptor a moment to register the first session.
        std::thread::sleep(Duration::from_millis(100));
        let stream = TcpStream::connect(srv.local_addr()).unwrap();
        let mut reader = BufReader::new(stream);
        match read_response(&mut reader).unwrap() {
            WireResponse::Error(msg) => assert!(msg.contains("capacity"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown();
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let srv = server();
        let addr = srv.local_addr();
        let mut c = Client::connect(addr);
        assert_eq!(c.send("SHUTDOWN"), WireResponse::Count(0));
        srv.wait();
        // New connections are no longer served.
        assert!(
            TcpStream::connect(addr).is_err() || {
                let s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_millis(200)))
                    .unwrap();
                let mut r = BufReader::new(s);
                let mut line = String::new();
                matches!(r.read_line(&mut line), Ok(0) | Err(_))
            }
        );
    }
}
