//! Typed SQL frontend errors carrying source spans.

/// A byte range in the original SQL text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte.
    pub end: usize,
}

impl Span {
    /// `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// Which frontend stage rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Lexing or grammar error.
    Parse,
    /// Name resolution error (unknown table/column, ambiguous reference).
    Bind,
    /// Type error (incomparable operands, literal out of range, …).
    Type,
}

/// An error from the SQL frontend: stage, message, and the byte span of the
/// offending text.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    kind: SqlErrorKind,
    message: String,
    span: Span,
}

impl SqlError {
    /// Grammar/lexing error at `span`.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            kind: SqlErrorKind::Parse,
            message: message.into(),
            span,
        }
    }

    /// Name-resolution error at `span`.
    pub fn bind(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            kind: SqlErrorKind::Bind,
            message: message.into(),
            span,
        }
    }

    /// Type error at `span`.
    pub fn type_error(message: impl Into<String>, span: Span) -> Self {
        SqlError {
            kind: SqlErrorKind::Type,
            message: message.into(),
            span,
        }
    }

    /// Which stage rejected the statement.
    pub fn kind(&self) -> SqlErrorKind {
        self.kind
    }

    /// The offending byte range in the source text.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The bare message, without stage/span framing.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stage = match self.kind {
            SqlErrorKind::Parse => "parse",
            SqlErrorKind::Bind => "bind",
            SqlErrorKind::Type => "type",
        };
        write!(
            f,
            "{stage} error at byte {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_stage_and_span() {
        let e = SqlError::bind("unknown column X", Span::new(7, 8));
        assert_eq!(e.to_string(), "bind error at byte 7..8: unknown column X");
        assert_eq!(e.kind(), SqlErrorKind::Bind);
    }

    #[test]
    fn span_merge_covers_both() {
        assert_eq!(Span::new(3, 5).merge(Span::new(9, 12)), Span::new(3, 12));
    }
}
