//! Sessions and the line-protocol wire format.
//!
//! A [`Session`] executes one SQL statement at a time against a shared
//! [`Database`] handle: parse → bind → execute, snapshot-per-statement via
//! `Database::execute` (reads) or the predicate-DML entry points (writes).
//! Sessions hold no locks between statements, so any number of them can
//! run concurrently over one `Arc<Database>`.
//!
//! ## Wire format
//!
//! Requests are single lines of SQL (newline-terminated). Responses:
//!
//! ```text
//! ROWS <n>\n<TAB-separated header>\n<n TAB-separated rows>
//! OK <count>\n
//! ERR <message>\n
//! ```
//!
//! Field values escape `\`, TAB, CR and LF as `\\`, `\t`, `\r`, `\n`;
//! NULLs render as `NULL`. Error messages are flattened to one line.

use crate::binder::{compile, Statement};
use pdsm_core::Database;
use pdsm_storage::Value;
use std::io::{self, BufRead, Write};
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A query result: header plus rows.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// A DML/DDL acknowledgement with its affected-row count.
    Count(usize),
    /// Any frontend or engine error, rendered to a message.
    Error(String),
}

/// One SQL session over a shared database handle.
pub struct Session {
    db: Arc<Database>,
}

impl Session {
    /// Open a session on `db`.
    pub fn new(db: Arc<Database>) -> Self {
        Session { db }
    }

    /// The underlying database handle.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Execute one statement; never panics, never returns `Err` — every
    /// failure becomes [`Response::Error`].
    pub fn statement(&self, sql: &str) -> Response {
        let stmt = match compile(sql, &*self.db) {
            Ok(s) => s,
            Err(e) => return Response::Error(e.to_string()),
        };
        match self.execute(stmt) {
            Ok(r) => r,
            Err(e) => Response::Error(e),
        }
    }

    fn execute(&self, stmt: Statement) -> Result<Response, String> {
        let err = |e: pdsm_core::DbError| e.to_string();
        match stmt {
            Statement::Query(plan) => {
                let result = self.db.execute(&plan).map_err(err)?;
                Ok(Response::Rows {
                    columns: result.columns.clone(),
                    rows: result.into_output().rows,
                })
            }
            Statement::Explain(plan) => {
                let text = self.db.explain(&plan).map_err(err)?;
                Ok(Response::Rows {
                    columns: vec!["plan".to_string()],
                    rows: text
                        .lines()
                        .map(|l| vec![Value::Str(l.to_string())])
                        .collect(),
                })
            }
            Statement::Insert { table, rows } => {
                let ids = self.db.insert_batch(&table, &rows).map_err(err)?;
                Ok(Response::Count(ids.len()))
            }
            Statement::Update { table, sets, pred } => {
                let n = self
                    .db
                    .update_where(&table, &sets, pred.as_ref())
                    .map_err(err)?;
                Ok(Response::Count(n))
            }
            Statement::Delete { table, pred } => {
                let n = self.db.delete_where(&table, pred.as_ref()).map_err(err)?;
                Ok(Response::Count(n))
            }
            Statement::CreateTable { name, schema } => {
                self.db.create_table(&name, schema).map_err(err)?;
                Ok(Response::Count(0))
            }
            Statement::CreateIndex {
                table,
                column,
                kind,
            } => {
                self.db.create_index(&table, &column, kind).map_err(err)?;
                Ok(Response::Count(0))
            }
        }
    }
}

/// Render one value as a wire field.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => escape_field(s),
        other => other.to_string(),
    }
}

fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Write a response in the wire format.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    match resp {
        Response::Rows { columns, rows } => {
            writeln!(w, "ROWS {}", rows.len())?;
            writeln!(
                w,
                "{}",
                columns
                    .iter()
                    .map(|c| escape_field(c))
                    .collect::<Vec<_>>()
                    .join("\t")
            )?;
            for row in rows {
                writeln!(
                    w,
                    "{}",
                    row.iter().map(render_value).collect::<Vec<_>>().join("\t")
                )?;
            }
        }
        Response::Count(n) => writeln!(w, "OK {n}")?,
        Response::Error(msg) => writeln!(w, "ERR {}", msg.replace(['\n', '\r'], " "))?,
    }
    w.flush()
}

/// A response as read off the wire by a client: the raw lines, parsed just
/// enough to know the kind and row payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Header line plus data lines (still TAB-separated, escaped).
    Rows {
        header: String,
        data: Vec<String>,
    },
    Count(usize),
    Error(String),
    /// Server said goodbye (QUIT acknowledgement).
    Bye,
}

/// Read one response from the wire (client side).
pub fn read_response(r: &mut impl BufRead) -> io::Result<WireResponse> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response",
        ));
    }
    let line = line.trim_end_matches(['\n', '\r']);
    if let Some(n) = line.strip_prefix("ROWS ") {
        let n: usize = n
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad ROWS count"))?;
        let mut header = String::new();
        if r.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "missing header",
            ));
        }
        let header = header.trim_end_matches(['\n', '\r']).to_string();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = String::new();
            if r.read_line(&mut row)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "missing row"));
            }
            data.push(row.trim_end_matches(['\n', '\r']).to_string());
        }
        Ok(WireResponse::Rows { header, data })
    } else if let Some(n) = line.strip_prefix("OK ") {
        let n: usize = n
            .parse()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad OK count"))?;
        Ok(WireResponse::Count(n))
    } else if let Some(msg) = line.strip_prefix("ERR ") {
        Ok(WireResponse::Error(msg.to_string()))
    } else if line == "BYE" {
        Ok(WireResponse::Bye)
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected response line {line:?}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_storage::{ColumnDef, DataType, Schema};

    fn db() -> Arc<Database> {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("s", DataType::Str),
            ]),
        )
        .unwrap();
        Arc::new(db)
    }

    #[test]
    fn dml_and_query_through_session() {
        let s = Session::new(db());
        assert_eq!(
            s.statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')"),
            Response::Count(2)
        );
        match s.statement("SELECT a FROM t WHERE s = 'y'") {
            Response::Rows { columns, rows } => {
                assert_eq!(columns, vec!["a"]);
                assert_eq!(rows, vec![vec![Value::Int32(2)]]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            s.statement("UPDATE t SET a = 10 WHERE s = 'x'"),
            Response::Count(1)
        );
        assert_eq!(s.statement("DELETE FROM t WHERE a = 2"), Response::Count(1));
    }

    #[test]
    fn errors_become_responses_not_panics() {
        let s = Session::new(db());
        for bad in [
            "SELECT * FROM nosuch",
            "SELECT nosuchcol FROM t",
            "FLAGRANT NONSENSE",
            "SELECT * FROM t WHERE a = 'oops'",
        ] {
            match s.statement(bad) {
                Response::Error(msg) => assert!(!msg.is_empty()),
                other => panic!("{bad:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn ddl_through_session() {
        let s = Session::new(db());
        assert_eq!(
            s.statement("CREATE TABLE u (k INT, v TEXT)"),
            Response::Count(0)
        );
        assert_eq!(s.statement("CREATE INDEX ON u (k)"), Response::Count(0));
        assert_eq!(
            s.statement("INSERT INTO u VALUES (5, 'z')"),
            Response::Count(1)
        );
        match s.statement("EXPLAIN SELECT * FROM u WHERE k = 5") {
            Response::Rows { columns, rows } => {
                assert_eq!(columns, vec!["plan"]);
                assert!(!rows.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_round_trip() {
        let resp = Response::Rows {
            columns: vec!["a".into(), "s".into()],
            rows: vec![
                vec![Value::Int32(1), Value::Str("x\ty".into())],
                vec![Value::Null, Value::Str("line\nbreak".into())],
            ],
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        match read_response(&mut r).unwrap() {
            WireResponse::Rows { header, data } => {
                assert_eq!(header, "a\ts");
                assert_eq!(data, vec!["1\tx\\ty", "NULL\tline\\nbreak"]);
            }
            other => panic!("unexpected {other:?}"),
        }

        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Error("multi\nline".into())).unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(
            read_response(&mut r).unwrap(),
            WireResponse::Error("multi line".into())
        );
    }
}
