//! Abstract syntax produced by the parser, consumed by the binder.
//!
//! The AST keeps names and spans; nothing is resolved yet. Expressions mirror
//! `pdsm_plan::Expr` one-to-one (plus aggregate calls, which the binder
//! hoists into `LogicalPlan::Aggregate`), so lowering is structural.

use crate::error::Span;
use pdsm_plan::{AggFunc, ArithOp, CmpOp};
use pdsm_storage::Value;

/// A name with the span it occupied in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Ident {
    pub name: String,
    pub span: Span,
}

/// An unresolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Literal value with its source span.
    Lit(Value, Span),
    /// `[table.]column` reference.
    Col {
        table: Option<String>,
        name: String,
        span: Span,
    },
    /// Binary comparison.
    Cmp {
        op: CmpOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    /// `expr LIKE 'pattern'`.
    Like {
        expr: Box<AstExpr>,
        pattern: String,
        span: Span,
    },
    And(Box<AstExpr>, Box<AstExpr>),
    Or(Box<AstExpr>, Box<AstExpr>),
    Not(Box<AstExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// Binary arithmetic.
    Arith {
        op: ArithOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    /// Aggregate call; `arg: None` is `count(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<AstExpr>>,
        span: Span,
    },
}

impl AstExpr {
    /// Source span covering the whole expression.
    pub fn span(&self) -> Span {
        match self {
            AstExpr::Lit(_, s) => *s,
            AstExpr::Col { span, .. } => *span,
            AstExpr::Like { expr, span, .. } => expr.span().merge(*span),
            AstExpr::Cmp { left, right, .. } | AstExpr::Arith { left, right, .. } => {
                left.span().merge(right.span())
            }
            AstExpr::And(a, b) | AstExpr::Or(a, b) => a.span().merge(b.span()),
            AstExpr::Not(a) => a.span(),
            AstExpr::IsNull { expr, .. } => expr.span(),
            AstExpr::Agg { span, arg, .. } => match arg {
                Some(a) => span.merge(a.span()),
                None => *span,
            },
        }
    }

    /// True iff an aggregate call occurs anywhere in this expression.
    pub fn has_agg(&self) -> bool {
        match self {
            AstExpr::Agg { .. } => true,
            AstExpr::Lit(..) | AstExpr::Col { .. } => false,
            AstExpr::Like { expr, .. } | AstExpr::Not(expr) | AstExpr::IsNull { expr, .. } => {
                expr.has_agg()
            }
            AstExpr::Cmp { left, right, .. } | AstExpr::Arith { left, right, .. } => {
                left.has_agg() || right.has_agg()
            }
            AstExpr::And(a, b) | AstExpr::Or(a, b) => a.has_agg() || b.has_agg(),
        }
    }
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: AstExpr,
    pub alias: Option<Ident>,
}

/// The `SELECT` list: `*` or explicit items.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    Star(Span),
    Items(Vec<SelectItem>),
}

/// `JOIN table ON <expr>` — the binder requires the `ON` expression to be an
/// equi-comparison between one column of each side.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: Ident,
    pub on: AstExpr,
}

/// One `ORDER BY` key before binding.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// 1-based output ordinal (`ORDER BY 2`).
    Ordinal(usize, Span),
    /// Expression / output-name reference.
    Expr(AstExpr),
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: SelectList,
    pub from: Ident,
    pub joins: Vec<JoinClause>,
    pub pred: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub order_by: Vec<(OrderKey, bool)>,
    pub limit: Option<(usize, Span)>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstColumnDef {
    pub name: Ident,
    /// Type name token (`INT`, `BIGINT`, `DOUBLE`, `TEXT`, …).
    pub ty: Ident,
    /// `true` for `NULL`, `false` for `NOT NULL` (the default — matching
    /// `ColumnDef::new`).
    pub nullable: bool,
}

/// Any parsed statement, names still unresolved.
#[derive(Debug, Clone, PartialEq)]
pub enum AstStatement {
    Select(SelectStmt),
    Explain(SelectStmt),
    Insert {
        table: Ident,
        /// Optional explicit column list; must be a permutation of the
        /// schema when present.
        columns: Option<Vec<Ident>>,
        /// Literal rows (signs already folded into the values).
        rows: Vec<Vec<(Value, Span)>>,
    },
    Update {
        table: Ident,
        sets: Vec<(Ident, (Value, Span))>,
        pred: Option<AstExpr>,
    },
    Delete {
        table: Ident,
        pred: Option<AstExpr>,
    },
    CreateTable {
        name: Ident,
        columns: Vec<AstColumnDef>,
    },
    CreateIndex {
        table: Ident,
        column: Ident,
        /// `USING <ident>` clause, if any (`HASH`, `RBTREE`/`BTREE`/`TREE`).
        using: Option<Ident>,
    },
}
