//! Name resolution and type checking: AST → bound [`Statement`]s.
//!
//! The binder resolves table/column names against a [`SqlCatalog`]
//! (case-insensitively, exact match preferred), checks operand types, and
//! coerces comparison literals to the referenced column's exact storage
//! type. The coercion is load-bearing, not cosmetic: `cmp_values` orders
//! mixed-type operands by type tag, so a predicate comparing an `Int32`
//! column against an `Int64` literal would silently select nothing. After
//! binding, every comparison is same-typed.

use crate::ast::*;
use crate::error::{Span, SqlError};
use pdsm_core::{Database, IndexKind};
use pdsm_plan::{AggExpr, AggFunc, CmpOp, Expr, LogicalPlan};
use pdsm_storage::{ColId, DataType, Schema, Value};

/// Source of table schemas for binding. Implemented by [`Database`] and by
/// `HashMap<String, Schema>` (tests, offline tooling).
pub trait SqlCatalog {
    /// Resolve `name` (case-insensitive; exact match wins) to the table's
    /// canonical name and schema.
    fn resolve_table(&self, name: &str) -> Option<(String, Schema)>;
}

impl SqlCatalog for Database {
    fn resolve_table(&self, name: &str) -> Option<(String, Schema)> {
        if let Ok(s) = self.with_table(name, |vt| vt.schema().clone()) {
            return Some((name.to_string(), s));
        }
        let canon = self
            .table_names()
            .into_iter()
            .find(|t| t.eq_ignore_ascii_case(name))?;
        let schema = self.with_table(&canon, |vt| vt.schema().clone()).ok()?;
        Some((canon, schema))
    }
}

impl SqlCatalog for std::collections::HashMap<String, Schema> {
    fn resolve_table(&self, name: &str) -> Option<(String, Schema)> {
        if let Some(s) = self.get(name) {
            return Some((name.to_string(), s.clone()));
        }
        self.iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(name))
            .map(|(t, s)| (t.clone(), s.clone()))
    }
}

/// A fully bound statement, ready to execute against a `Database`.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …` lowered to a logical plan.
    Query(LogicalPlan),
    /// `EXPLAIN SELECT …` — same plan, routed to the planner's explain.
    Explain(LogicalPlan),
    /// `INSERT` with full schema-order rows, literals coerced.
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    /// `UPDATE … SET … [WHERE …]` with canonical column names.
    Update {
        table: String,
        sets: Vec<(String, Value)>,
        pred: Option<Expr>,
    },
    /// `DELETE FROM … [WHERE …]`.
    Delete { table: String, pred: Option<Expr> },
    /// `CREATE TABLE`.
    CreateTable { name: String, schema: Schema },
    /// `CREATE INDEX … ON table(column)`.
    CreateIndex {
        table: String,
        column: String,
        kind: IndexKind,
    },
}

/// Parse and bind one statement.
pub fn compile(sql: &str, catalog: &impl SqlCatalog) -> Result<Statement, SqlError> {
    bind(&crate::parser::parse(sql)?, catalog)
}

/// Bind a parsed statement against `catalog`.
pub fn bind(stmt: &AstStatement, catalog: &impl SqlCatalog) -> Result<Statement, SqlError> {
    match stmt {
        AstStatement::Select(s) => Ok(Statement::Query(bind_select(s, catalog)?)),
        AstStatement::Explain(s) => Ok(Statement::Explain(bind_select(s, catalog)?)),
        AstStatement::Insert {
            table,
            columns,
            rows,
        } => bind_insert(table, columns.as_deref(), rows, catalog),
        AstStatement::Update { table, sets, pred } => bind_update(table, sets, pred, catalog),
        AstStatement::Delete { table, pred } => {
            let (canon, schema) = resolve_table(catalog, table)?;
            let scope = Scope::of(&canon, &schema);
            let pred = pred
                .as_ref()
                .map(|p| scope.bind_scalar(p).map(|(e, _)| e))
                .transpose()?;
            Ok(Statement::Delete { table: canon, pred })
        }
        AstStatement::CreateTable { name, columns } => bind_create_table(name, columns),
        AstStatement::CreateIndex {
            table,
            column,
            using,
        } => bind_create_index(table, column, using.as_ref(), catalog),
    }
}

fn resolve_table(catalog: &impl SqlCatalog, table: &Ident) -> Result<(String, Schema), SqlError> {
    catalog
        .resolve_table(&table.name)
        .ok_or_else(|| SqlError::bind(format!("unknown table {:?}", table.name), table.span))
}

// ----------------------------------------------------------------------
// Scope: the columns visible to scalar expressions.
// ----------------------------------------------------------------------

struct ScopeCol {
    table: String,
    name: String,
    ty: DataType,
}

struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn of(table: &str, schema: &Schema) -> Scope {
        Scope {
            cols: schema
                .columns()
                .iter()
                .map(|c| ScopeCol {
                    table: table.to_string(),
                    name: c.name.clone(),
                    ty: c.ty,
                })
                .collect(),
        }
    }

    fn extend_with(&mut self, other: Scope) {
        self.cols.extend(other.cols);
    }

    fn resolve(
        &self,
        qual: Option<&str>,
        name: &str,
        span: Span,
    ) -> Result<(ColId, DataType), SqlError> {
        let qual_ok = |c: &ScopeCol| qual.is_none_or(|q| c.table.eq_ignore_ascii_case(q));
        let exact: Vec<ColId> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| qual_ok(c) && c.name == name)
            .map(|(i, _)| i)
            .collect();
        let cands = if exact.is_empty() {
            self.cols
                .iter()
                .enumerate()
                .filter(|(_, c)| qual_ok(c) && c.name.eq_ignore_ascii_case(name))
                .map(|(i, _)| i)
                .collect()
        } else {
            exact
        };
        match cands.as_slice() {
            [] => {
                let ctx = match qual {
                    Some(q) => format!(" in table {q:?}"),
                    None => String::new(),
                };
                Err(SqlError::bind(
                    format!("unknown column {name:?}{ctx}"),
                    span,
                ))
            }
            [one] => Ok((*one, self.cols[*one].ty)),
            _ => Err(SqlError::bind(
                format!("ambiguous column {name:?} — qualify it with a table name"),
                span,
            )),
        }
    }

    /// Bind a scalar (aggregate-free) expression, returning the lowered
    /// `Expr` and its type when statically known (`None` for NULL).
    fn bind_scalar(&self, e: &AstExpr) -> Result<(Expr, Option<DataType>), SqlError> {
        match e {
            AstExpr::Lit(v, _) => Ok((Expr::Lit(v.clone()), v.data_type())),
            AstExpr::Col { table, name, span } => {
                let (id, ty) = self.resolve(table.as_deref(), name, *span)?;
                Ok((Expr::Col(id), Some(ty)))
            }
            AstExpr::Cmp { op, left, right } => {
                let (le, lt) = self.bind_scalar(left)?;
                let (re, rt) = self.bind_scalar(right)?;
                let (le, re) = unify_comparison(le, lt, re, rt, left.span(), right.span())?;
                Ok((le.cmp(*op, re), Some(DataType::Int32)))
            }
            AstExpr::Like {
                expr,
                pattern,
                span,
            } => {
                let (ee, ty) = self.bind_scalar(expr)?;
                if matches!(ty, Some(t) if t != DataType::Str) {
                    return Err(SqlError::type_error(
                        "LIKE requires a string operand",
                        expr.span().merge(*span),
                    ));
                }
                Ok((ee.like(pattern.clone()), Some(DataType::Int32)))
            }
            AstExpr::And(a, b) => {
                let (ae, _) = self.bind_scalar(a)?;
                let (be, _) = self.bind_scalar(b)?;
                Ok((ae.and(be), Some(DataType::Int32)))
            }
            AstExpr::Or(a, b) => {
                let (ae, _) = self.bind_scalar(a)?;
                let (be, _) = self.bind_scalar(b)?;
                Ok((ae.or(be), Some(DataType::Int32)))
            }
            AstExpr::Not(a) => {
                let (ae, _) = self.bind_scalar(a)?;
                Ok((ae.not(), Some(DataType::Int32)))
            }
            AstExpr::IsNull { expr, negated } => {
                let (ee, _) = self.bind_scalar(expr)?;
                let e = ee.is_null();
                Ok((if *negated { e.not() } else { e }, Some(DataType::Int32)))
            }
            AstExpr::Arith { op, left, right } => {
                let (le, lt) = self.bind_scalar(left)?;
                let (re, rt) = self.bind_scalar(right)?;
                for (t, side) in [(lt, left), (rt, right)] {
                    if matches!(t, Some(DataType::Str)) {
                        return Err(SqlError::type_error(
                            "arithmetic requires numeric operands",
                            side.span(),
                        ));
                    }
                }
                let ty = if lt == Some(DataType::Float64) || rt == Some(DataType::Float64) {
                    DataType::Float64
                } else {
                    DataType::Int64
                };
                Ok((le.arith(*op, re), Some(ty)))
            }
            AstExpr::Agg { span, .. } => Err(SqlError::bind(
                "aggregate calls are only allowed as top-level SELECT items",
                *span,
            )),
        }
    }

    /// Bind an aggregate call.
    fn bind_agg(
        &self,
        func: AggFunc,
        arg: Option<&AstExpr>,
        span: Span,
    ) -> Result<AggExpr, SqlError> {
        let Some(arg) = arg else {
            return Ok(AggExpr::count_star());
        };
        let (e, ty) = self.bind_scalar(arg)?;
        match (func, ty) {
            (AggFunc::Sum | AggFunc::Avg, Some(DataType::Str)) => Err(SqlError::type_error(
                format!("{func} requires a numeric argument"),
                arg.span().merge(span),
            )),
            _ => Ok(AggExpr::new(func, e)),
        }
    }
}

/// Make both sides of a comparison the same storage type by coercing
/// literal operands toward the column side. Non-literal sides of different
/// known types are a type error (engines compare same-typed values only).
fn unify_comparison(
    le: Expr,
    lt: Option<DataType>,
    re: Expr,
    rt: Option<DataType>,
    lspan: Span,
    rspan: Span,
) -> Result<(Expr, Expr), SqlError> {
    match (&le, &re) {
        (_, Expr::Lit(v)) if lt.is_some() => {
            let coerced = coerce_lit(v, lt.unwrap(), rspan)?;
            Ok((le, Expr::Lit(coerced)))
        }
        (Expr::Lit(v), _) if rt.is_some() => {
            let coerced = coerce_lit(v, rt.unwrap(), lspan)?;
            Ok((Expr::Lit(coerced), re))
        }
        _ => match (lt, rt) {
            (Some(a), Some(b)) if a != b && !numeric_pair_ok(a, b) => Err(SqlError::type_error(
                format!("cannot compare {a:?} with {b:?}"),
                lspan.merge(rspan),
            )),
            _ => Ok((le, re)),
        },
    }
}

/// Mixed *computed* numeric comparisons that the interpreter handles via
/// float/int promotion would still trip `cmp_values`' type-tag ordering,
/// so only identical types pass; this hook documents the intent.
fn numeric_pair_ok(_a: DataType, _b: DataType) -> bool {
    false
}

/// Coerce a literal to `target`, the storage type of the column it is
/// compared with or inserted into.
pub(crate) fn coerce_lit(v: &Value, target: DataType, span: Span) -> Result<Value, SqlError> {
    let err = |msg: String| Err(SqlError::type_error(msg, span));
    match (v, target) {
        (Value::Null, _) => Ok(Value::Null),
        (Value::Int32(x), DataType::Int32) => Ok(Value::Int32(*x)),
        (Value::Int32(x), DataType::Int64) => Ok(Value::Int64(*x as i64)),
        (Value::Int32(x), DataType::Float64) => Ok(Value::Float64(*x as f64)),
        (Value::Int64(x), DataType::Int64) => Ok(Value::Int64(*x)),
        (Value::Int64(x), DataType::Int32) => match i32::try_from(*x) {
            Ok(v) => Ok(Value::Int32(v)),
            Err(_) => err(format!("integer literal {x} out of range for INT column")),
        },
        (Value::Int64(x), DataType::Float64) => Ok(Value::Float64(*x as f64)),
        (Value::Float64(x), DataType::Float64) => Ok(Value::Float64(*x)),
        (Value::Float64(x), DataType::Int32 | DataType::Int64) => err(format!(
            "float literal {x} cannot be compared with an integer column"
        )),
        (Value::Str(s), DataType::Str) => Ok(Value::Str(s.clone())),
        (v, t) => err(format!("literal {v} is incompatible with {t:?} column")),
    }
}

// ----------------------------------------------------------------------
// SELECT
// ----------------------------------------------------------------------

fn bind_select(s: &SelectStmt, catalog: &impl SqlCatalog) -> Result<LogicalPlan, SqlError> {
    let (from_name, from_schema) = resolve_table(catalog, &s.from)?;
    let mut scope = Scope::of(&from_name, &from_schema);
    let mut plan = LogicalPlan::Scan { table: from_name };

    // Joins: left-deep, ON must be an equi-comparison between one column of
    // each side.
    for j in &s.joins {
        let (rname, rschema) = resolve_table(catalog, &j.table)?;
        let rscope = Scope::of(&rname, &rschema);
        let (lkey, rkey) = bind_join_on(&j.on, &scope, &rscope)?;
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::Scan { table: rname }),
            left_key: Expr::Col(lkey),
            right_key: Expr::Col(rkey),
        };
        scope.extend_with(rscope);
    }

    if let Some(p) = &s.pred {
        if p.has_agg() {
            return Err(SqlError::bind(
                "aggregate calls are not allowed in WHERE",
                p.span(),
            ));
        }
        let (pred, _) = scope.bind_scalar(p)?;
        plan = LogicalPlan::Select {
            input: Box::new(plan),
            pred,
            sel_hint: None,
        };
    }

    let groups: Vec<Expr> = s
        .group_by
        .iter()
        .map(|g| scope.bind_scalar(g).map(|(e, _)| e))
        .collect::<Result<_, _>>()?;

    let has_agg_item = match &s.items {
        SelectList::Star(_) => false,
        SelectList::Items(items) => items.iter().any(|i| i.expr.has_agg()),
    };

    // Bound select items in output space, for ORDER BY resolution:
    // (alias, bound pre-projection expr or agg marker).
    enum OutItem {
        Scalar(Expr),
        Agg(AggExpr),
    }
    let mut out_items: Vec<(Option<String>, Option<String>, OutItem)> = Vec::new();

    if !groups.is_empty() || has_agg_item {
        let SelectList::Items(items) = &s.items else {
            return Err(SqlError::bind(
                "SELECT * cannot be combined with GROUP BY or aggregates",
                match &s.items {
                    SelectList::Star(sp) => *sp,
                    SelectList::Items(_) => unreachable!(),
                },
            ));
        };
        let mut aggs: Vec<AggExpr> = Vec::new();
        // Output position of each select item in groups ++ aggs space.
        let mut positions: Vec<usize> = Vec::new();
        for item in items {
            match &item.expr {
                AstExpr::Agg { func, arg, span } => {
                    let a = scope.bind_agg(*func, arg.as_deref(), *span)?;
                    aggs.push(a.clone());
                    positions.push(groups.len() + aggs.len() - 1);
                    out_items.push((
                        item.alias.as_ref().map(|a| a.name.clone()),
                        None,
                        OutItem::Agg(a),
                    ));
                }
                e if e.has_agg() => {
                    return Err(SqlError::bind(
                        "aggregate calls are only allowed as top-level SELECT items",
                        e.span(),
                    ))
                }
                e => {
                    let (b, _) = scope.bind_scalar(e)?;
                    let idx = groups.iter().position(|g| g == &b).ok_or_else(|| {
                        SqlError::bind(
                            "non-aggregate SELECT item must appear in GROUP BY",
                            e.span(),
                        )
                    })?;
                    positions.push(idx);
                    let bare = bare_col_name(e);
                    out_items.push((
                        item.alias.as_ref().map(|a| a.name.clone()),
                        bare,
                        OutItem::Scalar(b),
                    ));
                }
            }
        }
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: groups.clone(),
            aggs: aggs.clone(),
        };
        let identity = positions.len() == groups.len() + aggs.len()
            && positions.iter().enumerate().all(|(i, &p)| i == p);
        if !identity {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: positions.iter().map(|&p| Expr::Col(p)).collect(),
            };
        }
    } else {
        match &s.items {
            SelectList::Star(_) => {}
            SelectList::Items(items) => {
                let mut exprs = Vec::with_capacity(items.len());
                for item in items {
                    let (b, _) = scope.bind_scalar(&item.expr)?;
                    let bare = bare_col_name(&item.expr);
                    out_items.push((
                        item.alias.as_ref().map(|a| a.name.clone()),
                        bare,
                        OutItem::Scalar(b.clone()),
                    ));
                    exprs.push(b);
                }
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    exprs,
                };
            }
        }
    }

    // ORDER BY: keys resolve against the *output* of the select list —
    // ordinals, aliases, bare output-column names, or (for `SELECT *`)
    // arbitrary input-scope expressions.
    if !s.order_by.is_empty() {
        let is_star = matches!(s.items, SelectList::Star(_));
        let out_arity = if is_star {
            scope.cols.len()
        } else {
            out_items.len()
        };
        let mut keys = Vec::with_capacity(s.order_by.len());
        for (key, asc) in &s.order_by {
            let expr = match key {
                OrderKey::Ordinal(n, sp) => {
                    if *n > out_arity {
                        return Err(SqlError::bind(
                            format!(
                                "ORDER BY ordinal {n} out of range (output has {out_arity} columns)"
                            ),
                            *sp,
                        ));
                    }
                    Expr::Col(n - 1)
                }
                OrderKey::Expr(e) => {
                    if is_star {
                        scope.bind_scalar(e)?.0
                    } else {
                        resolve_order_key(e, &out_items, &scope)?
                    }
                }
            };
            keys.push(pdsm_plan::SortKey { expr, asc: *asc });
        }
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    if let Some((n, _)) = s.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    return Ok(plan);

    // Helpers local to select binding.

    fn bare_col_name(e: &AstExpr) -> Option<String> {
        match e {
            AstExpr::Col { name, .. } => Some(name.clone()),
            _ => None,
        }
    }

    /// A bound select-list slot: alias, underlying column name, item.
    type SelectSlot = (Option<String>, Option<String>, OutItem);

    /// Resolve an ORDER BY key against the select-list output: by alias,
    /// by bare column name, or by structural equality with a bound item.
    fn resolve_order_key(
        e: &AstExpr,
        out_items: &[SelectSlot],
        scope: &Scope,
    ) -> Result<Expr, SqlError> {
        // By name (alias first, then underlying column name).
        if let AstExpr::Col {
            table: None, name, ..
        } = e
        {
            let by = |f: &dyn Fn(&SelectSlot) -> bool| {
                let hits: Vec<usize> = out_items
                    .iter()
                    .enumerate()
                    .filter(|(_, it)| f(it))
                    .map(|(i, _)| i)
                    .collect();
                hits
            };
            let alias_hits = by(&|it| {
                it.0.as_deref()
                    .is_some_and(|a| a.eq_ignore_ascii_case(name))
            });
            let name_hits = by(&|it| {
                it.1.as_deref()
                    .is_some_and(|c| c.eq_ignore_ascii_case(name))
            });
            let hits = if alias_hits.is_empty() {
                name_hits
            } else {
                alias_hits
            };
            match hits.as_slice() {
                [one] => return Ok(Expr::Col(*one)),
                [_, _, ..] => {
                    return Err(SqlError::bind(
                        format!("ambiguous ORDER BY column {name:?}"),
                        e.span(),
                    ))
                }
                [] => {}
            }
        }
        // By structure: bind the key and compare with the bound items.
        match e {
            AstExpr::Agg { func, arg, span } => {
                let a = scope.bind_agg(*func, arg.as_deref(), *span)?;
                for (i, (_, _, it)) in out_items.iter().enumerate() {
                    if matches!(it, OutItem::Agg(b) if *b == a) {
                        return Ok(Expr::Col(i));
                    }
                }
            }
            other => {
                if let Ok((b, _)) = scope.bind_scalar(other) {
                    for (i, (_, _, it)) in out_items.iter().enumerate() {
                        if matches!(it, OutItem::Scalar(s) if *s == b) {
                            return Ok(Expr::Col(i));
                        }
                    }
                }
            }
        }
        Err(SqlError::bind(
            "ORDER BY key must be an output ordinal, alias, or selected expression",
            e.span(),
        ))
    }
}

/// Destructure a join's ON clause into (left-side column, right-side
/// column), accepting either orientation.
fn bind_join_on(on: &AstExpr, left: &Scope, right: &Scope) -> Result<(ColId, ColId), SqlError> {
    let AstExpr::Cmp {
        op: CmpOp::Eq,
        left: a,
        right: b,
    } = on
    else {
        return Err(SqlError::bind(
            "JOIN ON must be a single equality between two columns",
            on.span(),
        ));
    };
    let col = |e: &AstExpr| -> Result<(Option<String>, String, Span), SqlError> {
        match e {
            AstExpr::Col { table, name, span } => Ok((table.clone(), name.clone(), *span)),
            other => Err(SqlError::bind(
                "JOIN ON operands must be column references",
                other.span(),
            )),
        }
    };
    let (aq, an, asp) = col(a)?;
    let (bq, bn, bsp) = col(b)?;
    let try_orient = |l: &(Option<String>, String, Span), r: &(Option<String>, String, Span)| {
        let lres = left.resolve(l.0.as_deref(), &l.1, l.2);
        let rres = right.resolve(r.0.as_deref(), &r.1, r.2);
        match (lres, rres) {
            (Ok((lc, lt)), Ok((rc, rt))) => Some((lc, lt, rc, rt)),
            _ => None,
        }
    };
    let a_tuple = (aq, an, asp);
    let b_tuple = (bq, bn, bsp);
    let (lc, lt, rc, rt) = try_orient(&a_tuple, &b_tuple)
        .or_else(|| try_orient(&b_tuple, &a_tuple))
        .ok_or_else(|| {
            SqlError::bind(
                "JOIN ON must reference one column from each side",
                on.span(),
            )
        })?;
    if lt != rt {
        return Err(SqlError::type_error(
            format!("join keys have different types ({lt:?} vs {rt:?})"),
            on.span(),
        ));
    }
    Ok((lc, rc))
}

// ----------------------------------------------------------------------
// DML / DDL
// ----------------------------------------------------------------------

fn bind_insert(
    table: &Ident,
    columns: Option<&[Ident]>,
    rows: &[Vec<(Value, Span)>],
    catalog: &impl SqlCatalog,
) -> Result<Statement, SqlError> {
    let (canon, schema) = resolve_table(catalog, table)?;
    // Map from VALUES position to schema column id.
    let order: Vec<ColId> = match columns {
        None => (0..schema.len()).collect(),
        Some(cols) => {
            if cols.len() != schema.len() {
                return Err(SqlError::bind(
                    format!(
                        "INSERT column list must cover all {} columns of {canon} (got {})",
                        schema.len(),
                        cols.len()
                    ),
                    table.span,
                ));
            }
            let mut order = Vec::with_capacity(cols.len());
            let mut seen = vec![false; schema.len()];
            for c in cols {
                let id = resolve_schema_col(&schema, &c.name, c.span)?;
                if seen[id] {
                    return Err(SqlError::bind(
                        format!("duplicate INSERT column {:?}", c.name),
                        c.span,
                    ));
                }
                seen[id] = true;
                order.push(id);
            }
            order
        }
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != order.len() {
            let span = row
                .first()
                .map(|(_, s)| row.iter().fold(*s, |acc, (_, s2)| acc.merge(*s2)))
                .unwrap_or_default();
            return Err(SqlError::bind(
                format!(
                    "INSERT row has {} values, expected {}",
                    row.len(),
                    order.len()
                ),
                span,
            ));
        }
        let mut full = vec![Value::Null; schema.len()];
        for ((v, span), &col) in row.iter().zip(&order) {
            full[col] = coerce_lit(v, schema.columns()[col].ty, *span)?;
        }
        out.push(full);
    }
    Ok(Statement::Insert {
        table: canon,
        rows: out,
    })
}

fn bind_update(
    table: &Ident,
    sets: &[(Ident, (Value, Span))],
    pred: &Option<AstExpr>,
    catalog: &impl SqlCatalog,
) -> Result<Statement, SqlError> {
    let (canon, schema) = resolve_table(catalog, table)?;
    let scope = Scope::of(&canon, &schema);
    let mut bound_sets = Vec::with_capacity(sets.len());
    for (col, (v, vspan)) in sets {
        let id = resolve_schema_col(&schema, &col.name, col.span)?;
        let def = &schema.columns()[id];
        bound_sets.push((def.name.clone(), coerce_lit(v, def.ty, *vspan)?));
    }
    let pred = pred
        .as_ref()
        .map(|p| scope.bind_scalar(p).map(|(e, _)| e))
        .transpose()?;
    Ok(Statement::Update {
        table: canon,
        sets: bound_sets,
        pred,
    })
}

/// Resolve a column against a schema: exact name first, then unique
/// case-insensitive match.
fn resolve_schema_col(schema: &Schema, name: &str, span: Span) -> Result<ColId, SqlError> {
    if let Ok(id) = schema.col_id(name) {
        return Ok(id);
    }
    let hits: Vec<ColId> = schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.name.eq_ignore_ascii_case(name))
        .map(|(i, _)| i)
        .collect();
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(SqlError::bind(format!("unknown column {name:?}"), span)),
        _ => Err(SqlError::bind(format!("ambiguous column {name:?}"), span)),
    }
}

fn bind_create_table(name: &Ident, columns: &[AstColumnDef]) -> Result<Statement, SqlError> {
    use pdsm_storage::ColumnDef;
    let mut defs = Vec::with_capacity(columns.len());
    let mut seen: Vec<&str> = Vec::new();
    for c in columns {
        if seen.iter().any(|s| s.eq_ignore_ascii_case(&c.name.name)) {
            return Err(SqlError::bind(
                format!("duplicate column {:?}", c.name.name),
                c.name.span,
            ));
        }
        seen.push(&c.name.name);
        let ty = match c.ty.name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "INT4" => DataType::Int32,
            "BIGINT" | "INT8" => DataType::Int64,
            "DOUBLE" | "FLOAT" | "FLOAT8" | "REAL" => DataType::Float64,
            "TEXT" | "VARCHAR" | "STRING" | "CHAR" => DataType::Str,
            other => {
                return Err(SqlError::bind(
                    format!("unknown type {other:?} (expected INT, BIGINT, DOUBLE or TEXT)"),
                    c.ty.span,
                ))
            }
        };
        defs.push(if c.nullable {
            ColumnDef::nullable(c.name.name.clone(), ty)
        } else {
            ColumnDef::new(c.name.name.clone(), ty)
        });
    }
    Ok(Statement::CreateTable {
        name: name.name.clone(),
        schema: Schema::new(defs),
    })
}

fn bind_create_index(
    table: &Ident,
    column: &Ident,
    using: Option<&Ident>,
    catalog: &impl SqlCatalog,
) -> Result<Statement, SqlError> {
    let (canon, schema) = resolve_table(catalog, table)?;
    let id = resolve_schema_col(&schema, &column.name, column.span)?;
    let kind = match using {
        None => IndexKind::Hash,
        Some(u) => match u.name.to_ascii_uppercase().as_str() {
            "HASH" => IndexKind::Hash,
            "RBTREE" | "BTREE" | "TREE" => IndexKind::RBTree,
            other => {
                return Err(SqlError::bind(
                    format!("unknown index kind {other:?} (expected HASH or RBTREE)"),
                    u.span,
                ))
            }
        },
    };
    Ok(Statement::CreateIndex {
        table: canon,
        column: schema.columns()[id].name.clone(),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::QueryBuilder;
    use pdsm_storage::ColumnDef;
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "R".to_string(),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Int32),
                ColumnDef::new("B", DataType::Int64),
                ColumnDef::new("C", DataType::Float64),
                ColumnDef::new("D", DataType::Str),
            ]),
        );
        m.insert(
            "S".to_string(),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Int32),
                ColumnDef::new("E", DataType::Str),
            ]),
        );
        m
    }

    fn q(sql: &str) -> LogicalPlan {
        match compile(sql, &catalog()).unwrap() {
            Statement::Query(p) => p,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn literals_coerce_to_column_type() {
        // B is Int64: the Int32 literal 5 must become Int64(5).
        let p = q("SELECT * FROM R WHERE B = 5");
        let expected = QueryBuilder::scan("R")
            .filter(Expr::col(1).eq(Expr::lit(5i64)))
            .build();
        assert_eq!(p, expected);
        // C is Float64: integer literal becomes a float.
        let p = q("SELECT * FROM R WHERE C > 2");
        let expected = QueryBuilder::scan("R")
            .filter(Expr::col(2).gt(Expr::lit(2.0)))
            .build();
        assert_eq!(p, expected);
    }

    #[test]
    fn float_vs_int_column_is_a_type_error() {
        let err = compile("SELECT * FROM R WHERE A = 1.5", &catalog()).unwrap_err();
        assert!(err.to_string().contains("float literal"), "{err}");
        let err = compile("SELECT * FROM R WHERE D = 3", &catalog()).unwrap_err();
        assert!(err.to_string().contains("incompatible"), "{err}");
    }

    #[test]
    fn projection_and_star() {
        assert_eq!(
            q("SELECT A, D FROM R"),
            QueryBuilder::scan("R")
                .project(vec![Expr::col(0), Expr::col(3)])
                .build()
        );
        assert_eq!(q("SELECT * FROM R"), QueryBuilder::scan("R").build());
    }

    #[test]
    fn aggregate_identity_order_needs_no_project() {
        let p = q("SELECT D, count(*), sum(A) FROM R GROUP BY D");
        let expected = QueryBuilder::scan("R")
            .aggregate(
                vec![Expr::col(3)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build();
        assert_eq!(p, expected);
    }

    #[test]
    fn aggregate_reordered_items_get_a_projection() {
        // agg first, group second → Project [1, 0] on top.
        let p = q("SELECT count(*), D FROM R GROUP BY D");
        let expected = QueryBuilder::scan("R")
            .aggregate(vec![Expr::col(3)], vec![AggExpr::count_star()])
            .project(vec![Expr::col(1), Expr::col(0)])
            .build();
        assert_eq!(p, expected);
    }

    #[test]
    fn group_by_violation_is_caught() {
        let err = compile("SELECT A, count(*) FROM R GROUP BY D", &catalog()).unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn join_binds_either_orientation() {
        let expected = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
            .build();
        assert_eq!(q("SELECT * FROM R JOIN S ON R.A = S.A"), expected);
        assert_eq!(q("SELECT * FROM R JOIN S ON S.A = R.A"), expected);
    }

    #[test]
    fn unqualified_join_columns_resolve_one_per_side() {
        // Each ON operand resolves against one side, so the bare names
        // bind to R.A and S.A respectively.
        let expected = QueryBuilder::scan("R")
            .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
            .build();
        assert_eq!(q("SELECT * FROM R JOIN S ON A = A"), expected);
        // But an operand resolving on neither side is still an error.
        let err = compile("SELECT * FROM R JOIN S ON A = nosuch", &catalog()).unwrap_err();
        assert!(err.to_string().contains("each side"), "{err}");
    }

    #[test]
    fn order_by_ordinal_alias_and_name() {
        let sorted = |asc: bool| {
            QueryBuilder::scan("R")
                .project(vec![Expr::col(0), Expr::col(1)])
                .sort(vec![(Expr::col(1), asc)])
                .build()
        };
        assert_eq!(q("SELECT A, B FROM R ORDER BY 2"), sorted(true));
        assert_eq!(q("SELECT A, B FROM R ORDER BY B DESC"), sorted(false));
        assert_eq!(q("SELECT A, B AS x FROM R ORDER BY x DESC"), sorted(false));
        // SELECT * sorts in input scope.
        assert_eq!(
            q("SELECT * FROM R ORDER BY C"),
            QueryBuilder::scan("R")
                .sort(vec![(Expr::col(2), true)])
                .build()
        );
    }

    #[test]
    fn order_by_out_of_range_ordinal() {
        let err = compile("SELECT A FROM R ORDER BY 2", &catalog()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn insert_with_column_permutation() {
        let stmt = compile(
            "INSERT INTO R (D, C, B, A) VALUES ('x', 1.5, 7, 3)",
            &catalog(),
        )
        .unwrap();
        match stmt {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    vec![
                        Value::Int32(3),
                        Value::Int64(7),
                        Value::Float64(1.5),
                        Value::Str("x".into())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Partial column lists are rejected: storage inserts full rows.
        assert!(compile("INSERT INTO R (A) VALUES (1)", &catalog()).is_err());
    }

    #[test]
    fn update_and_delete_bind() {
        let stmt = compile("UPDATE R SET a = 9 WHERE d LIKE 'x%'", &catalog()).unwrap();
        match stmt {
            Statement::Update { table, sets, pred } => {
                assert_eq!(table, "R");
                // Case-insensitive resolution canonicalizes the name.
                assert_eq!(sets, vec![("A".to_string(), Value::Int32(9))]);
                assert!(pred.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            compile("DELETE FROM R", &catalog()).unwrap(),
            Statement::Delete { pred: None, .. }
        ));
    }

    #[test]
    fn ddl_binds() {
        let stmt = compile(
            "CREATE TABLE T (id INT, n BIGINT, x DOUBLE, s TEXT NULL)",
            &catalog(),
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { schema, .. } => {
                assert_eq!(schema.len(), 4);
                assert!(schema.columns()[3].nullable);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            compile("CREATE INDEX ON R (A) USING BTREE", &catalog()).unwrap(),
            Statement::CreateIndex {
                kind: IndexKind::RBTree,
                ..
            }
        ));
    }

    #[test]
    fn unknown_names_error_with_spans() {
        let err = compile("SELECT * FROM nosuch", &catalog()).unwrap_err();
        assert!(err.to_string().contains("unknown table"), "{err}");
        let err = compile("SELECT nosuch FROM R", &catalog()).unwrap_err();
        assert_eq!(err.span().start, 7);
    }
}
