//! Lexer: SQL text → tokens with byte-offset spans.
//!
//! The lexer is total over arbitrary input: every byte sequence either
//! tokenizes or produces a [`SqlError`] whose span points at the offending
//! bytes. Keywords are recognized case-insensitively; everything else that
//! looks like a word is an [`Tok::Ident`]. Aggregate function names are
//! *not* keywords — the parser treats `ident (` as a call site, so tables
//! and columns may be named `sum` without quoting.

use crate::error::{Span, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (table, column, alias, function name).
    Ident(String),
    /// Integer literal that fits `i64` (sign handled by the parser).
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal, `''` unescaped.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    // Keywords.
    Select,
    From,
    Where,
    Group,
    Order,
    By,
    Asc,
    Desc,
    Limit,
    Join,
    Inner,
    On,
    And,
    Or,
    Not,
    Like,
    Is,
    Null,
    As,
    Insert,
    Into,
    Values,
    Update,
    Set,
    Delete,
    Create,
    Table,
    Index,
    Using,
    Explain,
    /// End of input (always the last token; simplifies the parser).
    Eof,
}

impl Tok {
    /// Human-readable token name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier {s:?}"),
            Tok::Int(v) => format!("integer {v}"),
            Tok::Float(v) => format!("float {v}"),
            Tok::Str(s) => format!("string {s:?}"),
            Tok::Eof => "end of input".to_string(),
            other => format!("{other:?}").to_uppercase(),
        }
    }
}

fn keyword(word: &str) -> Option<Tok> {
    // Uppercase once; keywords are short so the allocation is irrelevant
    // next to parse cost.
    Some(match word.to_ascii_uppercase().as_str() {
        "SELECT" => Tok::Select,
        "FROM" => Tok::From,
        "WHERE" => Tok::Where,
        "GROUP" => Tok::Group,
        "ORDER" => Tok::Order,
        "BY" => Tok::By,
        "ASC" => Tok::Asc,
        "DESC" => Tok::Desc,
        "LIMIT" => Tok::Limit,
        "JOIN" => Tok::Join,
        "INNER" => Tok::Inner,
        "ON" => Tok::On,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "NOT" => Tok::Not,
        "LIKE" => Tok::Like,
        "IS" => Tok::Is,
        "NULL" => Tok::Null,
        "AS" => Tok::As,
        "INSERT" => Tok::Insert,
        "INTO" => Tok::Into,
        "VALUES" => Tok::Values,
        "UPDATE" => Tok::Update,
        "SET" => Tok::Set,
        "DELETE" => Tok::Delete,
        "CREATE" => Tok::Create,
        "TABLE" => Tok::Table,
        "INDEX" => Tok::Index,
        "USING" => Tok::Using,
        "EXPLAIN" => Tok::Explain,
        _ => return None,
    })
}

/// Tokenize `src` into a vector of `(token, span)` pairs terminated by
/// [`Tok::Eof`]. Comments (`-- to end of line`) and ASCII whitespace are
/// skipped.
pub fn lex(src: &str) -> Result<Vec<(Tok, Span)>, SqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if b == b'-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Punctuation and operators.
        let simple = match b {
            b'(' => Some(Tok::LParen),
            b')' => Some(Tok::RParen),
            b',' => Some(Tok::Comma),
            b'.' => {
                // A dot starting a number (`.5`) is lexed as a float below.
                if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    None
                } else {
                    Some(Tok::Dot)
                }
            }
            b';' => Some(Tok::Semi),
            b'*' => Some(Tok::Star),
            b'+' => Some(Tok::Plus),
            b'-' => Some(Tok::Minus),
            b'/' => Some(Tok::Slash),
            b'%' => Some(Tok::Percent),
            b'=' => Some(Tok::Eq),
            _ => None,
        };
        if let Some(t) = simple {
            out.push((t, Span::new(start, start + 1)));
            i += 1;
            continue;
        }
        match b {
            b'<' => {
                let (t, w) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Le, 2),
                    Some(b'>') => (Tok::Ne, 2),
                    _ => (Tok::Lt, 1),
                };
                out.push((t, Span::new(start, start + w)));
                i += w;
            }
            b'>' => {
                let (t, w) = match bytes.get(i + 1) {
                    Some(b'=') => (Tok::Ge, 2),
                    _ => (Tok::Gt, 1),
                };
                out.push((t, Span::new(start, start + w)));
                i += w;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, Span::new(start, start + 2)));
                    i += 2;
                } else {
                    return Err(SqlError::parse(
                        "unexpected character '!'",
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SqlError::parse(
                                "unterminated string literal",
                                Span::new(start, bytes.len()),
                            ))
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Copy one full UTF-8 scalar (src is &str, so
                            // char boundaries are well-defined).
                            let ch = src[i..].chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push((Tok::Str(s), Span::new(start, i)));
            }
            b'0'..=b'9' | b'.' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && bytes.get(j + 1).is_none_or(|c| !c.is_ascii_alphabetic())
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && bytes[k].is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && bytes[j].is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                let span = Span::new(i, j);
                if is_float {
                    let v: f64 = text.parse().map_err(|_| {
                        SqlError::parse(format!("bad float literal {text:?}"), span)
                    })?;
                    out.push((Tok::Float(v), span));
                } else {
                    let v: i64 = text.parse().map_err(|_| {
                        SqlError::parse(format!("integer literal {text:?} out of range"), span)
                    })?;
                    out.push((Tok::Int(v), span));
                }
                i = j;
            }
            _ => {
                // Classify by the decoded scalar, not the raw lead byte: a
                // multi-byte char whose lead byte happens to look alphabetic
                // in Latin-1 (e.g. U+FFFD starts with 0xEF = 'ï') must not
                // enter the identifier path, or the loop below would not
                // advance.
                let ch = src[i..].chars().next().unwrap();
                if ch != '_' && !ch.is_alphabetic() {
                    return Err(SqlError::parse(
                        format!("unexpected character {ch:?}"),
                        Span::new(i, i + ch.len_utf8()),
                    ));
                }
                let mut j = i;
                while j < bytes.len() {
                    let c = src[j..].chars().next().unwrap();
                    if c == '_' || c.is_alphanumeric() {
                        j += c.len_utf8();
                    } else {
                        break;
                    }
                }
                let word = &src[i..j];
                let span = Span::new(i, j);
                match keyword(word) {
                    Some(t) => out.push((t, span)),
                    None => out.push((Tok::Ident(word.to_string()), span)),
                }
                i = j;
            }
        }
    }
    out.push((Tok::Eof, Span::new(src.len(), src.len())));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("select FROM WhErE"),
            vec![Tok::Select, Tok::From, Tok::Where, Tok::Eof]
        );
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            toks("a <= 10 <> 2.5 != 1e3"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Int(10),
                Tok::Ne,
                Tok::Float(2.5),
                Tok::Ne,
                Tok::Float(1e3),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_unescape_quotes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select -- everything\n1"),
            vec![Tok::Select, Tok::Int(1), Tok::Eof]
        );
    }

    #[test]
    fn bad_input_is_an_error_with_span() {
        let err = lex("select @").unwrap_err();
        assert_eq!(err.span().start, 7);
        let err = lex("'open").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn multibyte_non_letter_errors_instead_of_looping() {
        // U+FFFD's lead byte (0xEF) is alphabetic when misread as Latin-1;
        // the lexer must reject the char, not spin on it.
        let err = lex("select \u{fffd}").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        // Real multi-byte letters still lex as identifiers.
        assert_eq!(toks("änder"), vec![Tok::Ident("änder".into()), Tok::Eof]);
    }

    #[test]
    fn huge_integer_is_an_error_not_a_panic() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
