//! # pdsm-sql
//!
//! SQL frontend and network service for the PDSM database. Everything is
//! hand-written — no parser generators, no external dependencies — and
//! lowers onto the existing engine surface:
//!
//! * [`token`] — lexer with byte-offset spans; total over arbitrary input.
//! * [`parser`] — recursive-descent parser for the supported SQL subset:
//!   `SELECT` (projections, the five aggregates, `WHERE` with the full
//!   expression language, `GROUP BY`, equi-`JOIN`, `ORDER BY`, `LIMIT`),
//!   `EXPLAIN`, `INSERT`, `UPDATE`, `DELETE`, `CREATE TABLE`,
//!   `CREATE INDEX`.
//! * [`binder`] — name resolution and type checking against a
//!   [`SqlCatalog`] (implemented by `Database`), producing
//!   [`Statement`]s over `pdsm_plan::LogicalPlan`. Comparison literals are
//!   coerced to the referenced column's exact storage type, because the
//!   engines compare same-typed values only.
//! * [`render`] — the inverse: [`plan_to_sql`] renders a canonical plan
//!   back to SQL text such that parse+bind reproduces the plan
//!   structurally (modulo selectivity hints). The differential suites
//!   lean on this to run every benchmark query as SQL text.
//! * [`session`] — statement execution over `Arc<Database>` plus the
//!   line-protocol framing shared by server, REPL, and client.
//! * [`server`] — thread-per-connection TCP server with a session limit
//!   and graceful shutdown.
//!
//! Binaries: `pdsm-server` (network service), `pdsm-repl` (interactive
//! shell), `sql-client` (scripted CI driver with result hashing).

pub mod ast;
pub mod binder;
pub mod client;
pub mod error;
pub mod parser;
pub mod render;
pub mod server;
pub mod session;
pub mod token;

pub use binder::{bind, compile, SqlCatalog, Statement};
pub use client::{drive_file, normalize_line, Fnv1a};
pub use error::{Span, SqlError, SqlErrorKind};
pub use parser::parse;
pub use render::{plan_to_sql, strip_hints, RenderError};
pub use server::{ServerConfig, SqlServer};
pub use session::{read_response, render_value, write_response, Response, Session, WireResponse};
