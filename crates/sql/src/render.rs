//! Plan → SQL rendering, the inverse of parse+bind.
//!
//! Renders the canonical operator stack `[Limit [Sort]] [Project|Aggregate]
//! [Select] (Scan | left-deep Join of Scans)` back to a single SELECT
//! statement. Every expression is rendered fully parenthesised (see
//! `pdsm_plan::names`), ORDER BY keys become 1-based output ordinals, and
//! column references are table-qualified whenever more than one table is in
//! scope — so parsing and binding the rendering reproduces the original
//! plan structurally (modulo `sel_hint`, which SQL cannot carry).
//!
//! Plans outside that canonical shape (filters under joins, non-column
//! join keys, projections of projections, …) get a [`RenderError`] — the
//! differential suites only need the shapes the workloads produce.

use crate::binder::SqlCatalog;
use pdsm_plan::{render_agg, render_expr, Expr, LogicalPlan, SortKey};

/// A plan shape the SQL grammar cannot express.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderError(pub String);

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan not renderable as SQL: {}", self.0)
    }
}

impl std::error::Error for RenderError {}

/// Render `plan` as a SELECT statement, resolving column names through
/// `catalog`.
pub fn plan_to_sql(plan: &LogicalPlan, catalog: &impl SqlCatalog) -> Result<String, RenderError> {
    let mut cur = plan;

    let mut limit = None;
    if let LogicalPlan::Limit { input, n } = cur {
        limit = Some(*n);
        cur = input;
    }
    let mut sort: Option<&[SortKey]> = None;
    if let LogicalPlan::Sort { input, keys } = cur {
        sort = Some(keys);
        cur = input;
    }

    // Select list layer.
    enum List<'a> {
        Star,
        Exprs(&'a [Expr]),
        Agg {
            group_by: &'a [Expr],
            aggs: &'a [pdsm_plan::AggExpr],
            /// Projection positions into groups ++ aggs, when reordered.
            order: Option<&'a [Expr]>,
        },
    }
    let list;
    match cur {
        LogicalPlan::Project { input, exprs } => match &**input {
            LogicalPlan::Aggregate {
                input: agg_in,
                group_by,
                aggs,
            } => {
                list = List::Agg {
                    group_by,
                    aggs,
                    order: Some(exprs),
                };
                cur = agg_in;
            }
            _ => {
                list = List::Exprs(exprs);
                cur = input;
            }
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            list = List::Agg {
                group_by,
                aggs,
                order: None,
            };
            cur = input;
        }
        _ => list = List::Star,
    }

    // Filter layer.
    let mut pred = None;
    if let LogicalPlan::Select {
        input,
        pred: p,
        sel_hint: _,
    } = cur
    {
        pred = Some(p);
        cur = input;
    }

    // FROM / JOIN layer: left-deep joins over scans.
    let mut joins: Vec<(&str, &Expr, &Expr)> = Vec::new(); // (right table, lkey, rkey)
    let mut node = cur;
    loop {
        match node {
            LogicalPlan::Scan { .. } => break,
            LogicalPlan::Join {
                left,
                right,
                left_key,
                right_key,
            } => {
                let LogicalPlan::Scan { table } = &**right else {
                    return Err(RenderError(
                        "join right side must be a base-table scan".into(),
                    ));
                };
                joins.push((table, left_key, right_key));
                node = left;
            }
            other => {
                return Err(RenderError(format!(
                    "operator {} cannot appear below the filter",
                    op_name(other)
                )))
            }
        }
    }
    joins.reverse();
    let LogicalPlan::Scan { table: from } = node else {
        unreachable!()
    };

    // Scope: (table, column) per input position, join order.
    let mut scope: Vec<(String, String)> = Vec::new();
    let mut tables = vec![from.as_str()];
    tables.extend(joins.iter().map(|(t, _, _)| *t));
    for t in &tables {
        let (canon, schema) = catalog
            .resolve_table(t)
            .ok_or_else(|| RenderError(format!("unknown table {t:?}")))?;
        for c in schema.columns() {
            scope.push((canon.clone(), c.name.clone()));
        }
    }
    for (i, t) in tables.iter().enumerate() {
        if tables[..i].iter().any(|u| u.eq_ignore_ascii_case(t)) {
            return Err(RenderError(format!(
                "table {t:?} appears twice; self-joins are not renderable"
            )));
        }
    }
    let qualify = tables.len() > 1;
    let name_of = |c: usize| -> String {
        match scope.get(c) {
            Some((t, n)) if qualify => format!("{t}.{n}"),
            Some((_, n)) => n.clone(),
            None => format!("col{c}"),
        }
    };

    // Assemble.
    let mut sql = String::from("SELECT ");
    let (items, out_arity): (String, usize) = match &list {
        List::Star => ("*".to_string(), scope.len()),
        List::Exprs(exprs) => (
            exprs
                .iter()
                .map(|e| render_expr(e, &name_of))
                .collect::<Vec<_>>()
                .join(", "),
            exprs.len(),
        ),
        List::Agg {
            group_by,
            aggs,
            order,
        } => {
            let rendered: Vec<String> = group_by
                .iter()
                .map(|g| render_expr(g, &name_of))
                .chain(aggs.iter().map(|a| render_agg(a, &name_of)))
                .collect();
            match order {
                None => (rendered.join(", "), rendered.len()),
                Some(exprs) => {
                    let mut items = Vec::with_capacity(exprs.len());
                    for e in *exprs {
                        let Expr::Col(i) = e else {
                            return Err(RenderError(
                                "projection over an aggregate must be a column shuffle".into(),
                            ));
                        };
                        let item = rendered.get(*i).ok_or_else(|| {
                            RenderError(format!("projection column {i} out of range"))
                        })?;
                        items.push(item.clone());
                    }
                    (items.join(", "), exprs.len())
                }
            }
        }
    };
    sql.push_str(&items);
    sql.push_str(" FROM ");
    sql.push_str(from);
    // Join keys are in each side's own column space; the left key indexes
    // the accumulated left scope, the right key the joined table alone.
    let mut left_width = catalog
        .resolve_table(from)
        .map(|(_, s)| s.len())
        .unwrap_or(0);
    for (t, lkey, rkey) in &joins {
        let (Expr::Col(lc), Expr::Col(rc)) = (lkey, rkey) else {
            return Err(RenderError("join keys must be plain columns".into()));
        };
        if *lc >= left_width {
            return Err(RenderError(format!(
                "left join key {lc} out of range for the left side"
            )));
        }
        let (canon, rschema) = catalog
            .resolve_table(t)
            .ok_or_else(|| RenderError(format!("unknown table {t:?}")))?;
        let rname = rschema
            .columns()
            .get(*rc)
            .ok_or_else(|| RenderError(format!("right join key {rc} out of range")))?
            .name
            .clone();
        let (lt, ln) = &scope[*lc];
        sql.push_str(&format!(" JOIN {canon} ON {lt}.{ln} = {canon}.{rname}"));
        left_width += rschema.len();
    }
    if let Some(p) = pred {
        sql.push_str(" WHERE ");
        sql.push_str(&render_expr(p, &name_of));
    }
    if let List::Agg { group_by, .. } = &list {
        if !group_by.is_empty() {
            sql.push_str(" GROUP BY ");
            let rendered: Vec<String> = group_by.iter().map(|g| render_expr(g, &name_of)).collect();
            sql.push_str(&rendered.join(", "));
        }
    }
    if let Some(keys) = sort {
        sql.push_str(" ORDER BY ");
        let mut parts = Vec::with_capacity(keys.len());
        for k in keys {
            let part = match (&k.expr, &list) {
                (Expr::Col(i), _) if *i < out_arity => format!("{}", i + 1),
                // `SELECT *` sorts in input scope; a non-column key is
                // only expressible there.
                (e, List::Star) => render_expr(e, &name_of),
                (e, _) => {
                    return Err(RenderError(format!(
                        "sort key {e:?} does not reference an output column"
                    )))
                }
            };
            parts.push(if k.asc { part } else { format!("{part} DESC") });
        }
        sql.push_str(&parts.join(", "));
    }
    if let Some(n) = limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    Ok(sql)
}

fn op_name(p: &LogicalPlan) -> &'static str {
    match p {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Select { .. } => "Select",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
    }
}

/// Strip `sel_hint`s from a plan — SQL text cannot carry them, so
/// round-trip comparisons normalize both sides through this.
pub fn strip_hints(plan: &LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { table } => LogicalPlan::Scan {
            table: table.clone(),
        },
        LogicalPlan::Select {
            input,
            pred,
            sel_hint: _,
        } => LogicalPlan::Select {
            input: Box::new(strip_hints(input)),
            pred: pred.clone(),
            sel_hint: None,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(strip_hints(input)),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(strip_hints(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            left_key,
            right_key,
        } => LogicalPlan::Join {
            left: Box::new(strip_hints(left)),
            right: Box::new(strip_hints(right)),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(strip_hints(input)),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(strip_hints(input)),
            n: *n,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::{compile, Statement};
    use pdsm_plan::{AggExpr, AggFunc, QueryBuilder};
    use pdsm_storage::{ColumnDef, DataType, Schema};
    use std::collections::HashMap;

    fn catalog() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert(
            "R".to_string(),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Int32),
                ColumnDef::new("B", DataType::Int64),
                ColumnDef::new("D", DataType::Str),
            ]),
        );
        m.insert(
            "S".to_string(),
            Schema::new(vec![
                ColumnDef::new("A", DataType::Int32),
                ColumnDef::new("E", DataType::Str),
            ]),
        );
        m
    }

    fn round_trip(plan: &LogicalPlan) {
        let cat = catalog();
        let sql = plan_to_sql(plan, &cat).unwrap();
        match compile(&sql, &cat).unwrap() {
            Statement::Query(p) => {
                assert_eq!(p, strip_hints(plan), "through SQL: {sql}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn scan_filter_project_round_trips() {
        round_trip(
            &QueryBuilder::scan("R")
                .filter(Expr::col(0).eq(Expr::lit(1)).and(Expr::col(2).like("x%")))
                .project(vec![Expr::col(0), Expr::col(1)])
                .build(),
        );
    }

    #[test]
    fn hint_is_stripped_not_lost_in_comparison() {
        let plan = QueryBuilder::scan("R")
            .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), 0.25)
            .build();
        round_trip(&plan);
    }

    #[test]
    fn aggregate_and_reordered_projection_round_trip() {
        round_trip(
            &QueryBuilder::scan("R")
                .aggregate(
                    vec![Expr::col(2)],
                    vec![
                        AggExpr::count_star(),
                        AggExpr::new(AggFunc::Sum, Expr::col(1)),
                    ],
                )
                .build(),
        );
        round_trip(
            &QueryBuilder::scan("R")
                .aggregate(vec![Expr::col(2)], vec![AggExpr::count_star()])
                .project(vec![Expr::col(1), Expr::col(0)])
                .build(),
        );
    }

    #[test]
    fn join_sort_limit_round_trip() {
        round_trip(
            &QueryBuilder::scan("R")
                .join(QueryBuilder::scan("S").build(), Expr::col(0), Expr::col(0))
                .project(vec![Expr::col(2), Expr::col(4)])
                .sort(vec![(Expr::col(0), false)])
                .limit(10)
                .build(),
        );
    }

    #[test]
    fn star_sort_renders_input_scope_expression() {
        round_trip(
            &QueryBuilder::scan("R")
                .sort(vec![(Expr::col(1), true)])
                .build(),
        );
    }

    #[test]
    fn unrenderable_shapes_are_declined() {
        // Filter below a join is not expressible without subqueries.
        let plan = LogicalPlan::Join {
            left: Box::new(
                QueryBuilder::scan("R")
                    .filter(Expr::col(0).eq(Expr::lit(1)))
                    .build(),
            ),
            right: Box::new(QueryBuilder::scan("S").build()),
            left_key: Expr::Col(0),
            right_key: Expr::Col(0),
        };
        assert!(plan_to_sql(&plan, &catalog()).is_err());
    }
}
