//! `sql-client` — scripted driver for `pdsm-server` (CI and smoke tests).
//!
//! ```text
//! sql-client --addr HOST:PORT [--expect FILE] [--parallel] [--print] FILE.sql...
//! ```
//!
//! Opens one connection per `.sql` file (sequentially, or concurrently
//! with `--parallel`), sends each non-empty non-comment line as a
//! statement, and folds the responses into a deterministic FNV-1a hash:
//! `ROWS` results contribute their header plus data rows normalized
//! (floats reformatted to 9 decimal places, rows sorted), DML results
//! contribute `OK <n>`. Prints `<file-stem> <hash>` per file.
//!
//! `--expect FILE` compares against lines of `<file-stem> <hash>` and
//! exits non-zero on any mismatch or server error, which is what the CI
//! job asserts.

use pdsm_sql::drive_file;

fn main() {
    let mut addr: Option<String> = None;
    let mut expect: Option<String> = None;
    let mut parallel = false;
    let mut print = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--expect" => expect = args.next(),
            "--parallel" => parallel = true,
            "--print" => print = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: sql-client --addr HOST:PORT [--expect FILE] [--parallel] \
                     [--print] FILE.sql..."
                );
                return;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        std::process::exit(2);
    };
    if files.is_empty() {
        eprintln!("no .sql files given");
        std::process::exit(2);
    }

    let run = move |file: String, addr: String| -> Result<(String, u64), String> {
        let stem = std::path::Path::new(&file)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| file.clone());
        let hash = drive_file(&addr, &file, print).map_err(|e| format!("{stem}: {e}"))?;
        Ok((stem, hash))
    };

    let results: Vec<Result<(String, u64), String>> = if parallel {
        let handles: Vec<_> = files
            .iter()
            .map(|f| {
                let (f, a, run) = (f.clone(), addr.clone(), run);
                std::thread::spawn(move || run(f, a))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    } else {
        files.iter().map(|f| run(f.clone(), addr.clone())).collect()
    };

    let mut failed = false;
    let mut hashes = Vec::new();
    for r in results {
        match r {
            Ok((stem, hash)) => {
                println!("{stem} {hash:016x}");
                hashes.push((stem, hash));
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failed = true;
            }
        }
    }

    if let Some(expect_file) = expect {
        let text = std::fs::read_to_string(&expect_file).unwrap_or_else(|e| {
            eprintln!("cannot read {expect_file}: {e}");
            std::process::exit(2);
        });
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, want)) = line.split_once(char::is_whitespace) else {
                eprintln!("bad expectation line {line:?}");
                failed = true;
                continue;
            };
            let want = want.trim();
            match hashes.iter().find(|(stem, _)| stem == name) {
                None => {
                    eprintln!("FAIL {name}: no result (file not driven?)");
                    failed = true;
                }
                Some((_, got)) => {
                    let got = format!("{got:016x}");
                    if got != want {
                        eprintln!("FAIL {name}: hash {got}, expected {want}");
                        failed = true;
                    }
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
