//! `pdsm-repl` — interactive SQL shell over an in-process database.
//!
//! ```text
//! pdsm-repl [--seed SPEC]
//! ```
//!
//! Reads one statement per line from stdin, prints results as aligned
//! columns. `--seed` accepts the same workload specs as `pdsm-server`
//! (`sapsd:<scale>:<seed>`, `microbench:<rows>:<seed>`). `QUIT` or EOF
//! exits. This is the same session layer the TCP server uses — only the
//! framing differs.

use pdsm_core::Database;
use pdsm_sql::{render_value, Response, Session};
use pdsm_storage::Layout;
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let mut seed_spec: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed_spec = args.next(),
            "--help" | "-h" => {
                eprintln!("usage: pdsm-repl [--seed sapsd:SCALE:SEED|microbench:ROWS:SEED]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let db = Database::new();
    if let Some(spec) = &seed_spec {
        if let Err(e) = seed(&db, spec) {
            eprintln!("bad --seed {spec:?}: {e}");
            std::process::exit(2);
        }
        eprintln!("loaded {spec}: tables {:?}", db.table_names());
    }
    let session = Session::new(Arc::new(db));

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("sql> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        if stmt.eq_ignore_ascii_case("quit") || stmt.eq_ignore_ascii_case("exit") {
            break;
        }
        match session.statement(stmt) {
            Response::Count(n) => println!("OK, {n} rows affected"),
            Response::Error(msg) => println!("error: {msg}"),
            Response::Rows { columns, rows } => print_table(&columns, &rows),
        }
    }
}

fn print_table(columns: &[String], rows: &[Vec<pdsm_storage::Value>]) {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(render_value).collect())
        .collect();
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() && cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", line(columns));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in &rendered {
        println!("{}", line(row));
    }
    println!("({} rows)", rows.len());
}

fn seed(db: &Database, spec: &str) -> Result<(), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, a, b] = parts.as_slice() else {
        return Err("expected <kind>:<n>:<seed>".into());
    };
    let n: usize = a.parse().map_err(|_| format!("bad count {a:?}"))?;
    let rng_seed: u64 = b.parse().map_err(|_| format!("bad seed {b:?}"))?;
    match *kind {
        "sapsd" => {
            for t in pdsm_workloads::sapsd::tables(n, rng_seed) {
                db.register(t);
            }
        }
        "microbench" => {
            let t = pdsm_workloads::microbench::generate(n, 0.1, Layout::row(16), rng_seed);
            db.register(t);
        }
        other => return Err(format!("unknown workload {other:?}")),
    }
    Ok(())
}
