//! `pdsm-server` — serve a database over the line protocol.
//!
//! ```text
//! pdsm-server [--listen ADDR] [--max-sessions N] [--seed SPEC] [--port-file PATH]
//!
//!   --listen ADDR        bind address (default 127.0.0.1:5433; use :0 for
//!                        an ephemeral port)
//!   --max-sessions N     concurrent session limit (default 64)
//!   --seed SPEC          preload a workload:
//!                          sapsd:<scale>:<seed>       SAP-SD tables
//!                          microbench:<rows>:<seed>   microbench table R
//!   --port-file PATH     write the bound port number to PATH once ready
//! ```
//!
//! The server runs until a client sends `SHUTDOWN`.

use pdsm_core::Database;
use pdsm_sql::{ServerConfig, SqlServer};
use pdsm_storage::Layout;
use std::sync::Arc;

fn main() {
    let mut listen = "127.0.0.1:5433".to_string();
    let mut max_sessions = 64usize;
    let mut seed_spec: Option<String> = None;
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => listen = take("--listen"),
            "--max-sessions" => {
                max_sessions = take("--max-sessions").parse().unwrap_or_else(|_| {
                    eprintln!("bad --max-sessions value");
                    std::process::exit(2);
                })
            }
            "--seed" => seed_spec = Some(take("--seed")),
            "--port-file" => port_file = Some(take("--port-file")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: pdsm-server [--listen ADDR] [--max-sessions N] \
                     [--seed sapsd:SCALE:SEED|microbench:ROWS:SEED] [--port-file PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let db = Database::new();
    if let Some(spec) = &seed_spec {
        seed(&db, spec).unwrap_or_else(|e| {
            eprintln!("bad --seed {spec:?}: {e}");
            std::process::exit(2);
        });
    }

    let server = SqlServer::start(Arc::new(db), &listen, ServerConfig { max_sessions })
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        });
    let addr = server.local_addr();
    eprintln!("pdsm-server listening on {addr} (send SHUTDOWN to stop)");
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    server.wait();
    eprintln!("pdsm-server stopped");
}

/// Parse `sapsd:<scale>:<seed>` / `microbench:<rows>:<seed>` and load the
/// corresponding tables.
fn seed(db: &Database, spec: &str) -> Result<(), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, a, b] = parts.as_slice() else {
        return Err("expected <kind>:<n>:<seed>".into());
    };
    let n: usize = a.parse().map_err(|_| format!("bad count {a:?}"))?;
    let rng_seed: u64 = b.parse().map_err(|_| format!("bad seed {b:?}"))?;
    match *kind {
        "sapsd" => {
            for t in pdsm_workloads::sapsd::tables(n, rng_seed) {
                db.register(t);
            }
        }
        "microbench" => {
            let t = pdsm_workloads::microbench::generate(n, 0.1, Layout::row(16), rng_seed);
            db.register(t);
        }
        other => return Err(format!("unknown workload {other:?}")),
    }
    Ok(())
}
