//! `pdsm-server` — serve a database over the line protocol.
//!
//! ```text
//! pdsm-server [--listen ADDR] [--max-sessions N] [--seed SPEC]
//!             [--port-file PATH] [--data-dir PATH]
//!
//!   --listen ADDR        bind address (default 127.0.0.1:5433; use :0 for
//!                        an ephemeral port)
//!   --max-sessions N     concurrent session limit (default 64)
//!   --seed SPEC          preload a workload:
//!                          sapsd:<scale>:<seed>       SAP-SD tables
//!                          microbench:<rows>:<seed>   microbench table R
//!   --port-file PATH     write the bound port number to PATH once ready
//!   --data-dir PATH      durable mode: recover the directory's tables on
//!                        start (WAL replay), write-ahead-log every DML,
//!                        checkpoint on merge and on clean SHUTDOWN.
//!                        Fsync policy from PDSM_FSYNC (always|batch|off,
//!                        default batch).
//! ```
//!
//! With `--data-dir`, `--seed` loads its tables only when they are not
//! already present from recovery — so "restart with the same flags" is
//! always safe and never clobbers survived data.
//!
//! The server runs until a client sends `SHUTDOWN`; a durable server then
//! checkpoints every table so the next start replays nothing.

use pdsm_core::Database;
use pdsm_sql::{ServerConfig, SqlServer};
use pdsm_storage::Layout;
use std::sync::Arc;

fn main() {
    let mut listen = "127.0.0.1:5433".to_string();
    let mut max_sessions = 64usize;
    let mut seed_spec: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut data_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => listen = take("--listen"),
            "--max-sessions" => {
                max_sessions = take("--max-sessions").parse().unwrap_or_else(|_| {
                    eprintln!("bad --max-sessions value");
                    std::process::exit(2);
                })
            }
            "--seed" => seed_spec = Some(take("--seed")),
            "--port-file" => port_file = Some(take("--port-file")),
            "--data-dir" => data_dir = Some(take("--data-dir")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: pdsm-server [--listen ADDR] [--max-sessions N] \
                     [--seed sapsd:SCALE:SEED|microbench:ROWS:SEED] [--port-file PATH] \
                     [--data-dir PATH]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let db = match &data_dir {
        Some(dir) => {
            let db = Database::open(dir).unwrap_or_else(|e| {
                eprintln!("cannot open data dir {dir:?}: {e}");
                std::process::exit(1);
            });
            let recovered = db.table_names();
            if !recovered.is_empty() {
                let replayed = db.storage_stats().recovery_replay_ops;
                eprintln!(
                    "pdsm-server recovered {} table(s) from {dir:?} ({replayed} WAL op(s) replayed): {}",
                    recovered.len(),
                    recovered.join(", ")
                );
            }
            db
        }
        None => Database::new(),
    };
    if let Some(spec) = &seed_spec {
        seed(&db, spec).unwrap_or_else(|e| {
            eprintln!("bad --seed {spec:?}: {e}");
            std::process::exit(2);
        });
    }

    let db = Arc::new(db);
    let server = SqlServer::start(Arc::clone(&db), &listen, ServerConfig { max_sessions })
        .unwrap_or_else(|e| {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        });
    let addr = server.local_addr();
    eprintln!("pdsm-server listening on {addr} (send SHUTDOWN to stop)");
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", addr.port())) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    server.wait();
    // Clean shutdown: checkpoint so the next start replays zero WAL ops.
    if db.is_durable() {
        match db.checkpoint_all() {
            Ok(()) => eprintln!("pdsm-server checkpointed all tables"),
            Err(e) => eprintln!("pdsm-server checkpoint failed: {e}"),
        }
    }
    let s = db.cache_stats();
    eprintln!(
        "pdsm-server cache summary: result hits={} fragment_hits={} misses={} \
         bypasses={} hit_rate={:.1}% bytes={} evictions={} invalidations={} | \
         plan hits={} misses={} evictions={}",
        s.result.hits,
        s.result.fragment_hits,
        s.result.misses,
        s.result.bypasses,
        s.result.hit_rate() * 100.0,
        s.result.bytes,
        s.result.evictions,
        s.result.invalidations,
        s.plan.hits,
        s.plan.misses,
        s.plan.evictions,
    );
    eprintln!("pdsm-server stopped");
}

/// Parse `sapsd:<scale>:<seed>` / `microbench:<rows>:<seed>` and load the
/// corresponding tables. Tables that already exist (recovered from a data
/// directory) are kept, not reseeded.
fn seed(db: &Database, spec: &str) -> Result<(), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [kind, a, b] = parts.as_slice() else {
        return Err("expected <kind>:<n>:<seed>".into());
    };
    let n: usize = a.parse().map_err(|_| format!("bad count {a:?}"))?;
    let rng_seed: u64 = b.parse().map_err(|_| format!("bad seed {b:?}"))?;
    let existing = db.table_names();
    let load = |t: pdsm_storage::Table| {
        if existing.iter().any(|name| name == t.name()) {
            eprintln!(
                "pdsm-server seed: table {:?} recovered, not reseeded",
                t.name()
            );
        } else {
            db.register(t);
        }
    };
    match *kind {
        "sapsd" => {
            for t in pdsm_workloads::sapsd::tables(n, rng_seed) {
                load(t);
            }
        }
        "microbench" => {
            load(pdsm_workloads::microbench::generate(
                n,
                0.1,
                Layout::row(16),
                rng_seed,
            ));
        }
        other => return Err(format!("unknown workload {other:?}")),
    }
    Ok(())
}
