//! Property tests for the SQL frontend.
//!
//! 1. **Fuzz**: the parser (and binder) are total — arbitrary token soup
//!    and arbitrary bytes produce `Err` with an in-bounds span, never a
//!    panic.
//! 2. **Round trip**: for random plans in the renderer's canonical shape,
//!    `plan_to_sql` → `parse` → `bind` reproduces the original plan
//!    structurally (modulo `sel_hint`, which SQL text cannot carry).

use pdsm_plan::{AggExpr, AggFunc, CmpOp, Expr, LogicalPlan, QueryBuilder};
use pdsm_sql::{compile, parse, plan_to_sql, strip_hints, Statement};
use pdsm_storage::{ColumnDef, DataType, Schema, Value};
use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::collections::HashMap;

fn catalog() -> HashMap<String, Schema> {
    let mut m = HashMap::new();
    m.insert(
        "R".to_string(),
        Schema::new(vec![
            ColumnDef::new("A", DataType::Int32),
            ColumnDef::new("B", DataType::Int64),
            ColumnDef::new("C", DataType::Float64),
            ColumnDef::nullable("D", DataType::Str),
        ]),
    );
    m.insert(
        "S".to_string(),
        Schema::new(vec![
            ColumnDef::new("K", DataType::Int32),
            ColumnDef::new("E", DataType::Str),
            ColumnDef::new("F", DataType::Int64),
        ]),
    );
    m
}

// ----------------------------------------------------------------------
// Fuzz: token soup.
// ----------------------------------------------------------------------

const FRAGMENTS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "ORDER",
    "LIMIT",
    "JOIN",
    "ON",
    "AND",
    "OR",
    "NOT",
    "LIKE",
    "IS",
    "NULL",
    "INSERT",
    "INTO",
    "VALUES",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "TABLE",
    "INDEX",
    "USING",
    "EXPLAIN",
    "AS",
    "ASC",
    "DESC",
    "(",
    ")",
    ",",
    ".",
    "*",
    "+",
    "-",
    "/",
    "%",
    "=",
    "<>",
    "<",
    "<=",
    ">",
    ">=",
    "!",
    "!=",
    ";",
    "'",
    "''",
    "'x'",
    "'it''s'",
    "R",
    "S",
    "A",
    "B",
    "C",
    "D",
    "K",
    "count",
    "sum",
    "avg",
    "min",
    "max",
    "nosuch",
    "123",
    "-7",
    "0",
    "99999999999999999999999",
    "1.5",
    ".5",
    "1e309",
    "1.5e3",
    "--",
    "@",
    "#",
    "\\",
    "🦀",
    "änder",
];

fn soup_strategy() -> BoxedStrategy<String> {
    BoxedStrategy::from_fn(|rng: &mut TestRng| {
        if rng.below(8) == 0 {
            // Arbitrary bytes, lossily decoded: exercises the lexer's
            // error paths on raw garbage.
            let n = rng.below(40);
            let bytes: Vec<u8> = (0..n).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            return String::from_utf8_lossy(&bytes).into_owned();
        }
        let n = rng.below(24);
        let mut out = String::new();
        for _ in 0..n {
            out.push_str(FRAGMENTS[rng.below(FRAGMENTS.len())]);
            if rng.below(3) > 0 {
                out.push(' ');
            }
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]
    #[test]
    fn parser_and_binder_never_panic(sql in soup_strategy()) {
        let cat = catalog();
        if let Err(e) = parse(&sql) {
            let span = e.span();
            prop_assert!(span.start <= span.end, "span inverted: {e}");
            prop_assert!(span.end <= sql.len(), "span out of bounds: {e} on {sql:?}");
        }
        // Binding may fail too, but must not panic either.
        let _ = compile(&sql, &cat);
    }
}

// ----------------------------------------------------------------------
// Round trip: random canonical plans.
// ----------------------------------------------------------------------

/// Column types of the current scope, in output order.
type Types = Vec<DataType>;

fn rand_lit(rng: &mut TestRng, ty: DataType) -> Value {
    match ty {
        DataType::Int32 => Value::Int32(rng.below(2001) as i32 - 1000),
        DataType::Int64 => {
            let base = rng.below(2001) as i64 - 1000;
            if rng.below(4) == 0 {
                Value::Int64(base + 10_000_000_000)
            } else {
                Value::Int64(base)
            }
        }
        DataType::Float64 => Value::Float64((rng.below(4001) as f64 - 2000.0) / 8.0),
        DataType::Str => {
            const POOL: &[&str] = &["", "a", "it's", "x%y", "hello world", "C0000006", "ü"];
            Value::Str(POOL[rng.below(POOL.len())].to_string())
        }
    }
}

fn rand_cmp(rng: &mut TestRng) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][rng.below(6)]
}

fn gen_pred(rng: &mut TestRng, types: &Types, depth: usize) -> Expr {
    if depth == 0 || rng.below(3) == 0 {
        let c = rng.below(types.len());
        let ty = types[c];
        match (ty, rng.below(4)) {
            (_, 0) => Expr::col(c).is_null(),
            (DataType::Str, 1) => {
                const PATS: &[&str] = &["a%", "%b%", "_x%", "%", "C%6"];
                Expr::col(c).like(PATS[rng.below(PATS.len())])
            }
            _ => {
                let lit = Expr::lit(rand_lit(rng, ty));
                let op = rand_cmp(rng);
                if rng.below(4) == 0 {
                    // Literal on the left: the binder coerces either side.
                    lit.cmp(op, Expr::col(c))
                } else {
                    Expr::col(c).cmp(op, lit)
                }
            }
        }
    } else {
        let a = gen_pred(rng, types, depth - 1);
        match rng.below(3) {
            0 => a.and(gen_pred(rng, types, depth - 1)),
            1 => a.or(gen_pred(rng, types, depth - 1)),
            _ => a.not(),
        }
    }
}

fn gen_agg(rng: &mut TestRng, types: &Types) -> AggExpr {
    match rng.below(5) {
        0 => AggExpr::count_star(),
        1 | 2 => {
            // sum/avg over a numeric column.
            let numeric: Vec<usize> = (0..types.len())
                .filter(|&c| types[c] != DataType::Str)
                .collect();
            let c = numeric[rng.below(numeric.len())];
            let f = if rng.below(2) == 0 {
                AggFunc::Sum
            } else {
                AggFunc::Avg
            };
            AggExpr::new(f, Expr::col(c))
        }
        _ => {
            let c = rng.below(types.len());
            let f = if rng.below(2) == 0 {
                AggFunc::Min
            } else {
                AggFunc::Max
            };
            AggExpr::new(f, Expr::col(c))
        }
    }
}

fn gen_plan(rng: &mut TestRng) -> LogicalPlan {
    use DataType::*;
    // Base: scan R, optionally joined with S on a same-typed key pair.
    let (mut b, mut types): (QueryBuilder, Types) = if rng.below(2) == 0 {
        let (lk, rk) = if rng.below(2) == 0 { (0, 0) } else { (1, 2) }; // A=K or B=F
        (
            QueryBuilder::scan("R").join(
                QueryBuilder::scan("S").build(),
                Expr::col(lk),
                Expr::col(rk),
            ),
            vec![Int32, Int64, Float64, Str, Int32, Str, Int64],
        )
    } else {
        (QueryBuilder::scan("R"), vec![Int32, Int64, Float64, Str])
    };

    if rng.below(2) == 0 {
        let depth = rng.below(3);
        let pred = gen_pred(rng, &types, depth);
        b = if rng.below(4) == 0 {
            b.filter_with_selectivity(pred, rng.below(100) as f64 / 100.0)
        } else {
            b.filter(pred)
        };
    }

    // Select-list shape: star, projection, or aggregation.
    let is_star;
    match rng.below(3) {
        0 => {
            is_star = true;
        }
        1 => {
            is_star = false;
            let k = 1 + rng.below(types.len());
            let mut exprs = Vec::with_capacity(k);
            let mut out_types = Vec::with_capacity(k);
            for _ in 0..k {
                let c = rng.below(types.len());
                if types[c] != Str && rng.below(5) == 0 {
                    // Occasional computed item. Unlike comparisons, arith
                    // literals are not re-typed by the binder, so the
                    // literal must round-trip through SQL text unchanged:
                    // small ints parse back as Int32, so only use Int64
                    // when the value is outside i32 range.
                    let lit = match rand_lit(rng, types[c]) {
                        Value::Int64(v) if i32::try_from(v).is_ok() => Value::Int32(v as i32),
                        v => v,
                    };
                    exprs.push(Expr::col(c).add(Expr::lit(lit)));
                    out_types.push(if types[c] == Float64 { Float64 } else { Int64 });
                } else {
                    exprs.push(Expr::col(c));
                    out_types.push(types[c]);
                }
            }
            b = b.project(exprs);
            types = out_types;
        }
        _ => {
            is_star = false;
            // Distinct group columns (duplicates would make select-item →
            // group matching ambiguous).
            let n_groups = rng.below(3);
            let mut group_cols: Vec<usize> = Vec::new();
            while group_cols.len() < n_groups {
                let c = rng.below(types.len());
                if !group_cols.contains(&c) {
                    group_cols.push(c);
                }
            }
            let n_aggs = 1 + rng.below(2);
            let aggs: Vec<AggExpr> = (0..n_aggs).map(|_| gen_agg(rng, &types)).collect();
            let groups: Vec<Expr> = group_cols.iter().map(|&c| Expr::col(c)).collect();
            let g = group_cols.len();
            let slot_types: Types = group_cols
                .iter()
                .map(|&c| types[c])
                .chain(std::iter::repeat_n(Int64, aggs.len()))
                .collect();
            // Optionally shuffle the select list. The binder emits aggs in
            // select-list order (groups keep GROUP BY order), so express the
            // shuffle in that canonical form: reorder `aggs` by appearance
            // and add a Project only when the mapping is not the identity.
            let mut perm: Vec<usize> = (0..slot_types.len()).collect();
            if rng.below(2) == 0 {
                for i in (1..perm.len()).rev() {
                    let j = rng.below(i + 1);
                    perm.swap(i, j);
                }
            }
            let agg_order: Vec<usize> = perm.iter().filter(|&&p| p >= g).map(|&p| p - g).collect();
            let canon_aggs: Vec<AggExpr> = agg_order.iter().map(|&a| aggs[a].clone()).collect();
            let exprs: Vec<usize> = perm
                .iter()
                .map(|&p| {
                    if p < g {
                        p
                    } else {
                        g + agg_order.iter().position(|&a| a == p - g).unwrap()
                    }
                })
                .collect();
            b = b.aggregate(groups, canon_aggs);
            types = perm.iter().map(|&p| slot_types[p]).collect();
            if exprs.iter().enumerate().any(|(i, &p)| i != p) {
                b = b.project(exprs.into_iter().map(Expr::Col).collect());
            }
        }
    }

    if rng.below(2) == 0 {
        let n_keys = 1 + rng.below(2);
        let keys: Vec<(Expr, bool)> = (0..n_keys)
            .map(|_| (Expr::col(rng.below(types.len())), rng.below(2) == 0))
            .collect();
        b = b.sort(keys);
    }
    let _ = is_star;
    if rng.below(2) == 0 {
        b = b.limit(rng.below(200));
    }
    b.build()
}

fn plan_strategy() -> BoxedStrategy<LogicalPlan> {
    BoxedStrategy::from_fn(gen_plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]
    #[test]
    fn rendered_plans_parse_back_identically(plan in plan_strategy()) {
        let cat = catalog();
        let sql = plan_to_sql(&plan, &cat).expect("generated plan must be renderable");
        match compile(&sql, &cat) {
            Ok(Statement::Query(bound)) => {
                prop_assert_eq!(bound, strip_hints(&plan), "through SQL: {}", sql);
            }
            other => panic!("{sql:?} did not bind to a query: {other:?}"),
        }
    }
}
