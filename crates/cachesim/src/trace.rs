//! Drive the simulator with the memory traces of cost-model atoms.
//!
//! This is the measurement side of Fig. 6: the model predicts the misses of
//! an access pattern; `run_atom` replays the very trace the pattern
//! describes against the simulated Nehalem and reports what the "counters"
//! saw. Regions are laid out disjointly so concurrent atoms do not alias.

use crate::hierarchy::{SimConfig, SimHierarchy};
use pdsm_cost::Atom;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Paper-style LLC counter readout for one trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtomTraceStats {
    /// Demand accesses that reached the LLC.
    pub llc_accesses: u64,
    /// Demand misses at the LLC (the paper's *random* misses).
    pub llc_demand_misses: u64,
    /// LLC hits on prefetched-but-unused lines.
    pub llc_prefetched_hits: u64,
    /// Lines the prefetcher brought in.
    pub prefetch_fills: u64,
}

impl AtomTraceStats {
    /// The paper's measured *random* misses: reported demand misses.
    pub fn paper_random(&self) -> u64 {
        self.llc_demand_misses
    }

    /// The paper's measured *sequential* misses: "the number of reported L3
    /// accesses minus the reported L3 misses" (§IV-C1) — valid because the
    /// experiment's working set far exceeds the LLC, so every hit is a
    /// prefetch-produced hit.
    pub fn paper_sequential(&self) -> u64 {
        self.llc_accesses - self.llc_demand_misses
    }
}

/// Replay `atom`'s trace on a fresh machine of configuration `cfg`.
/// Returns the LLC counters after the run.
pub fn run_atom(atom: &Atom, cfg: SimConfig, seed: u64) -> AtomTraceStats {
    let mut sim = SimHierarchy::new(cfg);
    let mut rng = SmallRng::seed_from_u64(seed);
    play_atom(&mut sim, atom, 0, &mut rng);
    snapshot(&sim)
}

/// Replay a *selective projection* (the Fig.-6 microbenchmark): a 4-byte
/// condition column is scanned sequentially while a `w`-byte payload region
/// is read at selectivity `s`. Returns counters observed **on the payload
/// region only** (the simulator can do what hardware counters cannot:
/// attribute misses to a region) together with whole-machine counters.
pub fn run_selective_projection(
    n: u64,
    payload_w: u64,
    s: f64,
    cfg: SimConfig,
    seed: u64,
) -> (AtomTraceStats, AtomTraceStats) {
    // Payload region at 0, condition column far above it.
    let payload_base = 0u64;
    let cond_base = (n * payload_w).next_multiple_of(1 << 21) + (1 << 21);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Isolate payload counters by running the combined trace twice over the
    // same addresses: once counting everything, once with payload accesses
    // replaced by... instead, simpler and exact: run the combined trace and
    // a condition-only trace; payload counters = difference.
    let mut combined = SimHierarchy::new(cfg.clone());
    let mut rng2 = rng.clone();
    for i in 0..n {
        combined.access(cond_base + i * 4, 4);
        if rng2.gen_bool(s) {
            combined.access(payload_base + i * payload_w, payload_w);
        }
    }
    let combined_stats = snapshot(&combined);

    let mut cond_only = SimHierarchy::new(cfg);
    for i in 0..n {
        cond_only.access(cond_base + i * 4, 4);
        let _ = rng.gen_bool(s); // keep RNG stream identical
    }
    let cond_stats = snapshot(&cond_only);

    let payload = AtomTraceStats {
        llc_accesses: combined_stats.llc_accesses - cond_stats.llc_accesses,
        llc_demand_misses: combined_stats
            .llc_demand_misses
            .saturating_sub(cond_stats.llc_demand_misses),
        llc_prefetched_hits: combined_stats
            .llc_prefetched_hits
            .saturating_sub(cond_stats.llc_prefetched_hits),
        prefetch_fills: combined_stats
            .prefetch_fills
            .saturating_sub(cond_stats.prefetch_fills),
    };
    (payload, combined_stats)
}

fn snapshot(sim: &SimHierarchy) -> AtomTraceStats {
    let s = sim.llc_stats();
    AtomTraceStats {
        llc_accesses: s.accesses,
        llc_demand_misses: s.demand_misses,
        llc_prefetched_hits: s.prefetched_hits,
        prefetch_fills: s.prefetch_fills,
    }
}

/// Emit the address stream of one atom starting at byte `base`.
fn play_atom(sim: &mut SimHierarchy, atom: &Atom, base: u64, rng: &mut SmallRng) {
    match *atom {
        Atom::STrav { n, w, u } => {
            for i in 0..n {
                sim.access(base + i * w, u.max(1).min(w));
            }
        }
        Atom::RTrav { n, w, u } => {
            let mut order: Vec<u64> = (0..n).collect();
            // Fisher-Yates
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for i in order {
                sim.access(base + i * w, u.max(1).min(w));
            }
        }
        Atom::RRAcc { n, w, r } => {
            for _ in 0..r {
                let i = rng.gen_range(0..n.max(1));
                sim.access(base + i * w, w);
            }
        }
        Atom::STravCr { n, w, u, s } => {
            for i in 0..n {
                if rng.gen_bool(s.clamp(0.0, 1.0)) {
                    sim.access(base + i * w, u.max(1).min(w));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_trav_trace_is_mostly_sequential() {
        // 32 MB region (4x LLC): model says all misses sequential.
        let st = run_atom(&Atom::s_trav(4_000_000, 8), SimConfig::nehalem(), 1);
        assert!(
            st.paper_sequential() > 20 * st.paper_random(),
            "seq {} rand {}",
            st.paper_sequential(),
            st.paper_random()
        );
    }

    #[test]
    fn r_trav_trace_is_mostly_random() {
        // 64 MB region (8x LLC) so that residual hits are rare — the regime
        // in which the paper's counter arithmetic is valid.
        let st = run_atom(&Atom::r_trav(1_000_000, 64), SimConfig::nehalem(), 2);
        assert!(
            st.paper_random() > 4 * st.paper_sequential(),
            "seq {} rand {}",
            st.paper_sequential(),
            st.paper_random()
        );
        // The adjacent-line prefetcher scores accidental hits on a fully
        // covered region at roughly the capacity fraction (8 MB / 64 MB).
        assert!(
            st.llc_prefetched_hits < st.llc_demand_misses / 4,
            "accidental prefetch hits bounded by capacity fraction: {st:?}"
        );
    }

    #[test]
    fn selective_projection_counters_split_by_selectivity() {
        let n = 400_000u64;
        // low selectivity: payload misses mostly random (isolated lines)
        let (low, _) = run_selective_projection(n, 16, 0.01, SimConfig::nehalem(), 3);
        assert!(low.paper_random() > low.paper_sequential());
        // high selectivity: dense line usage => prefetcher follows
        let (high, _) = run_selective_projection(n, 16, 0.9, SimConfig::nehalem(), 3);
        assert!(high.paper_sequential() > high.paper_random());
        // total touched lines grow with selectivity
        assert!(
            high.paper_sequential() + high.paper_random()
                > low.paper_sequential() + low.paper_random()
        );
    }

    #[test]
    fn rr_acc_on_tiny_region_hits() {
        // one-line region accessed repeatedly: after the cold miss, hits.
        let st = run_atom(&Atom::rr_acc(4, 16, 10_000), SimConfig::nehalem(), 4);
        assert!(st.llc_demand_misses <= 2, "{st:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_atom(
            &Atom::s_trav_cr(100_000, 16, 16, 0.2),
            SimConfig::nehalem(),
            9,
        );
        let b = run_atom(
            &Atom::s_trav_cr(100_000, 16, 16, 0.2),
            SimConfig::nehalem(),
            9,
        );
        assert_eq!(a, b);
    }
}
