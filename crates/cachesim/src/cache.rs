//! A set-associative LRU cache model.

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line (block) size in bytes; must be a power of two.
    pub line: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        let lines = (self.capacity / self.line) as usize;
        (lines / self.assoc).max(1)
    }
}

/// Hit/miss counters. A "prefetched hit" is the *first demand use* of a line
/// that was installed by the prefetcher — the event the paper's sequential
/// misses (`M^s`) correspond to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads issued by the program).
    pub accesses: u64,
    /// Demand accesses that missed and had to fetch from the next level.
    pub demand_misses: u64,
    /// Demand accesses that hit a not-yet-used prefetched line.
    pub prefetched_hits: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines evicted before any demand use (wasted prefetches).
    pub prefetch_evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    tag: u64,
    /// Installed by prefetch and not yet demand-used.
    prefetched_unused: bool,
}

/// One set-associative LRU cache. Addresses are byte addresses; the cache
/// works on line numbers internally.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<LineState>>, // LRU order: least-recent first
    stats: CacheStats,
    line_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Build a cache; panics if the line size is not a power of two (static
    /// configuration error).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two(), "line size must be 2^k");
        assert!(cfg.assoc >= 1);
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            stats: CacheStats::default(),
            line_shift: cfg.line.trailing_zeros(),
            set_mask: (sets as u64) - 1,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_and_tag(&self, line_no: u64) -> (usize, u64) {
        let set =
            if self.set_mask + 1 == self.sets.len() as u64 && self.sets.len().is_power_of_two() {
                (line_no & self.set_mask) as usize
            } else {
                (line_no % self.sets.len() as u64) as usize
            };
        (set, line_no)
    }

    /// Demand access to the line containing byte `addr`. Returns `true` on
    /// hit. On miss the line is installed (the caller is responsible for
    /// recursing into the next level).
    pub fn access(&mut self, addr: u64) -> bool {
        let line_no = addr >> self.line_shift;
        self.access_line(line_no)
    }

    /// Demand access by line number.
    pub fn access_line(&mut self, line_no: u64) -> bool {
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(line_no);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut line = set.remove(pos);
            if line.prefetched_unused {
                self.stats.prefetched_hits += 1;
                line.prefetched_unused = false;
            }
            set.push(line); // most-recently used
            return true;
        }
        self.stats.demand_misses += 1;
        self.install(set_idx, tag, false);
        false
    }

    /// Install a line on behalf of the prefetcher (no access counted). Does
    /// nothing if the line is already resident.
    pub fn prefetch_line(&mut self, line_no: u64) {
        let (set_idx, tag) = self.set_and_tag(line_no);
        if self.sets[set_idx].iter().any(|l| l.tag == tag) {
            return;
        }
        self.stats.prefetch_fills += 1;
        self.install(set_idx, tag, true);
    }

    /// True iff the line containing `addr` is resident (no counter change).
    pub fn probe(&self, addr: u64) -> bool {
        let line_no = addr >> self.line_shift;
        let (set_idx, tag) = self.set_and_tag(line_no);
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }

    fn install(&mut self, set_idx: usize, tag: u64, prefetched: bool) {
        let assoc = self.cfg.assoc;
        let set = &mut self.sets[set_idx];
        if set.len() == assoc {
            let victim = set.remove(0); // least-recently used
            if victim.prefetched_unused {
                self.stats.prefetch_evictions += 1;
            }
        }
        set.push(LineState {
            tag,
            prefetched_unused: prefetched,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 64 B, 2-way => 2 sets
        Cache::new(CacheConfig {
            capacity: 256,
            line: 64,
            assoc: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(8), "same line");
        assert!(!c.access(64), "next line is a different set/line");
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.demand_misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // set 0 holds lines 0, 2, 4... (line_no % 2 == 0)
        c.access_line(0);
        c.access_line(2);
        c.access_line(0); // refresh 0; LRU is now 2
        c.access_line(4); // evicts 2
        assert!(c.probe(0 << 6));
        assert!(!c.probe(2 << 6));
        assert!(c.probe(4 << 6));
    }

    #[test]
    fn prefetched_lines_count_once() {
        let mut c = tiny();
        c.prefetch_line(0);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.access(0), "prefetched line hits");
        assert_eq!(c.stats().prefetched_hits, 1);
        assert!(c.access(0));
        assert_eq!(c.stats().prefetched_hits, 1, "only first use counts");
        // prefetching a resident line is a no-op
        c.prefetch_line(0);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn wasted_prefetch_detected() {
        let mut c = tiny();
        c.prefetch_line(0);
        c.access_line(2); // same set
        c.access_line(4); // same set: evicts line 0 (LRU, never used)
        assert_eq!(c.stats().prefetch_evictions, 1);
    }

    #[test]
    fn hits_plus_misses_equal_accesses() {
        let mut c = Cache::new(CacheConfig {
            capacity: 8 * 1024,
            line: 64,
            assoc: 8,
        });
        let mut hits = 0u64;
        for i in 0..10_000u64 {
            if c.access((i * 40) % 32_768) {
                hits += 1;
            }
        }
        let s = c.stats();
        assert_eq!(s.accesses, 10_000);
        assert_eq!(hits + s.demand_misses, s.accesses);
    }
}
