//! The full simulated machine: L1 → L2 → L3 (+TLB), prefetcher at the LLC.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::prefetcher::PagePrefetcher;

/// Configuration of the simulated memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub l3: CacheConfig,
    /// TLB modeled as a cache over 4 kB pages.
    pub tlb: CacheConfig,
    /// Enable the LLC stride prefetcher (disable for ablations).
    pub prefetch: bool,
}

impl SimConfig {
    /// The paper's Nehalem machine (Fig. 4 / Table III), with real-world
    /// associativities (Table III does not list them).
    pub fn nehalem() -> Self {
        SimConfig {
            l1: CacheConfig {
                capacity: 32 * 1024,
                line: 64,
                assoc: 8,
            },
            l2: CacheConfig {
                capacity: 256 * 1024,
                line: 64,
                assoc: 8,
            },
            l3: CacheConfig {
                capacity: 8 * 1024 * 1024,
                line: 64,
                assoc: 16,
            },
            tlb: CacheConfig {
                capacity: 512 * 4096, // 512 entries x 4 kB pages
                line: 4096,
                assoc: 4,
            },
            prefetch: true,
        }
    }

    /// Same machine with the prefetcher off.
    pub fn nehalem_no_prefetch() -> Self {
        SimConfig {
            prefetch: false,
            ..Self::nehalem()
        }
    }
}

/// Aggregated event counts of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    pub l1: CacheStats,
    pub l2: CacheStats,
    pub l3: CacheStats,
    pub tlb: CacheStats,
    /// Total demand loads issued (each `access` call counts the lines and
    /// pages it spans).
    pub loads: u64,
}

/// The simulated hierarchy. Inclusive fill policy: a demand miss installs
/// the line at every level on the path; prefetches fill the LLC only
/// (matching the paper's "a fetch instruction is issued … and the cache line
/// loaded into a slot of the Last Level Cache").
#[derive(Debug, Clone)]
pub struct SimHierarchy {
    cfg: SimConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    tlb: Cache,
    prefetcher: PagePrefetcher,
    loads: u64,
}

impl SimHierarchy {
    /// Build a fresh (cold) machine.
    pub fn new(cfg: SimConfig) -> Self {
        SimHierarchy {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            tlb: Cache::new(cfg.tlb),
            prefetcher: PagePrefetcher::new(32, cfg.l3.line),
            loads: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Issue a demand load of `bytes` bytes at byte address `addr`,
    /// touching every cache line and page the range spans.
    pub fn access(&mut self, addr: u64, bytes: u64) {
        let line = self.cfg.l1.line;
        let first = addr / line;
        let last = (addr + bytes.max(1) - 1) / line;
        for l in first..=last {
            self.access_line(l);
        }
        let page = self.cfg.tlb.line;
        let pfirst = addr / page;
        let plast = (addr + bytes.max(1) - 1) / page;
        for p in pfirst..=plast {
            self.tlb.access_line(p);
        }
    }

    fn access_line(&mut self, line_no: u64) {
        self.loads += 1;
        if self.l1.access_line(line_no) {
            return;
        }
        if self.l2.access_line(line_no) {
            return;
        }
        // LLC: the prefetcher observes the demand stream reaching it.
        // The paper assumes "Adjacent Cache Line Prefetching with Stride
        // Detection" (§IV-A1): every demand access also pulls in the next
        // line, and a confirmed constant stride pulls in the stride target.
        self.l3.access_line(line_no);
        if self.cfg.prefetch {
            self.l3.prefetch_line(line_no + 1);
            if let Some(target) = self.prefetcher.observe(line_no) {
                self.l3.prefetch_line(target);
            }
        }
        // Inclusive fill of the inner levels.
        // (l1/l2 already installed the line on their miss paths.)
    }

    /// Snapshot all counters.
    pub fn stats(&self) -> SimStats {
        SimStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
            l3: self.l3.stats(),
            tlb: self.tlb.stats(),
            loads: self.loads,
        }
    }

    /// LLC counters (the ones Fig. 6 is about).
    pub fn llc_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Reset counters but keep cache contents (to measure steady state
    /// after a warm-up pass, like the paper's counter-based protocol).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.tlb.reset_stats();
        self.loads = 0;
    }

    /// Reset the prefetcher's stride history (between distinct traces).
    pub fn reset_prefetcher(&mut self) {
        self.prefetcher.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_is_mostly_prefetched() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        // 64 MB stream, 8 bytes a time: LLC cannot hold it.
        for i in 0..(8 * 1024 * 1024u64) {
            sim.access(i * 8, 8);
        }
        let s = sim.llc_stats();
        // after the stride locks in, every subsequent line arrives early
        assert!(
            s.prefetched_hits > 9 * s.demand_misses,
            "prefetched {} vs demand {}",
            s.prefetched_hits,
            s.demand_misses
        );
    }

    #[test]
    fn prefetcher_off_means_all_demand_misses() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem_no_prefetch());
        for i in 0..(1024 * 1024u64) {
            sim.access(i * 64, 8); // one access per line
        }
        let s = sim.llc_stats();
        assert_eq!(s.prefetched_hits, 0);
        assert_eq!(s.demand_misses, s.accesses);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        // 16 kB working set, touched 10 times
        for _ in 0..10 {
            for i in 0..(16 * 1024 / 64u64) {
                sim.access(i * 64, 8);
            }
        }
        let s = sim.stats();
        assert_eq!(s.l1.demand_misses, 256, "one cold miss per line");
        assert!(s.l1.accesses >= 2560);
    }

    #[test]
    fn random_accesses_hit_llc_only_if_resident() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        // 4 MB region fits in L3 (8 MB) but not L2.
        let lines = 4 * 1024 * 1024 / 64u64;
        let mut x = 99u64;
        // first pass: install
        for i in 0..lines {
            sim.access(i * 64, 8);
        }
        sim.reset_stats();
        sim.reset_prefetcher();
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.access((x % lines) * 64, 8);
        }
        let s = sim.llc_stats();
        assert!(
            s.demand_misses < s.accesses / 50,
            "resident region should mostly hit: {s:?}"
        );
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        sim.access(60, 8); // spans lines 0 and 1
        let s = sim.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.l1.demand_misses, 2);
    }

    #[test]
    fn tlb_counts_pages() {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        for page in 0..1000u64 {
            sim.access(page * 4096, 8);
        }
        let s = sim.stats();
        assert_eq!(s.tlb.accesses, 1000);
        assert_eq!(s.tlb.demand_misses, 1000, "cold TLB, distinct pages");
    }
}
