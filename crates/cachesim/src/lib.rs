//! # pdsm-cachesim
//!
//! A deterministic cache-hierarchy simulator standing in for the Intel
//! Nehalem performance counters used in §IV-C1 / Fig. 6 of the paper.
//!
//! The simulated machine mirrors Fig. 4: an L1 and L2 per core, a shared
//! last-level cache (L3), a TLB, and — crucially — an **adjacent cache-line
//! prefetcher with stride detection** attached to the LLC, the exact
//! strategy the paper's model assumes (§IV-A1).
//!
//! Counter semantics follow the paper's measurement protocol: the LLC
//! reports *demand* misses only; lines brought in by the prefetcher and then
//! used count as LLC accesses that hit. The Fig.-6 harness therefore
//! computes `random = demand misses` and `sequential = accesses − misses`,
//! exactly as the paper does with the hardware counters.
//!
//! ```
//! use pdsm_cachesim::{SimConfig, SimHierarchy};
//!
//! let mut sim = SimHierarchy::new(SimConfig::nehalem());
//! // Stream through 1 MB: after warm-up, nearly all LLC fills are prefetched.
//! for addr in (0..1_000_000u64).step_by(8) {
//!     sim.access(addr, 8);
//! }
//! let s = sim.llc_stats();
//! assert!(s.prefetched_hits > s.demand_misses);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod prefetcher;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{SimConfig, SimHierarchy};
pub use prefetcher::StridePrefetcher;
pub use trace::{run_atom, AtomTraceStats};
