//! Adjacent cache-line prefetching with stride detection (§IV-A1).
//!
//! The paper assumes the strategy of the Intel Core microarchitecture: when
//! the unit observes a constant stride between consecutive demand accesses,
//! it prefetches the line that continues the stride. This deliberately
//! simple, deterministic policy is what makes the model's
//! sequential/random-miss split analyzable — and is exactly what we
//! implement, so the simulator is the model's ideal referee.

/// Stride-detecting next-line prefetcher. Works in units of cache lines.
#[derive(Debug, Clone, Default)]
pub struct StridePrefetcher {
    last_line: Option<u64>,
    last_stride: Option<i64>,
    /// Maximum stride (in lines) the unit will follow. Real prefetchers stop
    /// following large strides; 32 lines (2 kB) is a generous bound.
    max_stride: i64,
}

impl StridePrefetcher {
    /// Prefetcher with the default stride bound.
    pub fn new() -> Self {
        StridePrefetcher {
            last_line: None,
            last_stride: None,
            max_stride: 32,
        }
    }

    /// Observe a demand access to `line_no`; returns the line to prefetch,
    /// if the stride pattern has been confirmed.
    pub fn observe(&mut self, line_no: u64) -> Option<u64> {
        let prediction = match (self.last_line, self.last_stride) {
            (Some(prev), _) => {
                let stride = line_no as i64 - prev as i64;
                let confirmed = self.last_stride == Some(stride)
                    && stride != 0
                    && stride.abs() <= self.max_stride;
                self.last_stride = Some(stride);
                if confirmed {
                    let target = line_no as i64 + stride;
                    (target >= 0).then_some(target as u64)
                } else {
                    None
                }
            }
            _ => None,
        };
        self.last_line = Some(line_no);
        prediction
    }

    /// Forget the access history (e.g. between traces).
    pub fn reset(&mut self) {
        self.last_line = None;
        self.last_stride = None;
    }
}

/// A table of per-region stride trackers. Hardware prefetchers (including
/// the Core-microarchitecture unit the paper cites) track streams within
/// 4 kB pages so that interleaved scans of different regions do not destroy
/// each other's stride history — essential for patterns like
/// `s_trav(A) ⊙ s_trav_cr(B)` where two streams alternate.
#[derive(Debug, Clone)]
pub struct PagePrefetcher {
    /// `(page, tracker)` pairs in LRU order (most recent last).
    trackers: Vec<(u64, StridePrefetcher)>,
    /// Maximum simultaneously tracked pages.
    capacity: usize,
    /// Lines per tracked page (page size / line size).
    lines_per_page: u64,
}

impl PagePrefetcher {
    /// Tracker table with `capacity` stream slots for `line`-byte cache
    /// lines and 4 kB pages.
    pub fn new(capacity: usize, line_bytes: u64) -> Self {
        PagePrefetcher {
            trackers: Vec::with_capacity(capacity),
            capacity,
            lines_per_page: (4096 / line_bytes).max(1),
        }
    }

    /// Observe a demand access; returns a line to prefetch if the stream
    /// within this access's page has a confirmed stride.
    pub fn observe(&mut self, line_no: u64) -> Option<u64> {
        let page = line_no / self.lines_per_page;
        if let Some(pos) = self.trackers.iter().position(|(p, _)| *p == page) {
            let (_, mut tr) = self.trackers.remove(pos);
            let pred = tr.observe(line_no);
            self.trackers.push((page, tr));
            return pred;
        }
        // New stream. Seed its tracker with the neighbour page's direction:
        // a sequential scan crossing a page boundary keeps its stride.
        let mut tr = StridePrefetcher::new();
        let carried = self
            .trackers
            .iter()
            .rev()
            .find(|(p, _)| *p + 1 == page || page + 1 == *p)
            .map(|(_, t)| t.clone());
        if let Some(prev) = carried {
            tr = prev;
        }
        let pred = tr.observe(line_no);
        if self.trackers.len() == self.capacity {
            self.trackers.remove(0);
        }
        self.trackers.push((page, tr));
        pred
    }

    /// Drop all stream history.
    pub fn reset(&mut self) {
        self.trackers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_confirmed_on_third_access() {
        let mut p = StridePrefetcher::new();
        assert_eq!(p.observe(10), None, "no history");
        assert_eq!(p.observe(11), None, "stride seen once, not confirmed");
        assert_eq!(p.observe(12), Some(13), "constant stride confirmed");
        assert_eq!(p.observe(13), Some(14));
    }

    #[test]
    fn larger_strides_followed_up_to_bound() {
        let mut p = StridePrefetcher::new();
        p.observe(0);
        p.observe(4);
        assert_eq!(p.observe(8), Some(12));
        let mut p = StridePrefetcher::new();
        p.observe(0);
        p.observe(100);
        assert_eq!(p.observe(200), None, "stride 100 exceeds bound");
    }

    #[test]
    fn random_pattern_never_prefetches() {
        let mut p = StridePrefetcher::new();
        let mut fired = 0;
        let mut x = 123456789u64;
        let mut prev = 0u64;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 1_000_000;
            if prev == line {
                continue;
            }
            prev = line;
            if p.observe(line).is_some() {
                fired += 1;
            }
        }
        assert!(fired < 5, "random stream fired {fired} prefetches");
    }

    #[test]
    fn backward_stride_works() {
        let mut p = StridePrefetcher::new();
        p.observe(100);
        p.observe(99);
        assert_eq!(p.observe(98), Some(97));
    }

    #[test]
    fn zero_stride_ignored() {
        let mut p = StridePrefetcher::new();
        p.observe(5);
        p.observe(5);
        assert_eq!(p.observe(5), None);
    }

    #[test]
    fn reset_clears_history() {
        let mut p = StridePrefetcher::new();
        p.observe(1);
        p.observe(2);
        p.reset();
        assert_eq!(p.observe(3), None);
        assert_eq!(p.observe(4), None);
        assert_eq!(p.observe(5), Some(6));
    }

    #[test]
    fn page_prefetcher_tracks_interleaved_streams() {
        let mut p = PagePrefetcher::new(16, 64);
        // Two unit-stride streams, far apart, strictly alternating.
        // A single-stream tracker would see stride flip-flopping and never
        // fire; per-page tracking must lock onto both.
        let mut fired = 0;
        for i in 0..100u64 {
            if p.observe(i).is_some() {
                fired += 1;
            }
            if p.observe(1_000_000 + i).is_some() {
                fired += 1;
            }
        }
        assert!(fired >= 180, "both streams should prefetch, fired={fired}");
    }

    #[test]
    fn page_prefetcher_carries_stride_across_page_boundary() {
        let mut p = PagePrefetcher::new(16, 64);
        // 64 lines per 4 kB page; scan through the boundary at line 64.
        let mut missed_at_boundary = false;
        for i in 60..70u64 {
            let fired = p.observe(i).is_some();
            if i >= 62 && !fired {
                missed_at_boundary = true;
            }
        }
        assert!(!missed_at_boundary, "stride must survive page crossing");
    }

    #[test]
    fn page_prefetcher_reset() {
        let mut p = PagePrefetcher::new(4, 64);
        p.observe(1);
        p.observe(2);
        p.reset();
        assert_eq!(p.observe(3), None);
    }

    #[test]
    fn page_prefetcher_capacity_evicts_lru_stream() {
        let mut p = PagePrefetcher::new(2, 64);
        // warm stream in page 0
        p.observe(0);
        p.observe(1);
        assert_eq!(p.observe(2), Some(3));
        // two other pages evict page 0's tracker (capacity 2)
        p.observe(10_000);
        p.observe(20_000);
        // page 0 stream must re-learn (neighbour carry does not apply:
        // pages 156/312 are not adjacent to page 0)
        assert_eq!(p.observe(3), None);
    }
}
