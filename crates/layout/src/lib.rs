//! # pdsm-layout
//!
//! Workload-driven schema decomposition (§V of the paper).
//!
//! Finding the optimal vertical partitioning is a search over all layouts
//! with the cost model as objective. Attribute-level search is exponential
//! in the schema width, so the paper (following Chu & Ieong) takes the
//! *queries* as hints:
//!
//! * [`cuts`] derives **extended reasonable cuts** from the access patterns
//!   a workload's queries emit — unlike classic reasonable cuts, attributes
//!   accessed *in the same query but under different access patterns* (e.g.
//!   a scanned selection column vs. conditionally read payload columns)
//!   yield separate cuts (§V-A; this is what splits `NAME1` from `NAME2` in
//!   Table IV),
//! * [`bpi`] implements the **BPi** branch-and-bound over cut subsets with a
//!   cost-improvement threshold, plus the exhaustive **OBP** used as a test
//!   oracle on small inputs,
//! * [`workload`] prices a workload under a candidate layout by running
//!   every query through the plan→pattern translation and the cost model.

pub mod bpi;
pub mod cuts;
pub mod workload;

pub use bpi::{optimize_table, OptimizerConfig};
pub use cuts::{extended_reasonable_cuts, Cut};
pub use workload::{Workload, WorkloadQuery};
