//! Workloads and their cost under candidate layouts.

use pdsm_cost::{cost, Hierarchy};
use pdsm_plan::logical::LogicalPlan;
use pdsm_plan::patterns::{emit_pattern, AccessGroup, TableView};
use pdsm_storage::Layout;
use std::collections::HashMap;

/// One query of a workload with its execution frequency (the CNET benchmark
/// weighs its queries 1 / 1 / 100 / 10 000, Table V).
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub plan: LogicalPlan,
    pub frequency: f64,
    /// Optional label for reports.
    pub name: String,
}

impl WorkloadQuery {
    /// A query with frequency 1.
    pub fn new(name: impl Into<String>, plan: LogicalPlan) -> Self {
        WorkloadQuery {
            plan,
            frequency: 1.0,
            name: name.into(),
        }
    }

    /// Set the frequency.
    pub fn with_frequency(mut self, f: f64) -> Self {
        self.frequency = f;
        self
    }
}

/// A set of weighted queries over a fixed set of tables.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a query.
    pub fn push(&mut self, q: WorkloadQuery) -> &mut Self {
        self.queries.push(q);
        self
    }

    /// Frequency-weighted cost (cycles) of the whole workload under the
    /// layouts in `views`.
    pub fn cost(&self, views: &HashMap<String, TableView>, hw: &Hierarchy) -> f64 {
        self.queries
            .iter()
            .map(|q| {
                let emitted = emit_pattern(&q.plan, views);
                q.frequency * cost::estimate(&emitted.pattern, hw).total_cycles
            })
            .sum()
    }

    /// Workload cost when `table` uses `layout` (other tables keep the
    /// layouts in `views`).
    pub fn cost_with_layout(
        &self,
        views: &HashMap<String, TableView>,
        table: &str,
        layout: &Layout,
        hw: &Hierarchy,
    ) -> f64 {
        let mut v = views.clone();
        if let Some(tv) = v.get_mut(table) {
            *tv = tv.with_layout(layout.clone());
        }
        self.cost(&v, hw)
    }

    /// All access groups the workload's queries emit for `table`, with each
    /// group's probability weighted into a per-query record (input to cut
    /// generation). Layout-independent.
    pub fn access_groups(
        &self,
        views: &HashMap<String, TableView>,
        table: &str,
    ) -> Vec<Vec<AccessGroup>> {
        self.queries
            .iter()
            .map(|q| {
                emit_pattern(&q.plan, views)
                    .groups
                    .into_iter()
                    .filter(|g| g.table == table)
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};

    fn views() -> HashMap<String, TableView> {
        let mut m = HashMap::new();
        m.insert(
            "R".to_string(),
            TableView {
                name: "R".into(),
                n_rows: 1_000_000,
                col_widths: vec![4; 16],
                layout: Layout::row(16),
                stats: None,
            },
        );
        m
    }

    fn narrow_query(sel: f64) -> WorkloadQuery {
        WorkloadQuery::new(
            "q",
            QueryBuilder::scan("R")
                .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), sel)
                .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
                .build(),
        )
    }

    #[test]
    fn column_layout_beats_row_for_narrow_scan() {
        let hw = Hierarchy::nehalem();
        let mut w = Workload::new();
        w.push(narrow_query(0.001));
        let v = views();
        let row = w.cost(&v, &hw);
        let col = w.cost_with_layout(&v, "R", &Layout::column(16), &hw);
        assert!(
            col < row / 2.0,
            "narrow scan: column {col:.0} should be well below row {row:.0}"
        );
    }

    #[test]
    fn frequency_scales_cost() {
        let hw = Hierarchy::nehalem();
        let mut w1 = Workload::new();
        w1.push(narrow_query(0.01));
        let mut w10 = Workload::new();
        w10.push(narrow_query(0.01).with_frequency(10.0));
        let v = views();
        let c1 = w1.cost(&v, &hw);
        let c10 = w10.cost(&v, &hw);
        assert!((c10 / c1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn access_groups_filtered_per_table() {
        let mut w = Workload::new();
        w.push(narrow_query(0.01));
        let groups = w.access_groups(&views(), "R");
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].is_empty());
        let none = w.access_groups(&views(), "S");
        assert!(none[0].is_empty());
    }
}
