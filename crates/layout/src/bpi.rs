//! The BPi branch-and-bound layout optimizer (§V, after Chu & Ieong) and
//! the exhaustive OBP oracle.
//!
//! The search space is the power set of the extended reasonable cuts: a
//! subset of cuts, applied in sequence to the initial (row) layout, yields a
//! partitioning. BPi explores this space with branch-and-bound: a cut whose
//! inclusion does not improve the current cost by more than `threshold` is
//! pruned (its "include" subtree skipped), trading optimality for search
//! cost — exactly the knob the paper describes.

use crate::cuts::{extended_reasonable_cuts, Cut};
use crate::workload::Workload;
use pdsm_cost::Hierarchy;
use pdsm_plan::patterns::TableView;
use pdsm_storage::{ColId, Layout};
use std::collections::HashMap;

/// Optimizer knobs.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Minimum relative cost improvement (e.g. 0.001 = 0.1 %) for a cut to
    /// be considered for inclusion. Larger = faster, less optimal.
    pub threshold: f64,
    /// Safety bound on explored states.
    pub max_states: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            threshold: 1e-4,
            max_states: 200_000,
        }
    }
}

/// Apply a cut to a layout: every group splits into its intersection with
/// the cut and the remainder.
pub fn apply_cut(layout: &Layout, cut: &Cut) -> Layout {
    let mut groups: Vec<Vec<ColId>> = Vec::new();
    for g in layout.groups() {
        let inside: Vec<ColId> = g.iter().copied().filter(|c| cut.0.contains(c)).collect();
        let outside: Vec<ColId> = g.iter().copied().filter(|c| !cut.0.contains(c)).collect();
        if !inside.is_empty() {
            groups.push(inside);
        }
        if !outside.is_empty() {
            groups.push(outside);
        }
    }
    Layout::from_groups(groups, layout.n_cols()).expect("cut preserves cover")
}

/// Result of a table optimization.
#[derive(Debug, Clone)]
pub struct OptimizedLayout {
    pub layout: Layout,
    pub cost: f64,
    /// Number of candidate layouts priced.
    pub states_explored: usize,
    /// The candidate cuts that were derived from the workload.
    pub cuts: Vec<Cut>,
}

/// Optimize `table`'s layout for `workload` using BPi.
///
/// `views` must contain a [`TableView`] for every table the workload
/// references; `table`'s entry provides the starting layout (conventionally
/// [`Layout::row`], as undecomposed N-ary storage is the paper's baseline).
pub fn optimize_table(
    table: &str,
    views: &HashMap<String, TableView>,
    workload: &Workload,
    hw: &Hierarchy,
    cfg: &OptimizerConfig,
) -> OptimizedLayout {
    let n_cols = views[table].col_widths.len();
    let groups = workload.access_groups(views, table);
    let cuts = extended_reasonable_cuts(&groups);
    let start = Layout::row(n_cols);
    let start_cost = workload.cost_with_layout(views, table, &start, hw);

    let mut best = (start.clone(), start_cost);
    let mut states = 1usize;
    branch(
        table,
        views,
        workload,
        hw,
        cfg,
        &cuts,
        0,
        start,
        start_cost,
        &mut best,
        &mut states,
    );
    OptimizedLayout {
        layout: best.0.canonical(),
        cost: best.1,
        states_explored: states,
        cuts,
    }
}

#[allow(clippy::too_many_arguments)]
fn branch(
    table: &str,
    views: &HashMap<String, TableView>,
    workload: &Workload,
    hw: &Hierarchy,
    cfg: &OptimizerConfig,
    cuts: &[Cut],
    idx: usize,
    layout: Layout,
    layout_cost: f64,
    best: &mut (Layout, f64),
    states: &mut usize,
) {
    if idx >= cuts.len() || *states >= cfg.max_states {
        return;
    }
    let cut = &cuts[idx];
    let with_cut = apply_cut(&layout, cut);
    // A cut that does not change the layout needs no separate branch.
    if with_cut.canonical() == layout.canonical() {
        branch(
            table,
            views,
            workload,
            hw,
            cfg,
            cuts,
            idx + 1,
            layout,
            layout_cost,
            best,
            states,
        );
        return;
    }
    let cut_cost = workload.cost_with_layout(views, table, &with_cut, hw);
    *states += 1;
    let improvement = (layout_cost - cut_cost) / layout_cost.max(1.0);
    if cut_cost < best.1 {
        *best = (with_cut.clone(), cut_cost);
    }
    if improvement > cfg.threshold {
        // include branch
        branch(
            table,
            views,
            workload,
            hw,
            cfg,
            cuts,
            idx + 1,
            with_cut,
            cut_cost,
            best,
            states,
        );
    }
    // exclude branch (always explored; pruning only skips inclusion)
    branch(
        table,
        views,
        workload,
        hw,
        cfg,
        cuts,
        idx + 1,
        layout,
        layout_cost,
        best,
        states,
    );
}

/// Exhaustive search over all cut subsets (OBP). Exponential — use only for
/// small cut sets (tests and ablations).
pub fn obp_exhaustive(
    table: &str,
    views: &HashMap<String, TableView>,
    workload: &Workload,
    hw: &Hierarchy,
) -> OptimizedLayout {
    let n_cols = views[table].col_widths.len();
    let groups = workload.access_groups(views, table);
    let cuts = extended_reasonable_cuts(&groups);
    assert!(
        cuts.len() <= 20,
        "OBP over {} cuts would explore 2^{} states",
        cuts.len(),
        cuts.len()
    );
    let start = Layout::row(n_cols);
    let mut best = (
        start.clone(),
        workload.cost_with_layout(views, table, &start, hw),
    );
    let mut states = 1usize;
    for mask in 1u64..(1u64 << cuts.len()) {
        let mut layout = start.clone();
        for (i, cut) in cuts.iter().enumerate() {
            if mask >> i & 1 == 1 {
                layout = apply_cut(&layout, cut);
            }
        }
        let cost = workload.cost_with_layout(views, table, &layout, hw);
        states += 1;
        if cost < best.1 {
            best = (layout, cost);
        }
    }
    OptimizedLayout {
        layout: best.0.canonical(),
        cost: best.1,
        states_explored: states,
        cuts,
    }
}

/// Attribute-level exhaustive search over **all** set partitions of the
/// schema (the Data Morphing approach the paper rejects as impractical,
/// §V): Bell(n) candidate layouts. Only feasible for tiny schemas — the
/// point. Used as the optimality oracle for BPi and as the search-cost
/// ablation.
pub fn attribute_exhaustive(
    table: &str,
    views: &HashMap<String, TableView>,
    workload: &Workload,
    hw: &Hierarchy,
) -> OptimizedLayout {
    let n = views[table].col_widths.len();
    assert!(
        n <= 10,
        "Bell({n}) partitions is exactly the explosion §V avoids"
    );
    let mut best: Option<(Layout, f64)> = None;
    let mut states = 0usize;
    // enumerate set partitions via restricted growth strings
    let mut rgs = vec![0usize; n];
    loop {
        let n_groups = rgs.iter().copied().max().unwrap_or(0) + 1;
        let mut groups: Vec<Vec<ColId>> = vec![Vec::new(); n_groups];
        for (col, &g) in rgs.iter().enumerate() {
            groups[g].push(col);
        }
        let layout = Layout::from_groups(groups, n).expect("rgs is a cover");
        let cost = workload.cost_with_layout(views, table, &layout, hw);
        states += 1;
        if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
            best = Some((layout, cost));
        }
        // next restricted growth string
        let mut i = n as isize - 1;
        loop {
            if i <= 0 {
                let (layout, cost) = best.expect("at least one partition");
                return OptimizedLayout {
                    layout: layout.canonical(),
                    cost,
                    states_explored: states,
                    cuts: Vec::new(),
                };
            }
            let prefix_max = rgs[..i as usize].iter().copied().max().unwrap_or(0);
            if rgs[i as usize] <= prefix_max {
                rgs[i as usize] += 1;
                for r in rgs.iter_mut().take(n).skip(i as usize + 1) {
                    *r = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdsm_plan::builder::QueryBuilder;
    use pdsm_plan::expr::Expr;
    use pdsm_plan::logical::{AggExpr, AggFunc};
    use pdsm_storage::Layout;

    fn example_views() -> HashMap<String, TableView> {
        let mut m = HashMap::new();
        m.insert(
            "R".to_string(),
            TableView {
                name: "R".into(),
                n_rows: 2_000_000,
                col_widths: vec![4; 16],
                layout: Layout::row(16),
                stats: None,
            },
        );
        m
    }

    fn example_workload(sel: f64) -> Workload {
        let mut w = Workload::new();
        w.push(crate::workload::WorkloadQuery::new(
            "sum_bcde",
            QueryBuilder::scan("R")
                .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), sel)
                .aggregate(
                    vec![],
                    (1..=4)
                        .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                        .collect(),
                )
                .build(),
        ));
        w
    }

    #[test]
    fn apply_cut_splits_groups() {
        let l = Layout::row(5);
        let cut = Cut(vec![1, 3]);
        let out = apply_cut(&l, &cut);
        assert_eq!(out.to_string(), "{{1,3},{0,2,4}}");
        // cutting again with the same cut is a no-op modulo order
        assert_eq!(apply_cut(&out, &cut).canonical(), out.canonical());
    }

    #[test]
    fn low_selectivity_isolates_condition_column() {
        // At 0.1 % selectivity the scan of A dominates: the paper's example
        // wants {A} split from everything else. (The payload columns touch
        // so few, isolated cache lines that their co-location is a wash —
        // the model correctly leaves them wherever.)
        let views = example_views();
        let w = example_workload(0.001);
        let hw = Hierarchy::nehalem();
        let opt = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        let a_group = opt.layout.groups().iter().find(|g| g.contains(&0)).unwrap();
        assert_eq!(a_group, &vec![0], "A must be isolated: {}", opt.layout);
        // cost must improve on the row layout
        let row_cost = w.cost_with_layout(&views, "R", &Layout::row(16), &hw);
        assert!(opt.cost < row_cost);
    }

    #[test]
    fn moderate_selectivity_colocates_payload_away_from_cold_columns() {
        // At 20 % selectivity the payload's line usage is dense enough that
        // dragging 11 cold columns along hurts, while splitting B..E apart
        // would waste lines. Expected: {{0},{1,2,3,4},{5..15}} — the PDSM
        // sweet spot of the paper's Fig. 3 narrative.
        let views = example_views();
        let w = example_workload(0.2);
        let hw = Hierarchy::nehalem();
        let opt = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        let a_group = opt.layout.groups().iter().find(|g| g.contains(&0)).unwrap();
        assert_eq!(a_group, &vec![0], "A must be isolated: {}", opt.layout);
        let b_group = opt.layout.groups().iter().find(|g| g.contains(&1)).unwrap();
        assert_eq!(
            b_group,
            &vec![1, 2, 3, 4],
            "payload stays together, away from cold columns: {}",
            opt.layout
        );
    }

    #[test]
    fn full_selectivity_keeps_payload_with_condition() {
        // At s = 1 every tuple's payload is read: colocating A with B..E
        // (or at least not splitting B..E apart) should win over isolating
        // them from each other... the paper's criterion: A and B..E may
        // stay together since they are always accessed together.
        let views = example_views();
        let w = example_workload(1.0);
        let hw = Hierarchy::nehalem();
        let opt = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        // Whatever the exact grouping, the hot columns {0..4} must be
        // separated from the 11 cold columns.
        for g in opt.layout.groups() {
            let hot = g.iter().filter(|&&c| c <= 4).count();
            let cold = g.iter().filter(|&&c| c > 4).count();
            assert!(
                hot == 0 || cold == 0,
                "hot and cold columns share a partition: {}",
                opt.layout
            );
        }
    }

    #[test]
    fn bpi_matches_obp_on_small_workload() {
        let views = example_views();
        let w = example_workload(0.01);
        let hw = Hierarchy::nehalem();
        let bpi = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        let obp = obp_exhaustive("R", &views, &w, &hw);
        // BPi with a tiny threshold should land on the OBP optimum here.
        assert!(
            (bpi.cost - obp.cost).abs() <= 1e-6 * obp.cost,
            "bpi {} vs obp {}",
            bpi.cost,
            obp.cost
        );
    }

    #[test]
    fn high_threshold_explores_fewer_states() {
        let views = example_views();
        let w = example_workload(0.01);
        let hw = Hierarchy::nehalem();
        let tight = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        let loose = optimize_table(
            "R",
            &views,
            &w,
            &hw,
            &OptimizerConfig {
                threshold: 0.9,
                max_states: 200_000,
            },
        );
        assert!(loose.states_explored <= tight.states_explored);
        assert!(loose.cost >= tight.cost);
    }

    #[test]
    fn bpi_reaches_attribute_level_optimum_with_far_fewer_states() {
        // 8-column table, one selective scan-agg query: the attribute-level
        // oracle explores Bell(8) = 4140 layouts; BPi must find a layout of
        // equal cost from its handful of workload-derived cuts.
        let mut views = HashMap::new();
        views.insert(
            "S".to_string(),
            TableView {
                name: "S".into(),
                n_rows: 1_000_000,
                col_widths: vec![4; 8],
                layout: Layout::row(8),
                stats: None,
            },
        );
        let mut w = Workload::new();
        w.push(crate::workload::WorkloadQuery::new(
            "q",
            QueryBuilder::scan("S")
                .filter_with_selectivity(Expr::col(0).eq(Expr::lit(1)), 0.02)
                .aggregate(
                    vec![],
                    vec![
                        AggExpr::new(AggFunc::Sum, Expr::col(1)),
                        AggExpr::new(AggFunc::Sum, Expr::col(2)),
                    ],
                )
                .build(),
        ));
        let hw = Hierarchy::nehalem();
        let oracle = attribute_exhaustive("S", &views, &w, &hw);
        let bpi = optimize_table("S", &views, &w, &hw, &OptimizerConfig::default());
        assert_eq!(oracle.states_explored, 4140, "Bell(8)");
        assert!(
            bpi.states_explored < oracle.states_explored / 50,
            "BPi explored {} vs oracle {}",
            bpi.states_explored,
            oracle.states_explored
        );
        // BPi searches only the workload-derived cut lattice — a strict
        // subset of all partitions — so a small residual gap to the
        // attribute-level optimum is the expected price of tractability
        // (§V's explicit trade). Measured gap here: ~1 %.
        assert!(
            bpi.cost <= oracle.cost * 1.05,
            "BPi {} must be within 5% of the attribute-level optimum {}",
            bpi.cost,
            oracle.cost
        );
        assert!(bpi.cost >= oracle.cost * 0.999, "oracle must not be beaten");
    }

    #[test]
    fn optimized_layout_is_valid_cover() {
        let views = example_views();
        let w = example_workload(0.05);
        let hw = Hierarchy::nehalem();
        let opt = optimize_table("R", &views, &w, &hw, &OptimizerConfig::default());
        // Layout::from_groups inside apply_cut validates; double-check here.
        let mut seen = [false; 16];
        for g in opt.layout.groups() {
            for &c in g {
                assert!(!seen[c], "column {c} twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
