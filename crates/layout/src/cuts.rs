//! Extended reasonable cuts (§V-A).
//!
//! A *cut* is an attribute set considered for isolation into its own
//! partition. Classic reasonable cuts take, per query, the set of accessed
//! attributes. The paper's extension derives cuts from the **access
//! patterns** instead: attributes accessed within one atom (or in concurrent
//! atoms of the same kind and probability) stay together; attributes of the
//! same query accessed under *different* patterns — a scanned selection
//! column vs. conditionally read payload — produce separate cuts. For
//! concurrent conditional reads with selectivity < 1 both the split and the
//! merged variants are candidates.

use pdsm_plan::patterns::{AccessGroup, AccessKind};
use pdsm_storage::ColId;
use std::collections::BTreeSet;

/// An attribute set proposed for isolation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cut(pub Vec<ColId>);

impl Cut {
    fn from_set(s: &BTreeSet<ColId>) -> Self {
        Cut(s.iter().copied().collect())
    }
}

impl std::fmt::Display for Cut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Two probabilities count as "the same access class" within this tolerance
/// (concurrent atoms of the same kind merge, §V-A).
const PROB_EPS: f64 = 1e-9;

/// Generate the extended reasonable cuts of one table from the per-query
/// access groups (`groups[q]` = the groups query `q` emitted).
pub fn extended_reasonable_cuts(groups_per_query: &[Vec<AccessGroup>]) -> Vec<Cut> {
    let mut cuts: BTreeSet<Cut> = BTreeSet::new();
    for query_groups in groups_per_query {
        // 1. every atomic access group is a cut
        for g in query_groups {
            if !g.cols.is_empty() {
                cuts.insert(Cut(g.cols.clone()));
            }
        }
        // 2. concurrent groups of the same kind and probability merge
        let mut classes: Vec<(AccessKind, f64, BTreeSet<ColId>)> = Vec::new();
        for g in query_groups {
            match classes
                .iter_mut()
                .find(|(k, p, _)| *k == g.kind && (*p - g.prob).abs() < PROB_EPS)
            {
                Some((_, _, set)) => set.extend(g.cols.iter().copied()),
                None => {
                    classes.push((g.kind, g.prob, g.cols.iter().copied().collect()));
                }
            }
        }
        for (_, _, set) in &classes {
            cuts.insert(Cut::from_set(set));
        }
        // 3. conditional reads with s < 1 may or may not co-occur with the
        //    unconditional scan: the merged variant is also a candidate
        //    ("we have to consider all possible cuts", §V-A).
        let mut query_union: BTreeSet<ColId> = BTreeSet::new();
        for g in query_groups {
            query_union.extend(g.cols.iter().copied());
        }
        if !query_union.is_empty() {
            cuts.insert(Cut::from_set(&query_union)); // the classic cut
        }
        // pairwise merges of classes (split-vs-merge candidates)
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                let mut merged = classes[i].2.clone();
                merged.extend(classes[j].2.iter().copied());
                cuts.insert(Cut::from_set(&merged));
            }
        }
    }
    cuts.retain(|c| !c.0.is_empty());
    cuts.into_iter().collect()
}

/// Classic (query-level) reasonable cuts — the ablation baseline: one cut
/// per query, containing every attribute the query touches.
pub fn classic_reasonable_cuts(groups_per_query: &[Vec<AccessGroup>]) -> Vec<Cut> {
    let mut cuts: BTreeSet<Cut> = BTreeSet::new();
    for query_groups in groups_per_query {
        let mut union: BTreeSet<ColId> = BTreeSet::new();
        for g in query_groups {
            union.extend(g.cols.iter().copied());
        }
        if !union.is_empty() {
            cuts.insert(Cut::from_set(&union));
        }
    }
    cuts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(cols: &[ColId], kind: AccessKind, prob: f64) -> AccessGroup {
        AccessGroup {
            table: "t".into(),
            cols: cols.to_vec(),
            kind,
            prob,
        }
    }

    #[test]
    fn example_query_splits_condition_from_payload() {
        // The paper's motivating case: {{A},{B,C,D,E}} must be generated
        // even though A and B..E are accessed in the same query (§V-A).
        let groups = vec![vec![
            g(&[0], AccessKind::Sequential, 1.0),
            g(&[1, 2, 3, 4], AccessKind::Conditional, 0.01),
        ]];
        let cuts = extended_reasonable_cuts(&groups);
        assert!(cuts.contains(&Cut(vec![0])), "{cuts:?}");
        assert!(cuts.contains(&Cut(vec![1, 2, 3, 4])), "{cuts:?}");
        // the merged (classic) cut is also a candidate
        assert!(cuts.contains(&Cut(vec![0, 1, 2, 3, 4])), "{cuts:?}");
        // classic cuts alone would never consider the split
        let classic = classic_reasonable_cuts(&groups);
        assert_eq!(classic, vec![Cut(vec![0, 1, 2, 3, 4])]);
    }

    #[test]
    fn same_kind_same_prob_merges() {
        // two concurrent full scans merge into one cut
        let groups = vec![vec![
            g(&[0], AccessKind::Sequential, 1.0),
            g(&[3], AccessKind::Sequential, 1.0),
        ]];
        let cuts = extended_reasonable_cuts(&groups);
        assert!(cuts.contains(&Cut(vec![0, 3])));
    }

    #[test]
    fn different_probabilities_stay_separate_but_offer_merge() {
        // s_trav_cr(a, 0.5) ⊙ s_trav_cr(b, 0.1): both splits and the merge
        let groups = vec![vec![
            g(&[0], AccessKind::Conditional, 0.5),
            g(&[1], AccessKind::Conditional, 0.1),
        ]];
        let cuts = extended_reasonable_cuts(&groups);
        assert!(cuts.contains(&Cut(vec![0])));
        assert!(cuts.contains(&Cut(vec![1])));
        assert!(cuts.contains(&Cut(vec![0, 1])));
    }

    #[test]
    fn cuts_deduplicate_across_queries() {
        let groups = vec![
            vec![g(&[0], AccessKind::Sequential, 1.0)],
            vec![g(&[0], AccessKind::Sequential, 1.0)],
        ];
        let cuts = extended_reasonable_cuts(&groups);
        assert_eq!(cuts.len(), 1);
    }

    #[test]
    fn empty_input_no_cuts() {
        assert!(extended_reasonable_cuts(&[]).is_empty());
        assert!(extended_reasonable_cuts(&[vec![]]).is_empty());
    }
}
