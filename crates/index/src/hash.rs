//! Open-addressing hash index: `i64` key → row ids.
//!
//! Linear probing with Fibonacci hashing. The common case (unique keys, as
//! for primary keys) stores the single row id inline; duplicate keys spill
//! into a shared overflow arena, keeping entries fixed-size and the probe
//! loop branch-light — the same "no function pointers in the inner loop"
//! discipline the paper demands of the execution engine.

const EMPTY: i64 = i64::MIN;

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Key, or `EMPTY` (i64::MIN is reserved; asserted on insert).
    key: i64,
    /// Row id if `overflow == u32::MAX`, else head index into `overflow`.
    first: u32,
    /// Index into the overflow arena or `u32::MAX` when inline.
    overflow: u32,
}

impl Entry {
    const VACANT: Entry = Entry {
        key: EMPTY,
        first: 0,
        overflow: u32::MAX,
    };
}

/// Multi-map hash index with open addressing.
#[derive(Debug, Clone)]
pub struct HashIndex {
    slots: Vec<Entry>,
    /// Spill lists for duplicate keys.
    overflow: Vec<Vec<u32>>,
    keys: usize,
    mask: u64,
}

impl Default for HashIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Index pre-sized for about `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap * 2).next_power_of_two().max(16);
        HashIndex {
            slots: vec![Entry::VACANT; slots],
            overflow: Vec::new(),
            keys: 0,
            mask: slots as u64 - 1,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys
    }

    /// True iff no keys.
    pub fn is_empty(&self) -> bool {
        self.keys == 0
    }

    #[inline]
    fn bucket(&self, key: i64) -> usize {
        // Fibonacci hashing spreads consecutive keys well.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32 & self.mask) as usize
    }

    /// Insert `(key, row)`. Duplicate keys accumulate rows.
    pub fn insert(&mut self, key: i64, row: u32) {
        assert_ne!(key, EMPTY, "i64::MIN is reserved as the empty marker");
        if (self.keys + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            let e = &mut self.slots[i];
            if e.key == EMPTY {
                *e = Entry {
                    key,
                    first: row,
                    overflow: u32::MAX,
                };
                self.keys += 1;
                return;
            }
            if e.key == key {
                if e.overflow == u32::MAX {
                    let list = vec![e.first, row];
                    e.overflow = self.overflow.len() as u32;
                    self.overflow.push(list);
                } else {
                    self.overflow[e.overflow as usize].push(row);
                }
                return;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Row ids stored under `key` (empty slice if absent).
    pub fn get(&self, key: i64) -> &[u32] {
        let mut i = self.bucket(key);
        loop {
            let e = &self.slots[i];
            if e.key == EMPTY {
                return &[];
            }
            if e.key == key {
                return if e.overflow == u32::MAX {
                    std::slice::from_ref(&self.slots[i].first)
                } else {
                    &self.overflow[e.overflow as usize]
                };
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// True iff `key` is present.
    pub fn contains(&self, key: i64) -> bool {
        !self.get(key).is_empty()
    }

    fn grow(&mut self) {
        let new_slots = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Entry::VACANT; new_slots]);
        self.mask = new_slots as u64 - 1;
        for e in old {
            if e.key == EMPTY {
                continue;
            }
            // re-place the entry verbatim (overflow list indexes stay valid)
            let mut i = self.bucket(e.key);
            while self.slots[i].key != EMPTY {
                i = (i + 1) & self.mask as usize;
            }
            self.slots[i] = e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut h = HashIndex::new();
        for i in 0..10_000i64 {
            h.insert(i * 7, i as u32);
        }
        assert_eq!(h.len(), 10_000);
        for i in 0..10_000i64 {
            assert_eq!(h.get(i * 7), &[i as u32]);
        }
        assert!(h.get(1).is_empty());
        assert!(!h.contains(999_999));
    }

    #[test]
    fn duplicates_accumulate() {
        let mut h = HashIndex::new();
        h.insert(42, 1);
        h.insert(42, 2);
        h.insert(42, 3);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(42), &[1, 2, 3]);
    }

    #[test]
    fn negative_and_extreme_keys() {
        let mut h = HashIndex::new();
        for k in [-1i64, 0, 1, i64::MAX, i64::MIN + 1, -999_999_999] {
            h.insert(k, (k & 0xFF) as u32);
        }
        for k in [-1i64, 0, 1, i64::MAX, i64::MIN + 1, -999_999_999] {
            assert_eq!(h.get(k), &[(k & 0xFF) as u32], "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_key_rejected() {
        HashIndex::new().insert(i64::MIN, 0);
    }

    #[test]
    fn growth_preserves_duplicates() {
        let mut h = HashIndex::with_capacity(4);
        for i in 0..1000i64 {
            h.insert(i % 10, i as u32);
        }
        assert_eq!(h.len(), 10);
        for k in 0..10i64 {
            assert_eq!(h.get(k).len(), 100, "key {k}");
        }
    }

    #[test]
    fn differential_against_std_hashmap() {
        let mut h = HashIndex::new();
        let mut model: HashMap<i64, Vec<u32>> = HashMap::new();
        let mut x = 0x1234_5678_u64;
        for i in 0..20_000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 5000) as i64 - 2500;
            h.insert(key, i);
            model.entry(key).or_default().push(i);
        }
        assert_eq!(h.len(), model.len());
        for (k, rows) in &model {
            assert_eq!(h.get(*k), rows.as_slice(), "key {k}");
        }
    }
}
