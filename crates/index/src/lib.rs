//! # pdsm-index
//!
//! Secondary indexes for the §VI-B "Indexes" experiments (Fig. 10):
//!
//! * [`HashIndex`] — open-addressing hash table for identity selects
//!   (primary-key lookups, the paper's Q7),
//! * [`RBTree`] — a red–black tree supporting ordered lookups and range
//!   scans (the paper builds "one RB-Tree on VBAP(VBELN)", Q8).
//!
//! Both map an `i64` key to one or more row ids (`u32`). Strings index by
//! their dictionary code, integers by value; the mapping is done by the
//! catalog layer in `pdsm-core`. Indexes are append-maintained: every
//! benchmark workload in the paper (and here) is insert-only, matching
//! HyPer's append-oriented transaction model — see DESIGN.md.

pub mod hash;
pub mod rbtree;

pub use hash::HashIndex;
pub use rbtree::RBTree;

/// A secondary index over one column.
#[derive(Debug, Clone)]
pub enum Index {
    /// Hash index: O(1) point lookups, no range support.
    Hash(HashIndex),
    /// Red–black tree: ordered lookups and ranges.
    RBTree(RBTree),
}

impl Index {
    /// Insert a `(key, row)` pair.
    pub fn insert(&mut self, key: i64, row: u32) {
        match self {
            Index::Hash(h) => h.insert(key, row),
            Index::RBTree(t) => t.insert(key, row),
        }
    }

    /// Row ids with exactly this key.
    pub fn lookup(&self, key: i64) -> Vec<u32> {
        match self {
            Index::Hash(h) => h.get(key).to_vec(),
            Index::RBTree(t) => t.get(key).to_vec(),
        }
    }

    /// Row ids with keys in `[lo, hi]`; hash indexes cannot answer ranges
    /// and return `None` (the planner then falls back to a scan).
    pub fn lookup_range(&self, lo: i64, hi: i64) -> Option<Vec<u32>> {
        match self {
            Index::Hash(_) => None,
            Index::RBTree(t) => Some(
                t.range(lo, hi)
                    .flat_map(|(_, rows)| rows.to_vec())
                    .collect(),
            ),
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match self {
            Index::Hash(h) => h.len(),
            Index::RBTree(t) => t.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_dispatch() {
        for mut idx in [Index::Hash(HashIndex::new()), Index::RBTree(RBTree::new())] {
            idx.insert(10, 1);
            idx.insert(20, 2);
            idx.insert(10, 3);
            assert_eq!(idx.key_count(), 2);
            let mut rows = idx.lookup(10);
            rows.sort_unstable();
            assert_eq!(rows, vec![1, 3]);
            assert!(idx.lookup(99).is_empty());
        }
        let mut t = Index::RBTree(RBTree::new());
        t.insert(5, 50);
        t.insert(7, 70);
        t.insert(9, 90);
        assert_eq!(t.lookup_range(6, 9), Some(vec![70, 90]));
        assert_eq!(Index::Hash(HashIndex::new()).lookup_range(0, 1), None);
    }
}
