//! An arena-allocated red–black tree: `i64` key → row ids.
//!
//! Built from scratch (CLRS insertion algorithm) because the paper's Fig. 10
//! uses "one RB-Tree on VBAP(VBELN)" for ordered retrieval. Duplicate keys
//! share one node; nodes live in a flat arena and link by `u32` index, so
//! the tree is compact and copying-free.
//!
//! The workloads are append-only (see crate docs), so deletion is
//! intentionally not provided; the invariant checker used by the property
//! tests is exposed for downstream test suites.

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    key: i64,
    rows: Vec<u32>,
    color: Color,
    left: u32,
    right: u32,
    parent: u32,
}

/// Red–black tree multi-map.
#[derive(Debug, Clone, Default)]
pub struct RBTree {
    nodes: Vec<Node>,
    root: u32,
}

impl RBTree {
    /// Empty tree.
    pub fn new() -> Self {
        RBTree {
            nodes: Vec::new(),
            root: NIL,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Row ids stored under `key` (empty slice if absent).
    pub fn get(&self, key: i64) -> &[u32] {
        let mut x = self.root;
        while x != NIL {
            let n = &self.nodes[x as usize];
            x = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
                std::cmp::Ordering::Equal => return &n.rows,
            };
        }
        &[]
    }

    /// Insert `(key, row)`; duplicate keys accumulate rows in one node.
    pub fn insert(&mut self, key: i64, row: u32) {
        // BST descent.
        let mut parent = NIL;
        let mut x = self.root;
        while x != NIL {
            parent = x;
            let n = &mut self.nodes[x as usize];
            x = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
                std::cmp::Ordering::Equal => {
                    n.rows.push(row);
                    return;
                }
            };
        }
        let z = self.nodes.len() as u32;
        self.nodes.push(Node {
            key,
            rows: vec![row],
            color: Color::Red,
            left: NIL,
            right: NIL,
            parent,
        });
        if parent == NIL {
            self.root = z;
        } else if key < self.nodes[parent as usize].key {
            self.nodes[parent as usize].left = z;
        } else {
            self.nodes[parent as usize].right = z;
        }
        self.insert_fixup(z);
    }

    /// In-order iterator over `(key, rows)` with `lo <= key <= hi`.
    pub fn range(&self, lo: i64, hi: i64) -> RangeIter<'_> {
        // Find the first node >= lo by remembering the last left-turn.
        let mut stack = Vec::new();
        let mut x = self.root;
        while x != NIL {
            let n = &self.nodes[x as usize];
            if n.key >= lo {
                stack.push(x);
                x = n.left;
            } else {
                x = n.right;
            }
        }
        RangeIter {
            tree: self,
            stack,
            hi,
        }
    }

    /// In-order iterator over all entries.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(i64::MIN, i64::MAX)
    }

    /// Smallest key, if any.
    pub fn min_key(&self) -> Option<i64> {
        let mut x = self.root;
        let mut last = None;
        while x != NIL {
            last = Some(self.nodes[x as usize].key);
            x = self.nodes[x as usize].left;
        }
        last
    }

    /// Largest key, if any.
    pub fn max_key(&self) -> Option<i64> {
        let mut x = self.root;
        let mut last = None;
        while x != NIL {
            last = Some(self.nodes[x as usize].key);
            x = self.nodes[x as usize].right;
        }
        last
    }

    fn rotate_left(&mut self, x: u32) {
        let y = self.nodes[x as usize].right;
        debug_assert_ne!(y, NIL);
        let y_left = self.nodes[y as usize].left;
        self.nodes[x as usize].right = y_left;
        if y_left != NIL {
            self.nodes[y_left as usize].parent = x;
        }
        let xp = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp as usize].left == x {
            self.nodes[xp as usize].left = y;
        } else {
            self.nodes[xp as usize].right = y;
        }
        self.nodes[y as usize].left = x;
        self.nodes[x as usize].parent = y;
    }

    fn rotate_right(&mut self, x: u32) {
        let y = self.nodes[x as usize].left;
        debug_assert_ne!(y, NIL);
        let y_right = self.nodes[y as usize].right;
        self.nodes[x as usize].left = y_right;
        if y_right != NIL {
            self.nodes[y_right as usize].parent = x;
        }
        let xp = self.nodes[x as usize].parent;
        self.nodes[y as usize].parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.nodes[xp as usize].right == x {
            self.nodes[xp as usize].right = y;
        } else {
            self.nodes[xp as usize].left = y;
        }
        self.nodes[y as usize].right = x;
        self.nodes[x as usize].parent = y;
    }

    fn color(&self, x: u32) -> Color {
        if x == NIL {
            Color::Black
        } else {
            self.nodes[x as usize].color
        }
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.nodes[z as usize].parent) == Color::Red {
            let zp = self.nodes[z as usize].parent;
            let zpp = self.nodes[zp as usize].parent; // grandparent exists: parent is red, root is black
            if zp == self.nodes[zpp as usize].left {
                let uncle = self.nodes[zpp as usize].right;
                if self.color(uncle) == Color::Red {
                    self.nodes[zp as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[zpp as usize].color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.nodes[zp as usize].right {
                        z = zp;
                        self.rotate_left(z);
                    }
                    let zp = self.nodes[z as usize].parent;
                    let zpp = self.nodes[zp as usize].parent;
                    self.nodes[zp as usize].color = Color::Black;
                    self.nodes[zpp as usize].color = Color::Red;
                    self.rotate_right(zpp);
                }
            } else {
                let uncle = self.nodes[zpp as usize].left;
                if self.color(uncle) == Color::Red {
                    self.nodes[zp as usize].color = Color::Black;
                    self.nodes[uncle as usize].color = Color::Black;
                    self.nodes[zpp as usize].color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.nodes[zp as usize].left {
                        z = zp;
                        self.rotate_right(z);
                    }
                    let zp = self.nodes[z as usize].parent;
                    let zpp = self.nodes[zp as usize].parent;
                    self.nodes[zp as usize].color = Color::Black;
                    self.nodes[zpp as usize].color = Color::Red;
                    self.rotate_left(zpp);
                }
            }
        }
        let root = self.root;
        self.nodes[root as usize].color = Color::Black;
    }

    /// Verify all red–black invariants; returns the tree's black height.
    /// Used by tests (including downstream property tests); panics with a
    /// description on violation.
    pub fn check_invariants(&self) -> usize {
        if self.root == NIL {
            return 0;
        }
        assert_eq!(self.color(self.root), Color::Black, "root must be black");
        self.check_node(self.root, i64::MIN, i64::MAX)
    }

    fn check_node(&self, x: u32, lo: i64, hi: i64) -> usize {
        if x == NIL {
            return 1; // NIL leaves are black
        }
        let n = &self.nodes[x as usize];
        assert!(
            n.key >= lo && n.key <= hi,
            "BST order violated at {}",
            n.key
        );
        if n.color == Color::Red {
            assert_eq!(self.color(n.left), Color::Black, "red-red at {}", n.key);
            assert_eq!(self.color(n.right), Color::Black, "red-red at {}", n.key);
        }
        if n.left != NIL {
            assert_eq!(self.nodes[n.left as usize].parent, x, "parent link");
        }
        if n.right != NIL {
            assert_eq!(self.nodes[n.right as usize].parent, x, "parent link");
        }
        let bl = self.check_node(n.left, lo, n.key.saturating_sub(1));
        let br = self.check_node(n.right, n.key.saturating_add(1), hi);
        assert_eq!(bl, br, "black height mismatch at {}", n.key);
        bl + usize::from(n.color == Color::Black)
    }
}

/// In-order iterator produced by [`RBTree::range`].
pub struct RangeIter<'a> {
    tree: &'a RBTree,
    stack: Vec<u32>,
    hi: i64,
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (i64, &'a [u32]);

    fn next(&mut self) -> Option<Self::Item> {
        let x = self.stack.pop()?;
        let n = &self.tree.nodes[x as usize];
        if n.key > self.hi {
            self.stack.clear();
            return None;
        }
        // push the successor path: leftmost spine of the right subtree
        let mut c = n.right;
        while c != NIL {
            self.stack.push(c);
            c = self.tree.nodes[c as usize].left;
        }
        Some((n.key, &n.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_insert_stays_balanced() {
        let mut t = RBTree::new();
        for i in 0..4096i64 {
            t.insert(i, i as u32);
        }
        let bh = t.check_invariants();
        // black height of a 4096-node RB tree is at most log2(n+1) ~ 12+1
        assert!(bh <= 13, "black height {bh}");
        assert_eq!(t.len(), 4096);
        assert_eq!(t.min_key(), Some(0));
        assert_eq!(t.max_key(), Some(4095));
    }

    #[test]
    fn reverse_and_zigzag_inserts() {
        let mut t = RBTree::new();
        for i in (0..2048i64).rev() {
            t.insert(i, i as u32);
        }
        t.check_invariants();
        let mut t = RBTree::new();
        for i in 0..2048i64 {
            let k = if i % 2 == 0 { i } else { 4096 - i };
            t.insert(k, i as u32);
        }
        t.check_invariants();
    }

    #[test]
    fn get_and_duplicates() {
        let mut t = RBTree::new();
        t.insert(5, 1);
        t.insert(3, 2);
        t.insert(5, 3);
        t.insert(9, 4);
        assert_eq!(t.get(5), &[1, 3]);
        assert_eq!(t.get(3), &[2]);
        assert!(t.get(4).is_empty());
        assert_eq!(t.len(), 3);
        t.check_invariants();
    }

    #[test]
    fn range_scan_in_order() {
        let mut t = RBTree::new();
        for i in [50i64, 20, 80, 10, 30, 70, 90, 60, 40] {
            t.insert(i, i as u32);
        }
        let keys: Vec<i64> = t.range(25, 75).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![30, 40, 50, 60, 70]);
        let all: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(all, vec![10, 20, 30, 40, 50, 60, 70, 80, 90]);
        // empty and out-of-bounds ranges
        assert_eq!(t.range(91, 200).count(), 0);
        assert_eq!(t.range(75, 25).count(), 0);
    }

    #[test]
    fn negative_keys_and_extremes() {
        let mut t = RBTree::new();
        for k in [-100i64, 0, 100, i64::MIN + 1, i64::MAX - 1] {
            t.insert(k, 0);
        }
        t.check_invariants();
        let keys: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![i64::MIN + 1, -100, 0, 100, i64::MAX - 1]);
    }

    #[test]
    fn iter_matches_btreemap_model() {
        use std::collections::BTreeMap;
        let mut t = RBTree::new();
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        let mut x = 88u64;
        for i in 0..5000u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 1000) as i64 - 500;
            t.insert(k, i);
            model.entry(k).or_default().push(i);
        }
        t.check_invariants();
        assert_eq!(t.len(), model.len());
        let ours: Vec<(i64, Vec<u32>)> = t.iter().map(|(k, r)| (k, r.to_vec())).collect();
        let theirs: Vec<(i64, Vec<u32>)> = model.into_iter().collect();
        assert_eq!(ours, theirs);
    }
}
