//! Per-level cache-miss estimation for each atom (Eq. 1–4 and Eq. 7).
//!
//! Misses are split into **sequential** (`M^s_i` — anticipated by the
//! adjacent-cache-line prefetcher, §IV-C1) and **random** (`M^r_i` — demand
//! misses that stall). The distinction feeds the prefetch-aware cost
//! function in [`crate::cost`].

use crate::atoms::Atom;
use crate::hierarchy::Level;

/// Miss counts induced by one pattern at one memory level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelMisses {
    /// Sequential (prefetchable) misses, `M^s_i`.
    pub sequential: f64,
    /// Random (demand) misses, `M^r_i`.
    pub random: f64,
}

impl LevelMisses {
    /// `M^s_i + M^r_i`.
    pub fn total(&self) -> f64 {
        self.sequential + self.random
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: LevelMisses) {
        self.sequential += other.sequential;
        self.random += other.random;
    }

    /// Both components scaled by `f` (zone-pruned scans touch a linear
    /// fraction of the blocks, hence of the misses).
    pub fn scaled(&self, f: f64) -> LevelMisses {
        LevelMisses {
            sequential: self.sequential * f,
            random: self.random * f,
        }
    }
}

/// Cardenas' formula (Eq. 7): expected number of distinct records touched
/// when drawing `r` times uniformly from `n` records.
///
/// `I(r, n) = n · (1 − (1 − 1/n)^r)`; computed in log-space so it stays
/// accurate for the very large `n` that made the original model's binomial
/// coefficients impractical (§IV-C3).
pub fn cardenas(r: f64, n: f64) -> f64 {
    if n <= 0.0 || r <= 0.0 {
        return 0.0;
    }
    if n == 1.0 {
        return 1.0;
    }
    // (1 - 1/n)^r = exp(r * ln(1 - 1/n)); ln_1p/exp_m1 keep precision when n
    // is large. I = n(1 - q) = -n * expm1(r * ln(1 - 1/n)).
    let ln = (-1.0 / n).ln_1p();
    (-n * (r * ln).exp_m1()).min(n).min(r)
}

/// Number of cache lines of size `block` covered by a region of `n` items of
/// width `w` (`R.n·R.w / B_i`, kept fractional as the paper's Eq. 4 does).
fn region_lines(n: u64, w: u64, block: u64) -> f64 {
    (n as f64 * w as f64 / block as f64).max(0.0)
}

/// Lines an individual item of width `w` touches when `u` of its bytes are
/// read (`u ≤ w`). Accounts for items wider than a line.
fn lines_per_item(u: u64, block: u64) -> f64 {
    (u.max(1) as f64 / block as f64).ceil().max(1.0)
}

/// Estimate the misses `atom` induces at `level`, given `capacity_share` —
/// the fraction of the level's capacity available to this pattern (reduced
/// when patterns execute concurrently, §IV-B).
pub fn atom_misses(atom: &Atom, level: &Level, capacity_share: f64) -> LevelMisses {
    let b = level.block;
    let effective_capacity = level.capacity as f64 * capacity_share.clamp(0.0, 1.0);
    match *atom {
        Atom::STrav { n, w, u } => {
            // Constant stride w: every touched line is anticipated by the
            // adjacent-line/stride prefetcher => all sequential.
            let lines = if w <= b {
                region_lines(n, w, b)
            } else {
                n as f64 * lines_per_item(u, b)
            };
            LevelMisses {
                sequential: lines,
                random: 0.0,
            }
        }
        Atom::RTrav { n, w, u } => {
            // Same footprint as s_trav but in random order: no prefetch.
            let lines = if w <= b {
                region_lines(n, w, b)
            } else {
                n as f64 * lines_per_item(u, b)
            };
            LevelMisses {
                sequential: 0.0,
                random: lines,
            }
        }
        Atom::RRAcc { n, w, r } => {
            // Unique lines touched, via Cardenas over lines (items narrower
            // than a line share lines; wider items span several).
            let region = (n * w) as f64;
            let (unique_lines, per_access_lines) = if w <= b {
                let total_lines = region_lines(n, w, b).max(1.0);
                (cardenas(r as f64, total_lines), 1.0)
            } else {
                let lpi = lines_per_item(w, b);
                (cardenas(r as f64, n as f64) * lpi, lpi)
            };
            // First touch of each line always misses. Re-accesses hit only
            // if the region's cached fraction survived; with a region larger
            // than the (shared) capacity, a re-access misses with
            // probability (1 - C/region).
            let reaccesses = (r as f64 * per_access_lines - unique_lines).max(0.0);
            let evicted_frac = if region > effective_capacity && region > 0.0 {
                1.0 - effective_capacity / region
            } else {
                0.0
            };
            LevelMisses {
                sequential: 0.0,
                random: unique_lines + reaccesses * evicted_frac,
            }
        }
        Atom::STravCr { n, w, u, s } => {
            if w <= b {
                // Eq. 1: probability a line is accessed at all. The exponent
                // is the number of items per line (the paper writes B_i with
                // items implied).
                let items_per_line = (b / w.max(1)).max(1) as f64;
                let p = 1.0 - (1.0 - s).powf(items_per_line);
                // Eq. 2: accessed AND predecessor accessed => prefetched.
                let ps = p * p;
                // Eq. 3: the rest of the accessed lines are demand misses.
                let pr = p - ps;
                // Eq. 4: scale by the region's line count.
                let lines = region_lines(n, w, b);
                LevelMisses {
                    sequential: ps * lines,
                    random: pr * lines,
                }
            } else {
                // Item wider than a line: a selected item reads
                // ceil(u/B) adjacent lines. The first line of an item is
                // prefetched only if the previous item was also selected
                // (probability s); the item's remaining lines are adjacent
                // and always prefetched.
                let lpi = lines_per_item(u, b);
                let selected = s * n as f64;
                let first_seq = selected * s;
                let first_rand = selected * (1.0 - s);
                let rest = selected * (lpi - 1.0);
                LevelMisses {
                    sequential: first_seq + rest,
                    random: first_rand,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    fn l3() -> Level {
        Hierarchy::nehalem().llc().clone()
    }

    #[test]
    fn cardenas_limits() {
        assert_eq!(cardenas(0.0, 100.0), 0.0);
        assert_eq!(cardenas(10.0, 0.0), 0.0);
        // one record: always exactly 1 distinct
        assert!((cardenas(50.0, 1.0) - 1.0).abs() < 1e-9);
        // r=1: exactly one distinct record
        assert!((cardenas(1.0, 1000.0) - 1.0).abs() < 1e-9);
        // r >> n: approaches n
        assert!((cardenas(1e9, 100.0) - 100.0).abs() < 1e-6);
        // monotone in r
        assert!(cardenas(10.0, 100.0) < cardenas(20.0, 100.0));
        // never exceeds n or r
        for &(r, n) in &[(5.0, 100.0), (100.0, 5.0), (1e6, 1e6)] {
            let i = cardenas(r, n);
            assert!(i <= n + 1e-9 && i <= r + 1e-9, "I({r},{n})={i}");
        }
    }

    #[test]
    fn cardenas_large_n_stable() {
        // The binomial formulation breaks down here; ours must not.
        let i = cardenas(262_144.0, 26_214_400.0);
        assert!(i > 260_000.0 && i < 262_144.0, "I={i}");
    }

    #[test]
    fn s_trav_all_sequential() {
        let m = atom_misses(&Atom::s_trav(1_000_000, 4), &l3(), 1.0);
        assert_eq!(m.random, 0.0);
        // 4 MB / 64 B = 65536 lines
        assert!((m.sequential - 62_500.0).abs() < 1.0);
    }

    #[test]
    fn r_trav_all_random() {
        let m = atom_misses(&Atom::r_trav(1_000_000, 4), &l3(), 1.0);
        assert_eq!(m.sequential, 0.0);
        assert!((m.random - 62_500.0).abs() < 1.0);
    }

    #[test]
    fn s_trav_cr_matches_equations() {
        // w=8, B=64 -> 8 items per line; s = 0.1
        let s = 0.1f64;
        let n = 1_000_000u64;
        let m = atom_misses(&Atom::s_trav_cr(n, 8, 8, s), &l3(), 1.0);
        let p = 1.0 - (1.0 - s).powi(8);
        let lines = n as f64 * 8.0 / 64.0;
        assert!((m.sequential - p * p * lines).abs() < 1e-6);
        assert!((m.random - (p - p * p) * lines).abs() < 1e-6);
    }

    #[test]
    fn s_trav_cr_extremes_degenerate_correctly() {
        let n = 100_000u64;
        // s=1 behaves exactly like s_trav: all lines, all sequential.
        let cr = atom_misses(&Atom::s_trav_cr(n, 8, 8, 1.0), &l3(), 1.0);
        let st = atom_misses(&Atom::s_trav(n, 8), &l3(), 1.0);
        assert!((cr.sequential - st.sequential).abs() < 1e-9);
        assert!((cr.random - 0.0).abs() < 1e-9);
        // s=0 touches nothing.
        let z = atom_misses(&Atom::s_trav_cr(n, 8, 8, 0.0), &l3(), 1.0);
        assert_eq!(z.total(), 0.0);
    }

    #[test]
    fn s_trav_cr_random_peaks_at_low_selectivity() {
        // Fig. 6: random misses rise steeply for s < ~0.05 then decline.
        let n = 10_000_000u64;
        let at = |s: f64| atom_misses(&Atom::s_trav_cr(n, 8, 8, s), &l3(), 1.0).random;
        assert!(at(0.04) > at(0.005));
        assert!(at(0.04) > at(0.5));
        assert!(at(0.9) < at(0.3));
    }

    #[test]
    fn rr_acc_caching_depends_on_capacity_share() {
        // Region 16 MB > 8 MB L3: re-accesses partially miss.
        let a = Atom::rr_acc(2_000_000, 8, 10_000_000);
        let full = atom_misses(&a, &l3(), 1.0);
        let half = atom_misses(&a, &l3(), 0.5);
        assert!(half.random > full.random, "less capacity => more misses");
        // Tiny region: everything after first touch hits.
        let tiny = atom_misses(&Atom::rr_acc(8, 8, 1_000_000), &l3(), 1.0);
        assert!(tiny.random <= 2.0, "tiny region stays resident: {tiny:?}");
    }

    #[test]
    fn wide_items_span_lines() {
        // 256-byte items on 64-byte lines: 4 lines each.
        let m = atom_misses(&Atom::s_trav(1000, 256), &l3(), 1.0);
        assert!((m.sequential - 4000.0).abs() < 1e-9);
        // partial read of 64 bytes: 1 line each.
        let m = atom_misses(&Atom::s_trav_partial(1000, 256, 64), &l3(), 1.0);
        assert!((m.sequential - 1000.0).abs() < 1e-9);
    }
}
