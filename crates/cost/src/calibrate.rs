//! The "configuring experiment" (Fig. 8): measure cycles per access as a
//! function of the accessed region size, exposing each memory level's
//! latency as a staircase, then fit the model's latency parameters from it.
//!
//! The probe is a dependent pointer chase over a random cyclic permutation
//! (Sattolo's algorithm), which defeats both prefetching and out-of-order
//! overlap, so each step pays the full latency of whichever level the region
//! currently fits in — exactly the methodology of the paper's calibrator.

use crate::hierarchy::Hierarchy;

/// One measured point of the staircase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StairPoint {
    /// Size in bytes of the accessed memory region.
    pub region_bytes: usize,
    /// Observed cost of one dependent access, in CPU cycles.
    pub cycles_per_access: f64,
}

/// Read the CPU's timestamp counter, or a nanosecond clock scaled by
/// `NOMINAL_GHZ` on non-x86 targets (documented substitution: the *shape*
/// of the staircase is what the calibration consumes).
#[inline]
pub fn read_cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::{SystemTime, UNIX_EPOCH};
        const NOMINAL_GHZ: f64 = 2.67; // the paper's Xeon X5650
        let ns = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as f64;
        (ns * NOMINAL_GHZ) as u64
    }
}

/// Tiny deterministic xorshift generator — keeps this crate dependency-free.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Build a random single-cycle permutation (`next[i]` visits every slot
/// exactly once before returning to the start) over `n` slots.
fn sattolo_cycle(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = XorShift(seed | 1);
    let mut perm: Vec<usize> = (0..n).collect();
    // Sattolo: swap each position with a strictly earlier one => one cycle.
    for i in (1..n).rev() {
        let j = rng.below(i);
        perm.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for i in 0..n {
        next[perm[i]] = perm[(i + 1) % n];
    }
    next
}

/// Measure one staircase point: chase `accesses` dependent loads through a
/// region of `region_bytes` bytes.
pub fn measure_point(region_bytes: usize, accesses: usize, seed: u64) -> StairPoint {
    let slots = (region_bytes / 8).max(2);
    let chain = sattolo_cycle(slots, seed);
    // Warm-up pass: touch everything once so we measure steady state.
    let mut idx = 0usize;
    for _ in 0..slots {
        idx = chain[idx];
    }
    let start = read_cycles();
    for _ in 0..accesses {
        idx = chain[idx];
    }
    let end = read_cycles();
    // Keep `idx` observable so the chase cannot be optimized away.
    std::hint::black_box(idx);
    StairPoint {
        region_bytes,
        cycles_per_access: (end.wrapping_sub(start)) as f64 / accesses as f64,
    }
}

/// Run the full configuring experiment over logarithmically spaced region
/// sizes from `min_bytes` to `max_bytes` (inclusive, powers of two).
pub fn staircase(min_bytes: usize, max_bytes: usize, accesses: usize) -> Vec<StairPoint> {
    let mut out = Vec::new();
    let mut size = min_bytes.next_power_of_two();
    while size <= max_bytes {
        out.push(measure_point(size, accesses, 0x5EED + size as u64));
        // half-steps give the staircase enough resolution to fit knees
        let half = size + size / 2;
        if half <= max_bytes {
            out.push(measure_point(half, accesses, 0x5EED + half as u64));
        }
        size *= 2;
    }
    out
}

/// Fit per-level access latencies from a measured staircase: for every
/// non-TLB level, average the plateau of points that fit comfortably inside
/// that level but not inside the previous one. Returns one latency per
/// hierarchy level (register level keeps its configured value; levels
/// without supporting points inherit the previous plateau).
pub fn fit_latencies(points: &[StairPoint], hw: &Hierarchy) -> Vec<f64> {
    let mut fitted: Vec<f64> = hw.levels().iter().map(|l| l.latency).collect();
    let mut prev_cap = 0u64;
    let mut prev_plateau: Option<f64> = None;
    for (i, level) in hw.levels().iter().enumerate() {
        if i == 0 || level.is_tlb {
            continue;
        }
        let cap = level.capacity;
        let plateau: Vec<f64> = points
            .iter()
            .filter(|p| {
                let s = p.region_bytes as u64;
                // comfortably inside this level, clear of the previous one
                s > prev_cap.saturating_mul(2) && s.saturating_mul(2) <= cap
            })
            .map(|p| p.cycles_per_access)
            .collect();
        if !plateau.is_empty() {
            let mean = plateau.iter().sum::<f64>() / plateau.len() as f64;
            // incremental latency: cost beyond the faster levels' plateau
            let inc = match prev_plateau {
                Some(prev) => (mean - prev).max(0.5),
                None => mean,
            };
            fitted[i] = inc;
            prev_plateau = Some(mean);
        }
        prev_cap = cap;
    }
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sattolo_is_a_single_cycle() {
        for n in [2usize, 3, 10, 257, 1024] {
            let next = sattolo_cycle(n, 42);
            let mut seen = vec![false; n];
            let mut idx = 0usize;
            for _ in 0..n {
                assert!(!seen[idx], "revisited {idx} early (n={n})");
                seen[idx] = true;
                idx = next[idx];
            }
            assert_eq!(idx, 0, "must close the cycle (n={n})");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn measurement_produces_positive_cycles() {
        let p = measure_point(1 << 12, 10_000, 7);
        assert!(p.cycles_per_access > 0.0);
        assert_eq!(p.region_bytes, 1 << 12);
    }

    #[test]
    fn staircase_grows_with_region_size() {
        // L1-resident chase must be cheaper than a region several times the
        // typical L2. Generous margins keep this robust on shared CI boxes.
        let small = measure_point(1 << 12, 200_000, 1).cycles_per_access;
        let large = measure_point(1 << 24, 200_000, 2).cycles_per_access;
        assert!(
            large > small,
            "16 MB chase ({large:.1} cyc) should cost more than 4 kB ({small:.1} cyc)"
        );
    }

    #[test]
    fn fit_latencies_recovers_synthetic_staircase() {
        let hw = Hierarchy::nehalem();
        // Synthesize an idealized staircase: plateaus at cumulative costs.
        let mut pts = Vec::new();
        for (size, cyc) in [
            (4 << 10, 2.0), // inside L1
            (8 << 10, 2.0),
            (96 << 10, 5.0), // inside L2
            (128 << 10, 5.0),
            (2 << 20, 13.0), // inside L3
            (4 << 20, 13.0),
            (64 << 20, 25.0), // memory
            (128 << 20, 25.0),
        ] {
            pts.push(StairPoint {
                region_bytes: size,
                cycles_per_access: cyc,
            });
        }
        let fitted = fit_latencies(&pts, &hw);
        // L1 plateau absolute, then increments.
        assert!((fitted[1] - 2.0).abs() < 1e-9, "L1 {fitted:?}");
        assert!((fitted[2] - 3.0).abs() < 1e-9, "L2 {fitted:?}");
        assert!((fitted[4] - 8.0).abs() < 1e-9, "L3 {fitted:?}");
        assert!((fitted[5] - 12.0).abs() < 1e-9, "Mem {fitted:?}");
        // TLB keeps configured latency.
        assert_eq!(fitted[3], hw.levels()[3].latency);
    }
}
