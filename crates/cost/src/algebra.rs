//! The access-pattern algebra: atoms combined by sequential execution `⊕`
//! and concurrent execution `⊙` (Table I(a)).
//!
//! Patterns form a tree. Misses are additive in both combinators; the
//! difference is cache-capacity pressure: children of a `⊙` node compete for
//! capacity, so each sees only a share of it when estimating re-access hits
//! (this matters for `rr_acc`, e.g. hash-table probes running concurrently
//! with a scan).

use crate::atoms::Atom;

/// A (possibly nested) access pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// A single atomic pattern.
    Atom(Atom),
    /// `P1 ⊕ P2 ⊕ …` — executed one after another.
    Seq(Vec<Pattern>),
    /// `P1 ⊙ P2 ⊙ …` — executed concurrently (interleaved in one loop).
    Conc(Vec<Pattern>),
}

impl Pattern {
    /// Wrap an atom.
    pub fn atom(a: Atom) -> Pattern {
        Pattern::Atom(a)
    }

    /// Sequential combination; flattens nested `Seq`s and drops empties.
    pub fn seq(parts: Vec<Pattern>) -> Pattern {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Pattern::Seq(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Pattern::Seq(flat)
        }
    }

    /// Concurrent combination; flattens nested `Conc`s and drops empties.
    pub fn conc(parts: Vec<Pattern>) -> Pattern {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Pattern::Conc(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            Pattern::Conc(flat)
        }
    }

    /// The empty pattern (zero cost).
    pub fn empty() -> Pattern {
        Pattern::Seq(Vec::new())
    }

    /// True iff the pattern contains no atoms.
    pub fn is_empty(&self) -> bool {
        match self {
            Pattern::Atom(_) => false,
            Pattern::Seq(ps) | Pattern::Conc(ps) => ps.iter().all(|p| p.is_empty()),
        }
    }

    /// All atoms in left-to-right order.
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Pattern::Atom(a) => out.push(a),
            Pattern::Seq(ps) | Pattern::Conc(ps) => {
                for p in ps {
                    p.collect_atoms(out);
                }
            }
        }
    }

    /// Sum of all atoms' region footprints in bytes.
    pub fn footprint(&self) -> u64 {
        self.atoms().iter().map(|a| a.region_bytes()).sum()
    }
}

impl std::fmt::Display for Pattern {
    /// Paper notation, e.g. `s_trav(100,4) (.) rr_acc(1,16,50)` with `(.)`
    /// for ⊙ and `(+)` for ⊕ when unicode is unavailable — we emit the
    /// unicode glyphs directly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn write_list(
            f: &mut std::fmt::Formatter<'_>,
            ps: &[Pattern],
            sep: &str,
        ) -> std::fmt::Result {
            if ps.is_empty() {
                return write!(f, "ε");
            }
            for (i, p) in ps.iter().enumerate() {
                if i > 0 {
                    write!(f, " {sep} ")?;
                }
                match p {
                    Pattern::Atom(a) => write!(f, "{a}")?,
                    nested => write!(f, "({nested})")?,
                }
            }
            Ok(())
        }
        match self {
            Pattern::Atom(a) => write!(f, "{a}"),
            Pattern::Seq(ps) => write_list(f, ps, "⊕"),
            Pattern::Conc(ps) => write_list(f, ps, "⊙"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattening() {
        let p = Pattern::seq(vec![
            Pattern::atom(Atom::s_trav(1, 4)),
            Pattern::seq(vec![
                Pattern::atom(Atom::s_trav(2, 4)),
                Pattern::atom(Atom::s_trav(3, 4)),
            ]),
        ]);
        match &p {
            Pattern::Seq(ps) => assert_eq!(ps.len(), 3),
            other => panic!("expected flattened Seq, got {other:?}"),
        }
        // single-element combinations collapse
        let single = Pattern::conc(vec![Pattern::atom(Atom::s_trav(1, 4))]);
        assert!(matches!(single, Pattern::Atom(_)));
    }

    #[test]
    fn atoms_and_footprint() {
        let p = Pattern::conc(vec![
            Pattern::atom(Atom::s_trav(100, 4)),
            Pattern::atom(Atom::rr_acc(10, 8, 50)),
        ]);
        assert_eq!(p.atoms().len(), 2);
        assert_eq!(p.footprint(), 400 + 80);
        assert!(!p.is_empty());
        assert!(Pattern::empty().is_empty());
    }

    #[test]
    fn display_paper_notation() {
        let p = Pattern::conc(vec![
            Pattern::atom(Atom::s_trav(26_214_400, 4)),
            Pattern::atom(Atom::rr_acc(1, 16, 262_144)),
        ]);
        assert_eq!(p.to_string(), "s_trav(26214400,4) ⊙ rr_acc(1,16,262144)");
        let nested = Pattern::seq(vec![p.clone(), Pattern::atom(Atom::r_trav(5, 8))]);
        assert!(nested.to_string().contains("⊕"));
        assert!(nested.to_string().starts_with("("));
    }
}
