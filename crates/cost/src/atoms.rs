//! Atomic memory access patterns (Table I(a) of the paper, plus the new
//! `s_trav_cr` of §IV-C1).
//!
//! Parameters follow the paper's notation:
//! * `n` — `R.n`, the number of tuples / values / tuple fragments,
//! * `w` — `R.w`, the width in bytes of one data item (the partition stride),
//! * `u` — bytes of each item actually touched (`u ≤ w`),
//! * `r` — repetition count for repetitive random accesses,
//! * `s` — selectivity of the conditional read.

/// An atomic access pattern — one "instruction" of the programmable cost
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum Atom {
    /// `s_trav(R.n, R.w)` — sequential traversal with unconditional access to
    /// every item; `u` bytes of each `w`-byte item are read.
    STrav { n: u64, w: u64, u: u64 },
    /// `r_trav(R.n, R.w)` — every item accessed exactly once, random order.
    RTrav { n: u64, w: u64, u: u64 },
    /// `rr_acc(R.n, R.w, r)` — `r` accesses, each to one of `n` items chosen
    /// uniformly at random (hash-table probes, output-buffer updates).
    RRAcc { n: u64, w: u64, r: u64 },
    /// `s_trav_cr(R.n, R.w, s)` — the paper's new atom: the region is
    /// traversed front-to-back; at every step the iterator advances `w`
    /// bytes and reads `u` bytes with probability `s` (Fig. 5).
    STravCr { n: u64, w: u64, u: u64, s: f64 },
}

impl Atom {
    /// Sequential traversal reading items fully.
    pub fn s_trav(n: u64, w: u64) -> Atom {
        Atom::STrav { n, w, u: w }
    }

    /// Sequential traversal reading only `u` of every `w` bytes.
    pub fn s_trav_partial(n: u64, w: u64, u: u64) -> Atom {
        debug_assert!(u <= w);
        Atom::STrav { n, w, u }
    }

    /// Random-order full traversal.
    pub fn r_trav(n: u64, w: u64) -> Atom {
        Atom::RTrav { n, w, u: w }
    }

    /// Repetitive random access.
    pub fn rr_acc(n: u64, w: u64, r: u64) -> Atom {
        Atom::RRAcc { n, w, r }
    }

    /// Sequential traversal with conditional reads at selectivity `s`.
    pub fn s_trav_cr(n: u64, w: u64, u: u64, s: f64) -> Atom {
        debug_assert!((0.0..=1.0).contains(&s), "selectivity {s} out of range");
        debug_assert!(u <= w);
        Atom::STravCr { n, w, u, s }
    }

    /// Total size in bytes of the region the pattern touches (`R.n × R.w`) —
    /// its cache footprint.
    pub fn region_bytes(&self) -> u64 {
        match *self {
            Atom::STrav { n, w, .. }
            | Atom::RTrav { n, w, .. }
            | Atom::RRAcc { n, w, .. }
            | Atom::STravCr { n, w, .. } => n * w,
        }
    }

    /// Expected number of data words (8-byte units) moved through the
    /// registers — the model's `M_0`.
    pub fn register_words(&self) -> f64 {
        let words = |bytes: u64| (bytes.max(1)).div_ceil(8) as f64;
        match *self {
            Atom::STrav { n, u, .. } | Atom::RTrav { n, u, .. } => n as f64 * words(u),
            Atom::RRAcc { w, r, .. } => r as f64 * words(w),
            // one condition word per step plus the conditional payload
            Atom::STravCr { n, u, s, .. } => n as f64 + s * n as f64 * words(u),
        }
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Atom::STrav { n, w, u } if u == w => write!(f, "s_trav({n},{w})"),
            Atom::STrav { n, w, u } => write!(f, "s_trav({n},{w},u={u})"),
            Atom::RTrav { n, w, .. } => write!(f, "r_trav({n},{w})"),
            Atom::RRAcc { n, w, r } => write!(f, "rr_acc({n},{w},{r})"),
            Atom::STravCr { n, w, u, s } if u == w => write!(f, "s_trav_cr({n},{w},s={s})"),
            Atom::STravCr { n, w, u, s } => write!(f, "s_trav_cr({n},{w},u={u},s={s})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(Atom::s_trav(100, 4).to_string(), "s_trav(100,4)");
        assert_eq!(Atom::rr_acc(1, 16, 99).to_string(), "rr_acc(1,16,99)");
        assert_eq!(
            Atom::s_trav_cr(10, 16, 16, 0.5).to_string(),
            "s_trav_cr(10,16,s=0.5)"
        );
        assert_eq!(
            Atom::s_trav_partial(10, 16, 4).to_string(),
            "s_trav(10,16,u=4)"
        );
    }

    #[test]
    fn region_and_register_accounting() {
        assert_eq!(Atom::s_trav(1000, 4).region_bytes(), 4000);
        // 4-byte items still move one word each
        assert_eq!(Atom::s_trav(1000, 4).register_words(), 1000.0);
        // 16-byte items are two words
        assert_eq!(Atom::s_trav(1000, 16).register_words(), 2000.0);
        // rr_acc counts r accesses, not n
        assert_eq!(Atom::rr_acc(10, 8, 500).register_words(), 500.0);
        // s_trav_cr: n condition words + s*n payloads
        let a = Atom::s_trav_cr(1000, 16, 16, 0.25);
        assert_eq!(a.register_words(), 1000.0 + 0.25 * 1000.0 * 2.0);
    }
}
