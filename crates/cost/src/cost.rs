//! The prefetching-aware cost function (Eq. 5–6) and its constant-weight
//! ablation (the original Generic Cost Model's formulation).

use crate::algebra::Pattern;
use crate::hierarchy::Hierarchy;
use crate::misses::{atom_misses, LevelMisses};

/// Miss counts and cycle cost attributed to one memory level.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Level name ("Reg", "L1", …).
    pub level: &'static str,
    /// Misses induced at this level (`M_0` register words for level 0).
    pub misses: LevelMisses,
    /// Cycles charged to this level after prefetch hiding.
    pub cycles: f64,
}

/// The result of pricing a pattern against a hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Per-level breakdown, fastest level first.
    pub levels: Vec<CostBreakdown>,
    /// Cycles hidden at the LLC by prefetching (Eq. 5's subtraction).
    pub hidden_cycles: f64,
    /// Total estimated cycles (`T_Mem`, Eq. 6).
    pub total_cycles: f64,
}

impl Estimate {
    /// Misses at the LLC (sequential + random) — what Fig. 6 plots.
    pub fn llc_misses(&self, hw: &Hierarchy) -> LevelMisses {
        self.levels[hw.llc_index()].misses
    }
}

/// Zone-map pruning term: the fraction of a scan that survives partition
/// (zone-block) pruning. Blocks are fixed-size row ranges, so both memory
/// traffic and per-tuple CPU work of a pruned scan scale linearly with the
/// surviving fraction. `total == 0` (empty table / no zone map consulted)
/// means nothing was pruned: fraction 1.
pub fn survived_fraction(total_blocks: usize, pruned_blocks: usize) -> f64 {
    if total_blocks == 0 {
        1.0
    } else {
        (total_blocks.saturating_sub(pruned_blocks)) as f64 / total_blocks as f64
    }
}

/// Cycles to copy a materialized result through a cache: one sequential
/// write of `bytes` plus one sequential re-read on the first reuse — the
/// "copy-out" side of the cache-vs-recompute admission test (Dursun et
/// al.'s reuse criterion, priced with this model's own sequential-traversal
/// atom). A result is worth caching only when re-executing its plan costs
/// more than this.
pub fn copy_out_cycles(bytes: u64, hw: &Hierarchy) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    // Price as 8-byte word traffic; round the byte count up to whole words.
    let words = bytes.div_ceil(8);
    let p = Pattern::seq(vec![
        Pattern::atom(crate::Atom::s_trav(words, 8)),
        Pattern::atom(crate::Atom::s_trav(words, 8)),
    ]);
    estimate(&p, hw).total_cycles
}

/// Scale an [`Estimate`] by the surviving fraction of a pruned scan: every
/// level's misses and cycles shrink linearly (the skipped blocks are never
/// touched, so they induce no misses at any level).
pub fn scale_estimate(est: &Estimate, fraction: f64) -> Estimate {
    let f = fraction.clamp(0.0, 1.0);
    Estimate {
        levels: est
            .levels
            .iter()
            .map(|l| CostBreakdown {
                level: l.level,
                misses: l.misses.scaled(f),
                cycles: l.cycles * f,
            })
            .collect(),
        hidden_cycles: est.hidden_cycles * f,
        total_cycles: est.total_cycles * f,
    }
}

/// Accumulate per-level misses over the pattern tree. Children of a `⊙`
/// node split the available cache capacity evenly (the Generic Cost Model's
/// treatment of concurrent patterns competing for cache).
fn collect(pattern: &Pattern, hw: &Hierarchy, share: f64, acc: &mut [LevelMisses]) {
    match pattern {
        Pattern::Atom(a) => {
            acc[0].sequential += a.register_words();
            // Innermost level 0 is the register file (handled above); the
            // outermost level is the data's home and never misses.
            for (i, level) in hw.levels().iter().enumerate() {
                if i == 0 || i == hw.levels().len() - 1 {
                    continue;
                }
                acc[i].add(atom_misses(a, level, share));
            }
        }
        Pattern::Seq(ps) => {
            for p in ps {
                collect(p, hw, share, acc);
            }
        }
        Pattern::Conc(ps) => {
            let k = ps.iter().filter(|p| !p.is_empty()).count().max(1);
            for p in ps {
                collect(p, hw, share / k as f64, acc);
            }
        }
    }
}

/// Price `pattern` with the paper's prefetch-aware cost function.
///
/// Eq. 5: sequential LLC misses are free up to the work performed at faster
/// levels (`T^s = max(0, M^s·l_mem − Σ_faster M_i·l_{i+1})`); Eq. 6 sums the
/// weighted misses of all other levels plus the demand (random) LLC misses.
pub fn estimate(pattern: &Pattern, hw: &Hierarchy) -> Estimate {
    build_estimate(pattern, hw, true)
}

/// Ablation: the original model's constant-weight summation (no prefetch
/// hiding — every sequential LLC miss pays the full memory latency).
pub fn estimate_flat(pattern: &Pattern, hw: &Hierarchy) -> Estimate {
    build_estimate(pattern, hw, false)
}

fn build_estimate(pattern: &Pattern, hw: &Hierarchy, prefetch_aware: bool) -> Estimate {
    let n = hw.levels().len();
    let mut acc = vec![LevelMisses::default(); n];
    collect(pattern, hw, 1.0, &mut acc);

    let llc = hw.llc_index();
    // Work done at levels faster than the LLC (registers included, TLBs
    // excluded) — the budget that hides prefetched LLC misses.
    let faster_sum: f64 = (0..llc)
        .filter(|&i| !hw.levels()[i].is_tlb)
        .map(|i| acc[i].total() * hw.miss_latency(i))
        .sum();

    let mut levels = Vec::with_capacity(n);
    let mut total = 0.0;
    let mut hidden = 0.0;
    for (i, acc_i) in acc.iter().enumerate().take(n) {
        let lat = hw.miss_latency(i);
        let cycles = if i == llc {
            let seq_raw = acc_i.sequential * lat;
            let seq = if prefetch_aware {
                let t = (seq_raw - faster_sum).max(0.0);
                hidden = seq_raw - t;
                t
            } else {
                seq_raw
            };
            seq + acc_i.random * lat
        } else {
            acc_i.total() * lat
        };
        total += cycles;
        levels.push(CostBreakdown {
            level: hw.levels()[i].name,
            misses: *acc_i,
            cycles,
        });
    }
    Estimate {
        levels,
        hidden_cycles: hidden,
        total_cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Atom;

    fn hw() -> Hierarchy {
        Hierarchy::nehalem()
    }

    #[test]
    fn empty_pattern_is_free() {
        let e = estimate(&Pattern::empty(), &hw());
        assert_eq!(e.total_cycles, 0.0);
    }

    #[test]
    fn sequential_scan_is_partly_hidden() {
        let p = Pattern::atom(Atom::s_trav(10_000_000, 4));
        let aware = estimate(&p, &hw());
        let flat = estimate_flat(&p, &hw());
        assert!(aware.total_cycles > 0.0);
        assert!(
            aware.total_cycles < flat.total_cycles,
            "prefetch hiding must reduce scan cost: {} vs {}",
            aware.total_cycles,
            flat.total_cycles
        );
        assert!(aware.hidden_cycles > 0.0);
    }

    #[test]
    fn random_traversal_costs_more_than_sequential() {
        let seq = estimate(&Pattern::atom(Atom::s_trav(1_000_000, 8)), &hw());
        let rnd = estimate(&Pattern::atom(Atom::r_trav(1_000_000, 8)), &hw());
        assert!(rnd.total_cycles > seq.total_cycles);
    }

    #[test]
    fn cost_monotone_in_size() {
        let c = |n| estimate(&Pattern::atom(Atom::s_trav(n, 8)), &hw()).total_cycles;
        assert!(c(1_000) < c(10_000));
        assert!(c(10_000) < c(10_000_000));
    }

    #[test]
    fn seq_adds_conc_shares_capacity() {
        let a = Pattern::atom(Atom::rr_acc(1_000_000, 8, 5_000_000));
        let b = Pattern::atom(Atom::rr_acc(1_000_000, 8, 5_000_000));
        let seq = estimate(&Pattern::seq(vec![a.clone(), b.clone()]), &hw());
        let conc = estimate(&Pattern::conc(vec![a.clone(), b.clone()]), &hw());
        let one = estimate(&a, &hw());
        // sequential composition is additive
        assert!((seq.total_cycles - 2.0 * one.total_cycles).abs() < 1e-6 * seq.total_cycles);
        // concurrent random access patterns interfere => more expensive
        assert!(conc.total_cycles >= seq.total_cycles);
    }

    #[test]
    fn wide_row_scan_costs_more_than_narrow_column_scan() {
        // The PDSM premise: scanning 4 bytes out of a 64-byte tuple moves
        // 16x the cache lines of a dedicated 4-byte column.
        let row = estimate(
            &Pattern::atom(Atom::s_trav_partial(1_000_000, 64, 4)),
            &hw(),
        );
        let col = estimate(&Pattern::atom(Atom::s_trav(1_000_000, 4)), &hw());
        assert!(
            row.total_cycles > 3.0 * col.total_cycles,
            "row {} vs col {}",
            row.total_cycles,
            col.total_cycles
        );
    }

    #[test]
    fn selective_projection_cheaper_at_low_selectivity() {
        let at = |s| {
            estimate(
                &Pattern::atom(Atom::s_trav_cr(10_000_000, 16, 16, s)),
                &hw(),
            )
            .total_cycles
        };
        assert!(at(0.001) < at(0.5));
        assert!(at(0.5) <= at(1.0) + 1e-9);
    }

    #[test]
    fn breakdown_levels_align_with_hierarchy() {
        let e = estimate(&Pattern::atom(Atom::s_trav(1000, 8)), &hw());
        let names: Vec<_> = e.levels.iter().map(|l| l.level).collect();
        assert_eq!(names, vec!["Reg", "L1", "L2", "TLB", "L3", "Mem"]);
        // memory level never misses (data lives there)
        assert_eq!(e.levels[5].misses.total(), 0.0);
        // register level counts processed words
        assert_eq!(e.levels[0].misses.total(), 1000.0);
    }

    #[test]
    fn copy_out_grows_with_bytes() {
        let hw = Hierarchy::nehalem();
        assert_eq!(copy_out_cycles(0, &hw), 0.0);
        let small = copy_out_cycles(1 << 10, &hw);
        let big = copy_out_cycles(1 << 24, &hw);
        assert!(small > 0.0);
        assert!(big > small * 100.0, "big={big} small={small}");
    }

    #[test]
    fn survived_fraction_term() {
        assert_eq!(survived_fraction(0, 0), 1.0);
        assert_eq!(survived_fraction(10, 0), 1.0);
        assert_eq!(survived_fraction(10, 5), 0.5);
        assert_eq!(survived_fraction(10, 10), 0.0);
        // over-pruning saturates rather than going negative
        assert_eq!(survived_fraction(10, 11), 0.0);
    }

    #[test]
    fn pruned_scan_scales_linearly() {
        let e = estimate(&Pattern::atom(Atom::s_trav(10_000_000, 4)), &hw());
        let half = scale_estimate(&e, 0.5);
        assert!((half.total_cycles - e.total_cycles * 0.5).abs() < 1e-9);
        assert!((half.hidden_cycles - e.hidden_cycles * 0.5).abs() < 1e-9);
        for (h, f) in half.levels.iter().zip(e.levels.iter()) {
            assert!((h.misses.total() - f.misses.total() * 0.5).abs() < 1e-9);
        }
        // full survival is identity
        assert_eq!(scale_estimate(&e, 1.0).total_cycles, e.total_cycles);
    }

    #[test]
    fn llc_misses_accessor() {
        let e = estimate(&Pattern::atom(Atom::s_trav(1_000_000, 4)), &hw());
        let m = e.llc_misses(&hw());
        assert!(m.sequential > 0.0);
        assert_eq!(m.random, 0.0);
    }
}
