//! Memory hierarchy description (the model's machine parameters, Table III).

/// One layer of the memory hierarchy.
///
/// Following §IV-C2 of the paper, the CPU's registers are treated as "just
/// another layer of memory": level 0 has a one-word block size and its
/// `latency` is the time to load **and process** one value (`l_1` in the
/// paper's notation prices an access *to* level `i`, i.e. a miss at level
/// `i-1`; we store that price on level `i` itself).
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    /// Human-readable name ("L1", "TLB", …).
    pub name: &'static str,
    /// Capacity in bytes (coverage in bytes for a TLB). `u64::MAX` for RAM.
    pub capacity: u64,
    /// Block (cache line / page) size in bytes — `B_i`.
    pub block: u64,
    /// Cycles for one access that is served by this level — `l_{i+1}` for a
    /// miss at the level above.
    pub latency: f64,
    /// True for address-translation levels (TLB): they participate in the
    /// miss summation but are skipped by the LLC-overlap rule.
    pub is_tlb: bool,
}

/// An ordered memory hierarchy, fastest first. Exactly one non-TLB level is
/// designated the LLC (where the aggressive prefetcher lives, §IV-C2).
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    levels: Vec<Level>,
    llc: usize,
}

impl Hierarchy {
    /// Build from explicit levels. `llc` indexes into `levels` and marks the
    /// last-level cache. Panics on malformed input (hierarchies are static
    /// configuration).
    pub fn new(levels: Vec<Level>, llc: usize) -> Self {
        assert!(llc < levels.len(), "llc index out of range");
        assert!(!levels[llc].is_tlb, "LLC cannot be a TLB");
        assert!(levels.len() >= 2, "need at least registers + memory");
        Hierarchy { levels, llc }
    }

    /// The Intel Nehalem system of the paper's Table III.
    ///
    /// | Level  | Capacity | Block | Access time |
    /// |--------|----------|-------|-------------|
    /// | Registers | 16×8 B | 8 B  | 1 cyc (load+process) |
    /// | L1     | 32 kB    | 8 B   | 1 cyc |
    /// | L2     | 256 kB   | 64 B  | 3 cyc |
    /// | TLB    | 32 kB    | 4 kB  | 1 cyc |
    /// | L3     | 8 MB     | 64 B  | 8 cyc |
    /// | Memory | 48 GB    | 64 B  | 12 cyc |
    ///
    /// The paper's Table III lists L1's block size as 8 B — the width of one
    /// data word, consistent with treating registers as level 0.
    pub fn nehalem() -> Self {
        Hierarchy::new(
            vec![
                Level {
                    name: "Reg",
                    capacity: 16 * 8,
                    block: 8,
                    latency: 1.0,
                    is_tlb: false,
                },
                Level {
                    name: "L1",
                    capacity: 32 * 1024,
                    block: 8,
                    latency: 1.0,
                    is_tlb: false,
                },
                Level {
                    name: "L2",
                    capacity: 256 * 1024,
                    block: 64,
                    latency: 3.0,
                    is_tlb: false,
                },
                Level {
                    name: "TLB",
                    capacity: 32 * 1024 * 1024, // 8192 entries x 4 kB pages
                    block: 4096,
                    latency: 1.0,
                    is_tlb: true,
                },
                Level {
                    name: "L3",
                    capacity: 8 * 1024 * 1024,
                    block: 64,
                    latency: 8.0,
                    is_tlb: false,
                },
                Level {
                    name: "Mem",
                    capacity: 48 * 1024 * 1024 * 1024,
                    block: 64,
                    latency: 12.0,
                    is_tlb: false,
                },
            ],
            4,
        )
    }

    /// All levels, fastest first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Index of the LLC level.
    pub fn llc_index(&self) -> usize {
        self.llc
    }

    /// The LLC level.
    pub fn llc(&self) -> &Level {
        &self.levels[self.llc]
    }

    /// Latency of an access served by level `i`.
    pub fn latency(&self, i: usize) -> f64 {
        self.levels[i].latency
    }

    /// Latency of a *miss* at level `i`, i.e. the cost of going one level
    /// further out (`l_{i+1}`). TLB levels sit outside the data path: a TLB
    /// miss is priced as a page-table walk at the TLB's own configured
    /// latency, and data levels skip over TLBs when looking up their miss
    /// price. The outermost level's misses cost its own latency (there is
    /// nowhere further to go).
    pub fn miss_latency(&self, i: usize) -> f64 {
        if self.levels[i].is_tlb {
            return self.levels[i].latency;
        }
        let mut j = i + 1;
        while j < self.levels.len() && self.levels[j].is_tlb {
            j += 1;
        }
        if j < self.levels.len() {
            self.levels[j].latency
        } else {
            self.levels[i].latency
        }
    }

    /// Replace every level's latency (used by the calibrator).
    pub fn with_latencies(mut self, latencies: &[f64]) -> Self {
        assert_eq!(latencies.len(), self.levels.len());
        for (l, &lat) in self.levels.iter_mut().zip(latencies) {
            l.latency = lat;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nehalem_matches_table_iii() {
        let h = Hierarchy::nehalem();
        let l3 = h.llc();
        assert_eq!(l3.name, "L3");
        assert_eq!(l3.capacity, 8 * 1024 * 1024);
        assert_eq!(l3.block, 64);
        assert_eq!(l3.latency, 8.0);
        let names: Vec<_> = h.levels().iter().map(|l| l.name).collect();
        assert_eq!(names, vec!["Reg", "L1", "L2", "TLB", "L3", "Mem"]);
    }

    #[test]
    fn miss_latency_prices_next_level() {
        let h = Hierarchy::nehalem();
        // A register "miss" is an L1 access: 1 cycle.
        assert_eq!(h.miss_latency(0), 1.0);
        // An L2 miss skips the TLB entry and is priced as an L3 access.
        assert_eq!(h.miss_latency(2), 8.0);
        // L3 miss = memory access:
        assert_eq!(h.miss_latency(4), 12.0);
        // Memory misses (none exist) price memory itself.
        assert_eq!(h.miss_latency(5), 12.0);
        // TLB miss = walk at TLB latency.
        assert_eq!(h.miss_latency(3), 1.0);
    }

    #[test]
    #[should_panic(expected = "llc index")]
    fn bad_llc_rejected() {
        let lv = Hierarchy::nehalem().levels().to_vec();
        Hierarchy::new(lv, 99);
    }
}
