//! The disk tier below the memory hierarchy: what a scan pays to *fault*
//! cold checkpoint extents through the buffer pool before the in-memory
//! cost model (Eq. 5–6) even starts.
//!
//! The paper's hierarchy stops at main memory because its tables are
//! memory-resident; with the buffer pool a table may be partially on disk,
//! and the planner must price the difference between a resident scan and
//! one that faults. The model is the classical two-parameter one: a fixed
//! per-request cost (submission, seek/queue latency, page-cache miss) plus
//! a sequential-transfer cost per byte, both expressed in CPU cycles so
//! they add directly onto [`crate::cost::Estimate::total_cycles`].

/// Cycle costs of faulting cold bytes from the checkpoint files.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskTier {
    /// Fixed cycles per fault request (one extent read): syscall +
    /// scheduler hand-off + device/page-cache latency. ~80 µs at 3 GHz.
    pub seek_cycles: f64,
    /// Cycles per sequentially transferred byte. ~2 GB/s effective NVMe
    /// read at 3 GHz ⇒ 1.5 cycles/byte.
    pub cycles_per_byte: f64,
}

impl Default for DiskTier {
    fn default() -> Self {
        DiskTier {
            seek_cycles: 240_000.0,
            cycles_per_byte: 1.5,
        }
    }
}

impl DiskTier {
    /// Predicted cycles to fault `requests` cold extents totalling `bytes`.
    /// Zero requests ⇒ zero cost (fully resident or fully pruned scans pay
    /// nothing here).
    pub fn fault_cycles(&self, requests: u64, bytes: u64) -> f64 {
        self.seek_cycles * requests as f64 + self.cycles_per_byte * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cost_scales_with_requests_and_bytes() {
        let d = DiskTier::default();
        assert_eq!(d.fault_cycles(0, 0), 0.0);
        let one = d.fault_cycles(1, 1 << 20);
        let two = d.fault_cycles(2, 2 << 20);
        assert!(two > one * 1.9 && two < one * 2.1);
        // a single fault is dominated by the fixed cost for tiny extents
        assert!(d.fault_cycles(1, 64) > d.seek_cycles);
    }
}
