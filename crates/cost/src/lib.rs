//! # pdsm-cost
//!
//! The paper's "programmable" hardware-conscious cost model (§IV): Manegold's
//! **Generic Cost Model** extended with
//!
//! * the **`s_trav_cr`** atom — *Sequential Traversal with Conditional Reads*
//!   — modeling selective projections (Eq. 1–4),
//! * a **prefetching-aware cost function** that lets sequential last-level
//!   cache misses hide behind work done in faster levels (Eq. 5–6), and
//! * **Cardenas' estimate** of distinct accessed records for repetitive
//!   random accesses (Eq. 7), replacing the original binomial formulation.
//!
//! Memory access behaviour is described as an algebra of [`Atom`]s combined
//! sequentially (`⊕`, [`Pattern::seq`]) or concurrently (`⊙`,
//! [`Pattern::conc`]). Estimating a query's cost means *programming* this
//! model: the plan-to-pattern translator in `pdsm-plan` emits a pattern, and
//! [`crate::cost::estimate`] prices it against a calibrated
//! [`Hierarchy`].
//!
//! ```
//! use pdsm_cost::{Atom, Hierarchy, Pattern};
//!
//! // The paper's example query at selectivity 1 % (Table I(b)):
//! // s_trav(26214400,4) ⊙ s_trav_cr([B..E], 0.01) ⊙ rr_acc(1,16,262144)
//! let pattern = Pattern::conc(vec![
//!     Pattern::atom(Atom::s_trav(26_214_400, 4)),
//!     Pattern::atom(Atom::s_trav_cr(26_214_400, 16, 16, 0.01)),
//!     Pattern::atom(Atom::rr_acc(1, 16, 262_144)),
//! ]);
//! let hw = Hierarchy::nehalem();
//! let est = pdsm_cost::cost::estimate(&pattern, &hw);
//! assert!(est.total_cycles > 0.0);
//! ```

pub mod algebra;
pub mod atoms;
pub mod calibrate;
pub mod cost;
pub mod disk;
pub mod hierarchy;
pub mod misses;

pub use algebra::Pattern;
pub use atoms::Atom;
pub use cost::{copy_out_cycles, scale_estimate, survived_fraction, CostBreakdown, Estimate};
pub use disk::DiskTier;
pub use hierarchy::{Hierarchy, Level};
pub use misses::{cardenas, LevelMisses};
