//! # rand (offline shim)
//!
//! This workspace builds in environments with no crates.io access, so the
//! tiny slice of the `rand` API the generators use is provided here as a
//! workspace-local package with the same name. Everything is deterministic:
//! `SmallRng` is a SplitMix64 stream, which is more than adequate for
//! benchmark data generation (the real `rand` makes no reproducibility
//! promises across versions anyway, so pinning our own keeps generated
//! datasets stable forever).
//!
//! Supported surface: `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer/float ranges (half-open and inclusive),
//! and `Rng::gen_bool`.

/// Core RNG capability: a stream of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range, driven by an [`RngCore`].
pub trait SampleRange<T> {
    /// Draw one value. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a double in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → the full significand range of an f64 in [0,1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.gen_range(0..1_000_000);
            let y: i64 = b.gen_range(0..1_000_000);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = r.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let u: usize = r.gen_range(0..=3);
            assert!(u <= 3);
            let f: f64 = r.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let b: u8 = r.gen_range(0..26u8);
            assert!(b < 26);
        }
    }

    #[test]
    fn gen_bool_rates_plausible() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
