//! # criterion (offline shim)
//!
//! A minimal, dependency-free benchmark runner with the `criterion` API
//! surface this workspace uses (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! Measurement model: one warm-up call, then batches of calls are timed
//! until the measurement budget (default 300 ms, `CRITERION_MEASURE_MS` to
//! override) elapses; the mean ns/iteration is reported, with throughput
//! when the group declared one. No plots, no statistics machinery — this
//! exists so `cargo bench` runs offline and prints comparable numbers.

use std::time::{Duration, Instant};

/// Opaque value barrier; prevents the optimizer from deleting benchmarks.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id (the group name provides the function part).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { label: s.clone() }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    measured_ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut iters: u64 = 0;
        let start = Instant::now();
        let mut elapsed;
        loop {
            // Batch to amortize clock reads on fast bodies.
            let batch = (iters / 2).clamp(1, 4096);
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            elapsed = start.elapsed();
            if elapsed >= self.budget {
                break;
            }
        }
        self.measured_ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn measurement_budget() -> Duration {
    let ms = std::env::var("CRITERION_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn report(label: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / ns_per_iter * 1e3),
        Throughput::Bytes(n) => format!(
            " ({:.3} MiB/s)",
            n as f64 / ns_per_iter * 1e9 / (1u64 << 20) as f64
        ),
    });
    println!(
        "{label:<52} {:>14.1} ns/iter{}",
        ns_per_iter,
        rate.unwrap_or_default()
    );
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: measurement_budget(),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            criterion: self,
        }
    }

    /// A standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measured_ns_per_iter: 0.0,
            budget: self.budget,
        };
        f(&mut b);
        report(&id.label, b.measured_ns_per_iter, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.budget = d;
        self
    }

    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measured_ns_per_iter: 0.0,
            budget: self.criterion.budget,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.label),
            b.measured_ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Benchmark a closure over an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner callable by `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
        g.finish();
        c.bench_function(BenchmarkId::new("solo", 1), |b| b.iter(|| black_box(1 + 1)));
    }
}
