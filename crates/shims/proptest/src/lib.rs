//! # proptest (offline shim)
//!
//! The workspace builds with no crates.io access, so this package provides
//! the slice of the `proptest` API our property tests use: the `proptest!`
//! macro, `Strategy` with `prop_map`/`prop_recursive`/`boxed`, range and
//! tuple strategies, `Just`, `any`, `prop_oneof!`, `collection::vec`,
//! `option::of`, and the `prop_assert*` family.
//!
//! Semantics: each test runs `ProptestConfig::cases` iterations with inputs
//! drawn from a deterministic per-test RNG (seeded from the test name, plus
//! `PROPTEST_SEED` if set, so suites are reproducible by default but can be
//! re-rolled). There is **no shrinking** — on failure the panic message
//! reports the case number and seed instead. That trades minimal
//! counterexamples for zero dependencies, which is the right trade for an
//! offline CI.

/// Runner configuration and the deterministic test RNG.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary 64-bit value.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Per-test seed: hash of the test name mixed with `PROPTEST_SEED`
        /// (if present in the environment) so reruns are reproducible.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.rotate_left(17);
                }
            }
            TestRng { state: h }
        }

        /// Next 64 uniform bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform double in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[0, n)`; `n` must be non-zero.
        #[inline]
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }

        /// The current seed state (reported on failure).
        pub fn state(&self) -> u64 {
            self.state
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
        }

        /// Build recursive structures: expand the leaf strategy `depth`
        /// times through `recurse` (`_desired_size` / `_branch` are accepted
        /// for API compatibility; depth alone bounds our generation).
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                // Each level may either recurse or fall back to a leaf, so
                // generated structures vary in depth like real proptest's.
                let level = recurse(cur).boxed();
                let fallback = leaf.clone();
                cur = BoxedStrategy::from_fn(move |rng| {
                    if rng.next_u64() % 4 == 0 {
                        fallback.generate(rng)
                    } else {
                        level.generate(rng)
                    }
                });
            }
            cur
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Arc::new(move |rng| inner.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wrap a generator closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy(Arc::new(f))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub fn union<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy::from_fn(move |rng| {
            let i = rng.below(options.len());
            options[i].generate(rng)
        })
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
        BoxedStrategy::from_fn(|rng| T::arbitrary(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};

    /// Anything usable as a vec-length specification.
    pub trait SizeBounds {
        /// Inclusive lower bound, exclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeBounds for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeBounds for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeBounds for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Vectors of `elem` values with a length drawn from `size`.
    pub fn vec<S>(elem: S, size: impl SizeBounds) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        BoxedStrategy::from_fn(move |rng| {
            let n = lo + rng.below(hi - lo);
            (0..n).map(|_| elem.generate(rng)).collect()
        })
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::{BoxedStrategy, Strategy};

    /// `Some(value)` three times out of four, `None` otherwise (matching
    /// real proptest's default weighting).
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        })
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{any, union, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Assert within a property (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in STRATEGY, ...) { body }`
/// becomes a `#[test]` running `cases` random iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    let seed = rng.state();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let run = || $body;
                        run()
                    }));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case}/{} failed (seed state {seed:#x}); \
                             set PROPTEST_SEED to vary inputs",
                            cfg.cases
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i32, i32)> {
        (0i32..10, 10i32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u64..9, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0i32..5, 1..8), p in arb_pair()) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
            let (a, b) = p;
            prop_assert!(a < b);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i32), (5i32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..80).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0i32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // fields exist to give the tree realistic shape
        enum E {
            Leaf(i32),
            Pair(Box<E>, Box<E>),
        }
        let leaf = (0i32..10).prop_map(E::Leaf);
        let tree = leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let _ = tree.generate(&mut rng);
        }
    }
}
