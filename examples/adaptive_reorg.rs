//! Online / adaptive reorganization — the future-work direction the paper
//! closes with (§VII): when the workload shifts, re-run the advisor and
//! reorganize *in place*, with queries returning identical answers before
//! and after.
//!
//!     cargo run --release --example adaptive_reorg

use mrdb::prelude::*;
use std::time::Instant;

fn time_workload(db: &Database, workload: &Workload) -> f64 {
    let mut ms = 0.0;
    for q in &workload.queries {
        let best = (0..5)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(db.run(&q.plan, EngineKind::Compiled).unwrap());
                t0.elapsed().as_secs_f64() * 1e3
            })
            .fold(f64::MAX, f64::min);
        ms += best * q.frequency;
    }
    ms
}

fn main() {
    // A 24-column operational table.
    let cols: Vec<ColumnDef> = (0..24)
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
        .collect();
    let db = Database::new();
    db.create_table("events", Schema::new(cols)).unwrap();
    for i in 0..300_000i32 {
        let row: Vec<Value> = (0..24)
            .map(|c| Value::Int32((i.wrapping_mul(2654435761u32 as i32) ^ c) % 10_000))
            .collect();
        db.insert("events", &row).unwrap();
    }

    // Phase 1: point-lookup heavy (OLTP morning shift).
    let mut oltp = Workload::new();
    oltp.push(
        WorkloadQuery::new(
            "lookup",
            QueryBuilder::scan("events")
                .filter(Expr::col(0).eq(Expr::lit(42)))
                .build(),
        )
        .with_frequency(100.0),
    );

    // Phase 2: analytics-heavy (reporting evening shift) — narrow scans.
    let mut olap = Workload::new();
    for c in [1usize, 2, 3] {
        olap.push(WorkloadQuery::new(
            format!("agg{c}"),
            QueryBuilder::scan("events")
                .filter_with_selectivity(Expr::col(0).lt(Expr::lit(5_000)), 0.5)
                .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(c))])
                .build(),
        ));
    }

    let advisor = LayoutAdvisor::default();
    let probe = QueryBuilder::scan("events")
        .filter(Expr::col(0).eq(Expr::lit(7)))
        .build();
    let reference = db.run(&probe, EngineKind::Compiled).unwrap();

    println!("phase 1 (lookup-heavy):");
    let report = advisor.apply(&db, &oltp).unwrap();
    println!(
        "  advisor chose {} — lookups: {:.1} weighted-ms",
        report.tables[0].layout,
        time_workload(&db, &oltp)
    );

    println!("\nworkload shifts to analytics; reorganizing online...");
    let report = advisor.apply(&db, &olap).unwrap();
    println!(
        "  advisor chose {} — analytics: {:.1} weighted-ms",
        report.tables[0].layout,
        time_workload(&db, &olap)
    );

    // Correctness across reorganizations.
    let after = db.run(&probe, EngineKind::Compiled).unwrap();
    reference.assert_same(&after, "query across reorganizations");
    println!("\nsame answers before and after both reorganizations — layout is invisible");
    println!("to query semantics, exactly what makes online adaptation viable (§VII).");
}
