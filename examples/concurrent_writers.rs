//! Concurrent per-table ingest through the shared `Database` handle:
//! `Arc<Database>` cloned per thread, one writer per table, background
//! merges landing under the writers, readers on consistent snapshots.
//!
//! Writers to *different* tables proceed fully in parallel (each takes
//! only its own table's lock per operation); writers to the *same* table
//! would serialize on that table's lock alone. On a multi-core host the
//! ingest wall-clock stays roughly flat as tables (and writer threads)
//! are added.
//!
//!     cargo run --release --example concurrent_writers

use mrdb::prelude::*;
use std::sync::Arc;
use std::time::Instant;

const ROWS_PER_TABLE: usize = 100_000;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("id", DataType::Int32),
        ColumnDef::new("payload", DataType::Int64),
        ColumnDef::new("tag", DataType::Str),
    ])
}

fn ingest(db: &Database, table: &str, rows: usize, seed: i64) {
    for i in 0..rows {
        db.insert(
            table,
            &[
                Value::Int32(i as i32),
                Value::Int64(seed.wrapping_mul(i as i64)),
                Value::Str(format!("t{}", i % 5)),
            ],
        )
        .expect("insert");
    }
}

fn main() {
    println!(
        "concurrent_writers — disjoint-table parallel ingest, {} rows/table, {} core(s)\n",
        ROWS_PER_TABLE,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    for n_tables in [1usize, 2, 4] {
        // Background maintenance with a small threshold: merges run and
        // are applied on the worker thread while the writers keep going.
        let db = Arc::new(Database::with_maintenance(MaintenanceConfig {
            mode: MaintenanceMode::Background,
            merge_threshold: 16_384,
            ..Default::default()
        }));
        for i in 0..n_tables {
            db.create_table(&format!("events_{i}"), schema()).unwrap();
        }

        // One writer thread per table, all sharing the same Arc<Database>.
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for i in 0..n_tables {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    ingest(&db, &format!("events_{i}"), ROWS_PER_TABLE, i as i64 + 1);
                });
            }
            // A concurrent reader: snapshots are consistent cuts, taken
            // and queried without ever blocking the writers.
            let db = Arc::clone(&db);
            s.spawn(move || {
                let plan = QueryBuilder::scan("events_0")
                    .aggregate(vec![], vec![AggExpr::count_star()])
                    .build();
                for _ in 0..20 {
                    let n = db.snapshot().run(&plan, EngineKind::Compiled).unwrap().rows[0][0]
                        .as_i64()
                        .unwrap();
                    assert!(n <= ROWS_PER_TABLE as i64);
                    std::thread::yield_now();
                }
            });
        });
        let ingest_s = t0.elapsed().as_secs_f64();
        db.flush_maintenance().unwrap();

        let stats = db.maintenance_stats();
        let total = n_tables * ROWS_PER_TABLE;
        println!(
            "{n_tables} table(s) x {n_tables} writer(s): {total:>7} rows in {:>6.0} ms \
             ({:>9.0} rows/s), {} background merges applied",
            ingest_s * 1e3,
            total as f64 / ingest_s,
            stats.builds_applied,
        );

        // Every table holds exactly its writer's rows.
        for i in 0..n_tables {
            let count = QueryBuilder::scan(format!("events_{i}"))
                .aggregate(vec![], vec![AggExpr::count_star()])
                .build();
            let n = db.execute(&count).unwrap().rows[0][0].as_i64().unwrap();
            assert_eq!(n, ROWS_PER_TABLE as i64);
        }
    }
    println!("\nper-table row counts verified — writers never interfered with each other.");
    println!("(on a multi-core host the rows/s column grows with the writer count;");
    println!("per-table locks mean disjoint writers never serialize on the catalog)");
}
