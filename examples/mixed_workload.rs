//! Mixed OLTP/OLAP workload on the SAP-SD schema: load the five tables, let
//! the layout advisor derive a partially decomposed layout from the twelve
//! queries (§V of the paper, end to end), and compare estimated and measured
//! costs against pure row and column storage.
//!
//!     cargo run --release --example mixed_workload

use mrdb::prelude::*;
use mrdb::workloads::sapsd;

fn main() {
    let scale = 5_000;
    let db = Database::new();
    for t in sapsd::tables(scale, 7) {
        db.register(t);
    }
    println!(
        "loaded SAP-SD at scale {scale}: {} tables, {:.1} MB",
        db.table_names().len(),
        db.byte_size() as f64 / (1 << 20) as f64
    );

    // the advisor's workload = the benchmark's read queries
    let queries = sapsd::queries(scale);
    let mut workload = Workload::new();
    for q in &queries {
        if let Some(plan) = q.as_plan() {
            workload.push(WorkloadQuery::new(q.name.clone(), plan.clone()));
        }
    }

    let advisor = LayoutAdvisor::default();
    let report = advisor.advise(&db, &workload);
    println!("\nadvised layouts (cost-model estimates):");
    for a in &report.tables {
        println!(
            "  {:6} {:40} row {:>10.0}  col {:>10.0}  hybrid {:>10.0}",
            a.table,
            a.layout.to_string(),
            a.row_cost,
            a.column_cost,
            a.estimated_cost
        );
    }
    println!(
        "estimated workload speed-up vs row storage: {:.2}x",
        report.speedup_vs_row()
    );

    // apply and verify: same answers, measured timings per query
    let before: Vec<_> = workload
        .queries
        .iter()
        .map(|q| db.run(&q.plan, EngineKind::Compiled).unwrap())
        .collect();
    advisor.apply(&db, &workload).unwrap();
    println!("\nafter relayout (compiled engine):");
    for (q, before_out) in workload.queries.iter().zip(&before) {
        let t0 = std::time::Instant::now();
        let out = db.run(&q.plan, EngineKind::Compiled).unwrap();
        out.assert_same(before_out, &q.name);
        println!(
            "  {:4} {:>7} rows  {:>8.3} ms",
            q.name,
            out.len(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
    println!("\nresults identical before/after relayout — decomposition is transparent.");
}
