//! A tour of the "programmable" cost model (§IV): write access patterns in
//! the paper's algebra, price them on the Table-III Nehalem, watch the
//! prefetch-aware cost function at work, and check a prediction against the
//! cache simulator.
//!
//!     cargo run --release --example cost_model_tour

use mrdb::cachesim::{trace, SimConfig};
use mrdb::cost::{cost, Atom, Hierarchy, Pattern};

fn main() {
    let hw = Hierarchy::nehalem();
    let n = 10_000_000u64;

    println!("== atoms on a 10M-item region ==\n");
    for (label, atom) in [
        ("sequential scan, 4B items        ", Atom::s_trav(n, 4)),
        ("random traversal, 4B items       ", Atom::r_trav(n, 4)),
        (
            "scan 4B of 64B tuples (row store)",
            Atom::s_trav_partial(n, 64, 4),
        ),
        (
            "conditional read, s=1%           ",
            Atom::s_trav_cr(n, 16, 16, 0.01),
        ),
        (
            "conditional read, s=50%          ",
            Atom::s_trav_cr(n, 16, 16, 0.5),
        ),
        (
            "1M probes into 100k-entry table  ",
            Atom::rr_acc(100_000, 16, 1_000_000),
        ),
    ] {
        let e = cost::estimate(&Pattern::atom(atom.clone()), &hw);
        println!("{label}  {:>12.0} cycles   ({})", e.total_cycles, atom);
    }

    println!("\n== the example query's pattern, three layouts ==\n");
    // select sum(B..E) from R where A = $1  at s = 1% (Table I(b))
    for (name, cond_w, pay_w, pay_u) in [
        ("row    (64B tuples)", 64u64, 64u64, 16u64),
        ("column (4B each)   ", 4, 4, 4),
        ("hybrid {A}{B..E}   ", 4, 16, 16),
    ] {
        let pattern = Pattern::conc(vec![
            Pattern::atom(Atom::s_trav_partial(n, cond_w, 4)),
            Pattern::atom(Atom::s_trav_cr(n, pay_w, pay_u, 0.01)),
            Pattern::atom(Atom::rr_acc(1, 32, (0.01 * n as f64) as u64)),
        ]);
        let aware = cost::estimate(&pattern, &hw);
        let flat = cost::estimate_flat(&pattern, &hw);
        println!(
            "{name}  {:>12.0} cycles  (constant-weight ablation: {:>12.0}, hidden by prefetch: {:.0})",
            aware.total_cycles, flat.total_cycles, aware.hidden_cycles
        );
    }

    println!("\n== model vs simulator on a selective projection (s = 5%) ==\n");
    let small_n = 1_000_000u64;
    let atom = Atom::s_trav_cr(small_n, 16, 16, 0.05);
    let predicted = mrdb::cost::misses::atom_misses(&atom, hw.llc(), 1.0);
    let (payload, _) = trace::run_selective_projection(small_n, 16, 0.05, SimConfig::nehalem(), 9);
    println!(
        "predicted: {:>9.0} sequential + {:>9.0} random LLC misses",
        predicted.sequential, predicted.random
    );
    println!(
        "simulated: {:>9} sequential + {:>9} random LLC misses",
        payload.paper_sequential(),
        payload.paper_random()
    );
    println!("\n(the simulator implements exactly the adjacent-line prefetcher the model assumes)");
}
