//! Quickstart: create a database, pick a partially decomposed layout, and
//! run the same query through all three processing models.
//!
//!     cargo run --release --example quickstart

use mrdb::prelude::*;

fn main() {
    // --- 1. a table in the paper's example shape: R(A..P), 16 int columns
    let schema = Schema::new(
        [
            "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P",
        ]
        .iter()
        .map(|n| ColumnDef::new(*n, DataType::Int32))
        .collect(),
    );

    // --- 2. a partially decomposed layout: {A} {B..E} {F..P}
    // The selection column lives alone (it is scanned for every query), the
    // aggregated payload is co-located, the cold columns stay out of the way.
    let layout = Layout::from_groups(vec![vec![0], (1..=4).collect(), (5..16).collect()], 16)
        .expect("valid layout");

    let db = Database::new();
    db.create_table_with_layout("R", schema, layout).unwrap();
    for i in 0..200_000i32 {
        let row: Vec<Value> = (0..16)
            .map(|c| Value::Int32((i * 31 + c * 7) % 1000))
            .collect();
        db.insert("R", &row).unwrap();
    }

    // --- 3. the paper's example query:
    //     select sum(B), sum(C), sum(D), sum(E) from R where A = $1
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col(0).eq(Expr::lit(42)))
        .aggregate(
            vec![],
            (1..=4)
                .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                .collect(),
        )
        .build();

    // --- 4. run it with each processing model
    for kind in EngineKind::all() {
        let t0 = std::time::Instant::now();
        let out = db.run(&plan, kind).unwrap();
        println!(
            "{:>8?}: {:?}  ({:.2} ms)",
            kind,
            out.rows[0],
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    // --- 5. results are identical; speed is not. That asymmetry — identical
    // semantics, different CPU/cache behaviour — is the whole paper.
    let a = db.run(&plan, EngineKind::Volcano).unwrap();
    let b = db.run(&plan, EngineKind::Compiled).unwrap();
    a.assert_same(&b, "volcano vs compiled");
    println!("\nall engines agree; the compiled engine just gets there sooner.");

    // --- 6. which is why you normally don't pick one: `execute` routes
    // through the cost-based planner, which prices every engine (and any
    // eligible index path) with the paper's cache-miss model and takes
    // the cheapest. `explain` shows its reasoning.
    let routed = db.execute(&plan).unwrap();
    routed.assert_same(&b, "planner vs compiled");
    println!("\nplanner's EXPLAIN:\n{}", db.explain(&plan).unwrap());
}
