//! The CNET-style wide, sparse catalog (§VI-D): ~hundreds of attribute
//! columns of which each product sets ~11. The frequency-weighted Table-V
//! workload makes partial decomposition shine: dense analytics columns are
//! isolated from the sparse tail while the identity select keeps most of
//! its row locality.
//!
//!     cargo run --release --example wide_catalog

use mrdb::prelude::*;
use mrdb::workloads::cnet;
use std::time::Instant;

fn main() {
    let (n, attrs) = (10_000, 300);
    let base = cnet::generate(n, attrs, 11, 3);
    println!(
        "catalog: {n} products x {} columns, {:.1} MB as row store",
        base.schema().len(),
        base.byte_size() as f64 / (1 << 20) as f64
    );

    let queries = cnet::queries("laptops", 40, (n / 2) as i32);
    let mut workload = Workload::new();
    for q in &queries {
        workload.push(
            WorkloadQuery::new(q.name.clone(), q.as_plan().unwrap().clone())
                .with_frequency(q.frequency),
        );
    }

    // row baseline, column baseline, and the advisor's hybrid
    let row_db = Database::new();
    row_db.register(base.clone());
    let advisor = LayoutAdvisor::default();
    let report = advisor.advise(&row_db, &workload);
    let hybrid = report.tables[0].layout.clone();
    println!(
        "advisor proposes {} partitions; estimated speed-up vs row: {:.1}x\n",
        hybrid.n_groups(),
        report.speedup_vs_row()
    );

    let width = base.schema().len();
    let variants: Vec<(&str, Table)> = vec![
        ("row", base.clone()),
        ("column", base.relayout(Layout::column(width)).unwrap()),
        ("hybrid", base.relayout(hybrid).unwrap()),
    ];

    println!("frequency-weighted execution time (compiled engine):");
    for (name, table) in variants {
        let db = Database::new();
        db.register(table);
        let mut weighted_ms = 0.0;
        for q in &queries {
            let plan = q.as_plan().unwrap();
            // best of seven: the 10 000x-weighted lookup would otherwise be
            // dominated by one cold-cache execution
            let best = (0..7)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(db.run(plan, EngineKind::Compiled).unwrap());
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::MAX, f64::min);
            weighted_ms += best * q.frequency;
        }
        println!("  {name:7} {weighted_ms:>10.1} weighted-ms");
    }
    println!("\n(paper Fig. 12: hybrid beats row by >10x and column by ~4x on this workload)");
}
