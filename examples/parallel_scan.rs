//! The morsel-driven parallel engine from the public API: same query,
//! every engine, plus pinned worker counts — all results must agree.
//!
//! Run: `cargo run --release --example parallel_scan`

use mrdb::prelude::*;

fn main() {
    let db = Database::new();
    let t = mrdb::workloads::microbench::generate(
        500_000,
        0.03,
        mrdb::workloads::microbench::pdsm_layout(),
        42,
    );
    db.register(t);
    let plan = mrdb::workloads::microbench::query(0.03);

    println!("engines on `select sum(B),sum(C),sum(D),sum(E) from R where A = 0`:");
    let mut reference: Option<QueryOutput> = None;
    for kind in EngineKind::all() {
        let start = std::time::Instant::now();
        let out = db.run(&plan, kind).expect("query runs");
        let elapsed = start.elapsed();
        println!("  {kind:<10?} {:>9.1?}  {:?}", elapsed, out.rows[0]);
        if let Some(r) = &reference {
            r.assert_same(&out, &format!("{kind:?} vs reference"));
        } else {
            reference = Some(out.into_output());
        }
    }

    println!("\npinned worker counts (ParallelEngine::with_threads):");
    let reference = reference.expect("ran at least one engine");
    // Engines consume a TableProvider; under the shared-handle API that is
    // a snapshot pinned at the current version, not the database itself.
    let snap = db.snapshot();
    for threads in [1, 2, 4, 8] {
        let engine = ParallelEngine::with_threads(threads);
        let start = std::time::Instant::now();
        let out = Engine::execute(&engine, &plan, &snap).expect("query runs");
        reference.assert_same(&out, "pinned threads");
        println!(
            "  {threads} thread(s): {:>9.1?}  (results identical)",
            start.elapsed()
        );
    }
    println!(
        "\nauto resolution: PDSM_THREADS or all cores -> {} worker(s) here",
        ParallelEngine::new().effective_threads()
    );
}
