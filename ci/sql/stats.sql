-- Connection-level cache counters (see crates/sql/src/server.rs).
-- Values depend on run history, so this script is printed and grepped
-- by the result-cache CI job, never hash-asserted.
STATS
