-- Durability-job reads: run before the SIGKILL and again after the
-- restart; the FNV-1a hashes the client prints must match exactly
-- (recovery is byte-identical at the last durable record).
SELECT VBELN, POSNR, MATNR, KWMENG, NETWR, WAERK FROM VBAP WHERE VBELN >= 8000000 ORDER BY 1, 2
SELECT count(*), sum(NETWR) FROM VBAP WHERE VBELN >= 8000000
SELECT count(*) FROM VBAP
SELECT count(*), sum(NETWR) FROM VBAP
SELECT MATNR, count(*), sum(KWMENG) FROM VBAP WHERE VBELN >= 8000000 GROUP BY MATNR ORDER BY 1
