-- Durability-job DML: applied once before the SIGKILL. VBELN ids
-- >= 8000000 are reserved for this script (disjoint from dml_vbap.sql)
-- so the read script's results stay deterministic.
INSERT INTO VBAP VALUES (8000001, 10, 'DUR-8000001', 'DUR-8000001', 'TAN', 'B-1', 'W01', 'L01', 3.0, 'EA', 75.25, 'EUR', 25.08, 1, '', 20230201, 'S1', 'G1', 'V1', 'R1')
INSERT INTO VBAP VALUES (8000002, 10, 'DUR-8000002', 'DUR-8000002', 'TAN', 'B-2', 'W01', 'L02', 6.0, 'EA', 150.5, 'EUR', 25.08, 1, '', 20230202, 'S1', 'G1', 'V1', 'R2'), (8000003, 20, 'DUR-8000003', 'DUR-8000003', 'TAN', 'B-3', 'W02', 'L01', 1.0, 'EA', 9.99, 'EUR', 9.99, 1, '', 20230203, 'S2', 'G2', 'V1', 'R1')
UPDATE VBAP SET NETWR = 888.125, WAERK = 'USD' WHERE VBELN = 8000001
DELETE FROM VBAP WHERE VBELN = 8000003
INSERT INTO VBAP VALUES (8000004, 10, 'DUR-8000004', 'DUR-8000004', 'TAN', 'B-4', 'W03', 'L01', 2.5, 'EA', 42.0, 'EUR', 16.8, 1, 'Z1', 20230204, 'S2', 'G1', 'V2', 'R3')
UPDATE VBAP SET KWMENG = 7.0 WHERE VBELN = 8000002
