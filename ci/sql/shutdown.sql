-- Sent last by CI: stops the server gracefully.
SHUTDOWN
