//! The cost-based planner's correctness contract.
//!
//! `Database::execute` routes every query through the planner — engine
//! choice and scan-vs-index access path both come from
//! `pdsm_cost::estimate` — and must produce results byte-identical to
//! every fixed engine, on every layout, with and without a pending delta.
//! The suite also pins the `explain()` rendering, property-tests the
//! "never pick a path the model scores worse than full scan" invariant,
//! and covers the observed-workload capture and the generation-keyed plan
//! cache.

use mrdb::core::Planner;
use mrdb::prelude::*;
use mrdb::workloads::microbench;
use proptest::prelude::*;
use std::sync::Arc;

/// A small write mix: appends, one update, one delete — enough to leave a
/// non-trivial delta (tail rows *and* main tombstones).
fn churn(db: &Database, table: &str) {
    let width = db.get_table(table).unwrap().schema().len();
    let first_col = db.get_table(table).unwrap().schema().columns()[1]
        .name
        .clone();
    for i in 0..40 {
        let row: Vec<Value> = (0..width)
            .map(|c| Value::Int32(10_000 + i * width as i32 + c as i32))
            .collect();
        db.insert(table, &row).unwrap();
    }
    db.delete(table, 3).unwrap();
    db.delete(table, 7).unwrap();
    db.update(table, 11, &first_col, &Value::Int32(-777))
        .unwrap();
    assert!(db.with_table(table, |vt| vt.has_delta()).unwrap());
}

/// `execute` must agree with every fixed engine (skipping shapes an engine
/// cannot run), and bare scans must agree row-for-row in order.
fn assert_execute_matches_engines(db: &Database, plan: &LogicalPlan, ctx: &str) {
    let routed = db
        .execute(plan)
        .unwrap_or_else(|e| panic!("{ctx}: execute failed: {e}"));
    for kind in EngineKind::all() {
        if !kind.supports(plan) {
            continue;
        }
        let fixed = db
            .run(plan, kind)
            .unwrap_or_else(|e| panic!("{ctx}: {kind:?} failed: {e}"));
        routed.assert_same(&fixed, &format!("{ctx}: execute vs {kind:?}"));
    }
}

#[test]
fn execute_matches_every_engine_across_layouts_and_deltas() {
    for (lname, layout) in microbench::layouts() {
        for with_delta in [false, true] {
            let db = Database::new();
            db.register(microbench::generate(2_000, 0.05, layout.clone(), 9));
            if with_delta {
                churn(&db, "R");
            }
            let ctx = format!("{lname}/delta={with_delta}");
            assert_execute_matches_engines(&db, &microbench::query(0.05), &ctx);
            assert_execute_matches_engines(
                &db,
                &QueryBuilder::scan("R")
                    .filter(Expr::col(1).gt(Expr::lit(500)))
                    .project(vec![Expr::col(0), Expr::col(2)])
                    .build(),
                &ctx,
            );
            assert_execute_matches_engines(
                &db,
                &QueryBuilder::scan("R")
                    .aggregate(
                        vec![Expr::col(5)],
                        vec![
                            AggExpr::count_star(),
                            AggExpr::new(AggFunc::Sum, Expr::col(6)),
                        ],
                    )
                    .build(),
                &ctx,
            );
            // bare scans must also agree in exact row order
            let scan = QueryBuilder::scan("R").build();
            let routed = db.execute(&scan).unwrap();
            let fixed = db.run(&scan, EngineKind::Compiled).unwrap();
            assert_eq!(routed.rows, fixed.rows, "{ctx}: scan order");
        }
    }
}

#[test]
fn indexed_selects_stay_indexed_under_write_load() {
    let db = Database::new();
    db.register(microbench::generate(3_000, 0.01, Layout::row(16), 5));
    db.create_index("R", "B", IndexKind::Hash).unwrap();
    // write load: new rows (one with the probed key), tombstones, updates
    let probed = db.get_table("R").unwrap().get(100, 1).unwrap();
    churn(&db, "R");
    let mut hit_row: Vec<Value> = (0..16).map(|c| Value::Int32(90_000 + c)).collect();
    hit_row[1] = probed.clone();
    db.insert("R", &hit_row).unwrap();

    let plan = QueryBuilder::scan("R")
        .filter(Expr::col(1).eq(Expr::lit(probed.as_i64().unwrap() as i32)))
        .build();
    let phys = db.plan_query(&plan).unwrap();
    assert!(
        phys.access().is_indexed(),
        "identity select should probe the index:\n{}",
        phys.explain()
    );
    assert!(phys.pipelines[0].delta_rows > 0, "delta must be pending");

    // run_indexed no longer declines tables with a pending delta, and the
    // probe is byte-identical (including order) to an engine scan
    let probed_out = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
    let scanned = db.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(probed_out.rows, scanned.rows, "probe vs scan order");
    assert!(!probed_out.is_empty());
    assert_execute_matches_engines(&db, &plan, "indexed-under-write-load");
}

#[test]
fn coerced_literals_never_probe_the_index() {
    // Int32 column, Float64 literal: the engines coerce the comparison
    // (3.0 == 3), but the index keys integers by value — a probe would
    // silently miss every main-store hit. The planner must leave this
    // shape on the scan path.
    let db = Database::new();
    db.create_table("t", Schema::new(vec![ColumnDef::new("k", DataType::Int32)]))
        .unwrap();
    for i in 0..500 {
        db.insert("t", &[Value::Int32(i)]).unwrap();
    }
    db.merge("t").unwrap();
    db.create_index("t", "k", IndexKind::Hash).unwrap();
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).eq(Expr::lit(3.0)))
        .build();
    assert!(
        !db.plan_query(&plan).unwrap().access().is_indexed(),
        "float literal must not be probed against an int index"
    );
    let fixed = db.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(fixed.len(), 1, "engines coerce 3.0 == 3");
    let routed = db.execute(&plan).unwrap();
    assert_eq!(routed.rows, fixed.rows);
    let probed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(probed.rows, fixed.rows);
}

#[test]
fn range_probe_keeps_i64_extreme_keys() {
    // An RB-tree can index i64::MIN; `col <= 0` must not skip it.
    let db = Database::new();
    db.create_table("t", Schema::new(vec![ColumnDef::new("k", DataType::Int64)]))
        .unwrap();
    for v in [i64::MIN, -5, 0, 5, i64::MAX] {
        db.insert("t", &[Value::Int64(v)]).unwrap();
    }
    db.merge("t").unwrap();
    db.create_index("t", "k", IndexKind::RBTree).unwrap();
    for plan in [
        QueryBuilder::scan("t")
            .filter(Expr::col(0).le(Expr::lit(0i64)))
            .build(),
        QueryBuilder::scan("t")
            .filter(Expr::col(0).lt(Expr::lit(i64::MIN)))
            .build(),
        QueryBuilder::scan("t")
            .filter(Expr::col(0).gt(Expr::lit(i64::MAX)))
            .build(),
        QueryBuilder::scan("t")
            .filter(Expr::col(0).ge(Expr::lit(i64::MAX)))
            .build(),
    ] {
        let fixed = db.run(&plan, EngineKind::Compiled).unwrap();
        let probed = db.run_indexed(&plan, EngineKind::Compiled).unwrap();
        assert_eq!(probed.rows, fixed.rows, "plan {plan:?}");
        let routed = db.execute(&plan).unwrap();
        routed.assert_same(&fixed, "execute vs compiled at i64 extremes");
    }
}

#[test]
fn point_probe_preferred_over_range_whatever_the_conjunct_order() {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("v", DataType::Int64),
            ColumnDef::new("k", DataType::Int32),
        ]),
    )
    .unwrap();
    for i in 0..2_000i64 {
        db.insert("t", &[Value::Int64(i), Value::Int32((i % 400) as i32)])
            .unwrap();
    }
    db.merge("t").unwrap();
    db.create_index("t", "v", IndexKind::RBTree).unwrap();
    db.create_index("t", "k", IndexKind::Hash).unwrap();
    // the range conjunct comes first; the point probe must still win
    let plan = QueryBuilder::scan("t")
        .filter(
            Expr::col(0)
                .lt(Expr::lit(1_900i64))
                .and(Expr::col(1).eq(Expr::lit(5))),
        )
        .build();
    let phys = db.plan_query(&plan).unwrap();
    assert!(
        matches!(
            phys.access(),
            mrdb::core::AccessPath::IndexPoint { column: 1, .. }
        ),
        "expected a point probe on k:\n{}",
        phys.explain()
    );
    let routed = db.execute(&plan).unwrap();
    let fixed = db.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(routed.rows, fixed.rows);
}

#[test]
fn selective_residual_does_not_make_a_wide_range_probe_look_cheap() {
    // `v < huge AND k = 5`: the probe fetches every `v < huge` row; the
    // selective equality filters only afterwards. Pricing hits from the
    // full predicate would make the near-full-table probe look cheap.
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("v", DataType::Int64),
            ColumnDef::new("k", DataType::Int32),
        ]),
    )
    .unwrap();
    for i in 0..30_000i64 {
        db.insert("t", &[Value::Int64(i), Value::Int32((i % 500) as i32)])
            .unwrap();
    }
    db.merge("t").unwrap();
    db.create_index("t", "v", IndexKind::RBTree).unwrap(); // only index
    let plan = QueryBuilder::scan("t")
        .filter(
            Expr::col(0)
                .lt(Expr::lit(29_000i64))
                .and(Expr::col(1).eq(Expr::lit(5))),
        )
        .build();
    let phys = db.plan_query(&plan).unwrap();
    assert!(
        !phys.access().is_indexed(),
        "a near-full-table range probe must lose to the scan:\n{}",
        phys.explain()
    );
    let routed = db.execute(&plan).unwrap();
    let fixed = db.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(routed.rows, fixed.rows);
}

#[test]
fn explain_snapshot() {
    let db = Database::new();
    db.register(microbench::generate(
        1_000,
        0.01,
        microbench::pdsm_layout(),
        5,
    ));
    db.create_index("R", "A", IndexKind::Hash).unwrap();
    let plan = QueryBuilder::scan("R")
        .filter_with_selectivity(Expr::col(0).eq(Expr::lit(0)), 0.01)
        .project(vec![Expr::col(1)])
        .build();
    // a pinned thread count keeps the parallel alternative deterministic
    let planner = Planner {
        threads: 4,
        ..Default::default()
    };
    let phys = planner.plan(&db, &plan).unwrap();
    let expected = "\
physical plan
  engine: compiled
  pipeline 0: R via index probe col 0 = 0 — est 10 of 1000 rows (+0 delta)
  cost: 2485 cycles (mem 985 + cpu 1500), est 10 output rows
  alternatives: index=2485 scan/compiled=7252 scan/vectorized=12277 scan/bulk=24537 scan/parallel=39813 scan/volcano=124837
";
    assert_eq!(
        phys.explain(),
        expected,
        "explain drifted:\n{}",
        phys.explain()
    );
    // the database-level EXPLAIN goes through the cache/default planner
    let rendered = db.explain(&plan).unwrap();
    assert!(rendered.contains("index probe col 0 = 0"), "{rendered}");
    assert!(rendered.contains("cost:"), "{rendered}");
}

#[test]
fn observed_workload_captures_routed_traffic() {
    let db = Database::new();
    db.register(microbench::generate(500, 0.05, Layout::row(16), 3));
    let q1 = microbench::query(0.05);
    let q2 = QueryBuilder::scan("R").build();
    for _ in 0..3 {
        db.execute(&q1).unwrap();
    }
    db.execute(&q2).unwrap();
    // forced-engine runs are not traffic the planner observed
    db.run(&q2, EngineKind::Compiled).unwrap();

    let w = db.observed_workload();
    assert_eq!(w.queries.len(), 2);
    let f1 = w.queries.iter().find(|q| q.plan == q1).unwrap().frequency;
    let f2 = w.queries.iter().find(|q| q.plan == q2).unwrap().frequency;
    assert_eq!(f1, 3.0);
    assert_eq!(f2, 1.0);

    // the captured workload feeds the advisor: the narrow query should
    // pull the advised layout away from plain row storage
    let report = LayoutAdvisor::default().advise_observed(&db);
    assert_eq!(report.tables.len(), 1);
    assert!(report.tables[0].estimated_cost <= report.tables[0].row_cost);

    db.clear_observed_workload();
    assert!(db.observed_workload().queries.is_empty());
}

#[test]
fn plan_cache_keyed_on_generations_and_catalog() {
    let db = Database::new();
    db.register(microbench::generate(800, 0.05, Layout::row(16), 3));
    let plan = microbench::query(0.05);

    let p1 = db.plan_query(&plan).unwrap();
    let p2 = db.plan_query(&plan).unwrap();
    assert!(Arc::ptr_eq(&p1, &p2), "stable state must hit the cache");

    // DML moves the delta fingerprint → replan
    db.insert("R", &(0..16).map(Value::Int32).collect::<Vec<_>>())
        .unwrap();
    let p3 = db.plan_query(&plan).unwrap();
    assert!(!Arc::ptr_eq(&p2, &p3), "delta must invalidate");

    // merge bumps the generation → replan
    db.merge("R").unwrap();
    let p4 = db.plan_query(&plan).unwrap();
    assert!(!Arc::ptr_eq(&p3, &p4), "merge must invalidate");

    // catalog change (new index) → replan, and the new plan may now probe
    db.create_index("R", "A", IndexKind::Hash).unwrap();
    let p5 = db.plan_query(&plan).unwrap();
    assert!(!Arc::ptr_eq(&p4, &p5), "index creation must invalidate");
}

#[test]
fn snapshot_execute_picks_an_engine_and_agrees() {
    let db = Database::new();
    db.register(microbench::generate(1_500, 0.05, Layout::column(16), 7));
    churn(&db, "R");
    let snap = db.snapshot();
    let plan = microbench::query(0.05);
    let routed = snap.execute(&plan).unwrap();
    let fixed = snap.run(&plan, EngineKind::Compiled).unwrap();
    routed.assert_same(&fixed, "snapshot execute vs compiled");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The invariant the tentpole demands: whenever the planner picks an
    /// index path, the model scored it no worse than the best full scan —
    /// and execution through the planner stays identical to the engines.
    #[test]
    fn planner_never_picks_a_costlier_index_path(
        n in 200usize..1500,
        key_mod in 1i32..60,
        point in 0i32..80,
        bound in 0i32..2000,
        delta in 0usize..30,
    ) {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int32),
                ColumnDef::new("v", DataType::Int32),
            ]),
        )
        .unwrap();
        for i in 0..n as i32 {
            db.insert("t", &[Value::Int32(i % key_mod), Value::Int32(i)]).unwrap();
        }
        db.merge("t").unwrap();
        db.create_index("t", "k", IndexKind::Hash).unwrap();
        db.create_index("t", "v", IndexKind::RBTree).unwrap();
        for i in 0..delta as i32 {
            db.insert("t", &[Value::Int32(i % key_mod), Value::Int32(-i)]).unwrap();
        }
        let plans = [
            QueryBuilder::scan("t").filter(Expr::col(0).eq(Expr::lit(point))).build(),
            QueryBuilder::scan("t").filter(Expr::col(1).lt(Expr::lit(bound))).build(),
            QueryBuilder::scan("t")
                .filter(Expr::col(1).ge(Expr::lit(bound)))
                .project(vec![Expr::col(0)])
                .build(),
        ];
        for plan in &plans {
            let phys = db.plan_query(plan).unwrap();
            if phys.access().is_indexed() {
                let scan = phys.best_scan_cost().expect("scan alternatives always priced");
                prop_assert!(
                    phys.cost.total() <= scan + 1e-9,
                    "index path scored worse than scan: {} vs {scan}\n{}",
                    phys.cost.total(),
                    phys.explain()
                );
            }
            let routed = db.execute(plan).unwrap();
            let fixed = db.run(plan, EngineKind::Compiled).unwrap();
            prop_assert_eq!(&routed.rows, &fixed.rows, "execute vs compiled scan order");
        }
    }
}
