//! Property tests on the cache simulator (DESIGN.md §7): conservation of
//! accesses, capacity discipline, prefetcher sanity, determinism.

use mrdb::cachesim::{Cache, CacheConfig, SimConfig, SimHierarchy};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (5u32..10, 1usize..8, 2u32..12).prop_map(|(line_exp, assoc, sets_exp)| CacheConfig {
        line: 1 << line_exp,
        assoc,
        capacity: (1u64 << line_exp) * assoc as u64 * (1u64 << sets_exp),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hits_plus_misses_equals_accesses(
        cfg in arb_config(),
        addrs in proptest::collection::vec(0u64..1_000_000, 1..400),
    ) {
        let mut c = Cache::new(cfg);
        let mut hits = 0u64;
        for &a in &addrs {
            if c.access(a) {
                hits += 1;
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(hits + s.demand_misses, s.accesses);
    }

    #[test]
    fn repeat_access_always_hits(cfg in arb_config(), addr in 0u64..1_000_000) {
        let mut c = Cache::new(cfg);
        c.access(addr);
        prop_assert!(c.access(addr), "immediate re-access must hit");
        prop_assert!(c.probe(addr));
    }

    #[test]
    fn working_set_within_capacity_never_misses_twice(
        cfg in arb_config(),
        n_lines in 1u64..64,
        rounds in 2usize..6,
    ) {
        // touch `n_lines` distinct lines that all fit, repeatedly: only the
        // first round may miss. Use sequential lines so set conflicts can't
        // exceed associativity when the whole set fits.
        let lines = n_lines.min(cfg.capacity / cfg.line / 2).max(1);
        let mut c = Cache::new(cfg);
        for _ in 0..rounds {
            for l in 0..lines {
                c.access_line(l);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.demand_misses, lines, "only cold misses allowed");
    }

    #[test]
    fn prefetch_fills_bounded_by_observations(
        stride in 1u64..4,
        n in 10u64..2_000,
    ) {
        let mut sim = SimHierarchy::new(SimConfig::nehalem());
        for i in 0..n {
            sim.access(i * stride * 64, 8);
        }
        let s = sim.llc_stats();
        // adjacent-line + stride prefetcher can issue at most 2 fills per
        // demand access reaching the LLC
        prop_assert!(s.prefetch_fills <= 2 * s.accesses);
        // conservation at the LLC
        prop_assert!(s.prefetched_hits <= s.prefetch_fills);
    }

    #[test]
    fn simulation_is_deterministic(
        addrs in proptest::collection::vec(0u64..10_000_000, 1..300),
    ) {
        let run = || {
            let mut sim = SimHierarchy::new(SimConfig::nehalem());
            for &a in &addrs {
                sim.access(a, 8);
            }
            sim.stats()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn disabling_prefetch_only_moves_hits_to_misses(
        addrs in proptest::collection::vec(0u64..100_000, 1..300),
    ) {
        let run = |cfg: SimConfig| {
            let mut sim = SimHierarchy::new(cfg);
            for &a in &addrs {
                sim.access(a, 8);
            }
            sim.llc_stats()
        };
        let with = run(SimConfig::nehalem());
        let without = run(SimConfig::nehalem_no_prefetch());
        prop_assert_eq!(with.accesses, without.accesses);
        prop_assert_eq!(without.prefetched_hits, 0);
        // without prefetching there can only be more demand misses
        prop_assert!(with.demand_misses <= without.demand_misses);
    }
}
