//! Crash-recovery integration tests: a durable [`Database`] killed
//! mid-workload (simulated by truncating or corrupting its WAL at an
//! arbitrary byte — exactly what a `kill -9` mid-append leaves behind)
//! must reopen to a state **byte-identical** to a surviving in-memory
//! replica that stopped at the last durable record — for every engine and
//! every storage layout.

use mrdb::prelude::*;
use mrdb::store::{flip_bit, truncate_at};
use mrdb::workloads::microbench::{self, N_COLS};
use mrdb::workloads::mixed::{microbench_mix, MixedOp};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pdsm-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &Path) -> Database {
    Database::open_with(
        DurabilityConfig::new(dir).with_fsync(FsyncMode::Off),
        MaintenanceConfig {
            mode: MaintenanceMode::Off,
            ..MaintenanceConfig::default()
        },
    )
    .unwrap()
}

fn memory_db() -> Database {
    Database::with_maintenance(MaintenanceConfig {
        mode: MaintenanceMode::Off,
        ..MaintenanceConfig::default()
    })
}

/// Apply one mixed-workload write through a database's normal DML path,
/// maintaining the driver's live-id set. Returns true iff the op reached
/// the table (and therefore emitted exactly one WAL record when durable).
fn apply_op(db: &Database, live: &mut Vec<usize>, op: &MixedOp) -> bool {
    db.with_table_write("R", |vt| match op {
        MixedOp::Read { .. } => false,
        MixedOp::Insert { rows } => {
            live.extend(vt.insert_batch(rows).unwrap());
            true
        }
        MixedOp::Update {
            row_hint,
            col,
            value,
        } => {
            if live.is_empty() {
                return false;
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            live[slot] = vt.update(live[slot], *col, value).unwrap();
            true
        }
        MixedOp::Delete { row_hint } => {
            if live.is_empty() {
                return false;
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            vt.delete(live[slot]).unwrap();
            live.swap_remove(slot);
            true
        }
    })
    .unwrap()
}

/// The probe battery: full-column aggregate, selective filter, projection.
fn probes() -> Vec<LogicalPlan> {
    vec![
        microbench::query(0.1),
        QueryBuilder::scan("R")
            .filter(Expr::col(0).gt(Expr::lit(0)))
            .project(vec![Expr::col(0), Expr::col(3)])
            .build(),
        QueryBuilder::scan("R")
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(1)),
                ],
            )
            .build(),
    ]
}

/// Assert `recovered` and `replica` answer every probe identically on
/// every engine that supports the plan shape.
fn assert_identical(recovered: &Database, replica: &Database, ctx: &str) {
    for (i, plan) in probes().iter().enumerate() {
        for kind in EngineKind::all() {
            if !kind.supports(plan) {
                continue;
            }
            let a = recovered
                .run(plan, kind)
                .unwrap_or_else(|e| panic!("{ctx}: probe {i} on recovered/{kind:?}: {e}"));
            let b = replica
                .run(plan, kind)
                .unwrap_or_else(|e| panic!("{ctx}: probe {i} on replica/{kind:?}: {e}"));
            a.assert_same(&b, &format!("{ctx}: probe {i}, {kind:?}"));
        }
    }
}

fn layouts() -> Vec<(&'static str, Layout)> {
    // Row, column, and a hybrid grouping (hot pair + cold rest) — the
    // paper's three layout classes.
    let mut groups = vec![vec![0usize, 1]];
    groups.extend((2..N_COLS).map(|c| vec![c]));
    vec![
        ("row", Layout::row(N_COLS)),
        ("column", Layout::column(N_COLS)),
        ("hybrid", Layout::from_groups(groups, N_COLS).unwrap()),
    ]
}

/// The tentpole acceptance test: seed a table (its generation-0 blob is
/// the checkpoint), run a write-heavy mixed workload through the durable
/// DML path, kill the "process" by truncating the WAL at several
/// arbitrary byte offsets, recover, and check byte-identity against an
/// in-memory replica driven to the last whole record — per layout, per
/// engine.
#[test]
fn crash_recovery_matches_surviving_replica() {
    for (layout_name, layout) in layouts() {
        let dir = tmpdir(&format!("crash-{layout_name}"));
        let base = microbench::generate(300, 0.1, layout.clone(), 7);
        {
            let db = open_durable(&dir);
            db.register(base.clone());
            let workload = microbench_mix(120, 0.0, 0.1, 11);
            let mut live: Vec<usize> = (0..db.get_table("R").unwrap().len()).collect();
            for op in &workload.ops {
                apply_op(&db, &mut live, op);
            }
        } // drop = process exit; fsync Off means the OS still has the bytes
        let wal = dir.join("R").join("wal.0.log");
        let full = std::fs::metadata(&wal).unwrap().len();
        assert!(full > 0, "{layout_name}: workload must have logged");

        // Crash points: clean tail, mid-record tears, and (almost) everything
        // torn away. Recovery must stop at the last whole record each time.
        for cut in [full, full - 3, full / 2, 9] {
            truncate_at(&wal, cut).unwrap();
            let recovered = open_durable(&dir);
            let replayed = recovered.storage_stats().recovery_replay_ops;

            // Drive the replica to exactly the ops that became durable.
            let replica = memory_db();
            replica.register(base.clone());
            let workload = microbench_mix(120, 0.0, 0.1, 11);
            let mut live: Vec<usize> = (0..replica.get_table("R").unwrap().len()).collect();
            let mut durable_ops = 0u64;
            for op in &workload.ops {
                if durable_ops == replayed {
                    break;
                }
                if apply_op(&replica, &mut live, op) {
                    durable_ops += 1;
                }
            }
            assert_eq!(
                durable_ops, replayed,
                "{layout_name}@{cut}: replay count exceeds the workload"
            );
            assert_identical(&recovered, &replica, &format!("{layout_name}@{cut}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A flipped bit in the WAL tail (a torn sector, not just a short write)
/// is also a crash point: recovery keeps every record before it and
/// discards the rest — it never errors and never replays garbage.
#[test]
fn corrupt_wal_tail_recovers_to_prefix() {
    let dir = tmpdir("bitflip");
    {
        let db = open_durable(&dir);
        db.create_table(
            "R",
            Schema::new(vec![
                ColumnDef::new("a", DataType::Int32),
                ColumnDef::new("b", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..40 {
            db.insert("R", &[Value::Int32(i), Value::Int64(i as i64)])
                .unwrap();
        }
    }
    let wal = dir.join("R").join("wal.0.log");
    let full = std::fs::metadata(&wal).unwrap().len();
    flip_bit(&wal, full * 3 / 4).unwrap();
    let db = open_durable(&dir);
    let replayed = db.storage_stats().recovery_replay_ops;
    assert!(replayed < 40, "corruption must cut the replay short");
    let count = QueryBuilder::scan("R")
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = db.run(&count, EngineKind::Compiled).unwrap();
    assert_eq!(out.rows[0][0], Value::Int64(replayed as i64));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A half-written checkpoint temp blob (crash mid-merge, before the
/// rename) must be scrubbed on recovery and never treated as a committed
/// main store.
#[test]
fn half_written_checkpoint_temp_is_ignored() {
    let dir = tmpdir("half-ckpt");
    {
        let db = open_durable(&dir);
        db.create_table("R", Schema::new(vec![ColumnDef::new("a", DataType::Int32)]))
            .unwrap();
        for i in 0..25 {
            db.insert("R", &[Value::Int32(i)]).unwrap();
        }
    }
    let tmp = dir.join("R").join("main.tmp.3.tbl");
    std::fs::write(&tmp, b"PDSMgarbage-half-written").unwrap();
    let db = open_durable(&dir);
    assert!(!tmp.exists(), "recovery must scrub the temp blob");
    let count = QueryBuilder::scan("R")
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = db.run(&count, EngineKind::Compiled).unwrap();
    assert_eq!(out.rows[0][0], Value::Int64(25));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint-on-merge bounds recovery: after a merge, replay is O(ops
/// since the merge) no matter how much history preceded it — asserted by
/// counting the replayed ops exactly.
#[test]
fn merge_then_recover_replays_only_the_tail() {
    let dir = tmpdir("merge-recover");
    {
        let db = open_durable(&dir);
        db.register(microbench::generate(400, 0.1, Layout::column(N_COLS), 3));
        let workload = microbench_mix(200, 0.0, 0.1, 5);
        let mut live: Vec<usize> = (0..db.get_table("R").unwrap().len()).collect();
        for op in &workload.ops {
            apply_op(&db, &mut live, op);
        }
        db.merge("R").unwrap(); // checkpoint: WAL truncated to the cut
        assert_eq!(db.storage_stats().wal_live_bytes, 0);
        // Exactly three post-checkpoint ops.
        db.insert("R", &vec![Value::Int32(-1); N_COLS]).unwrap();
        db.insert("R", &vec![Value::Int32(-2); N_COLS]).unwrap();
        db.delete("R", 0).unwrap();
    }
    let db = open_durable(&dir);
    assert_eq!(
        db.storage_stats().recovery_replay_ops,
        3,
        "replay must be O(ops since the last checkpoint)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recovered row ids line up with the pre-crash table: an id resolved
/// before the crash still addresses the same logical row afterwards
/// (updates through recovered ids hit the right cells).
#[test]
fn recovered_row_ids_match_pre_crash_ids() {
    let dir = tmpdir("row-ids");
    let probe = QueryBuilder::scan("R")
        .filter(Expr::col(0).eq(Expr::lit(5)))
        .project(vec![Expr::col(1)])
        .build();
    let pre;
    {
        let db = open_durable(&dir);
        db.create_table(
            "R",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int32),
                ColumnDef::new("v", DataType::Int64),
            ]),
        )
        .unwrap();
        for i in 0..30 {
            db.insert("R", &[Value::Int32(i), Value::Int64(0)]).unwrap();
        }
        db.merge("R").unwrap();
        db.update("R", 5, "v", &Value::Int64(77)).unwrap();
        pre = db.run(&probe, EngineKind::Compiled).unwrap();
    }
    let db = open_durable(&dir);
    let post = db.run(&probe, EngineKind::Compiled).unwrap();
    pre.assert_same(&post, "row 5 after recovery");
    assert_eq!(post.rows, vec![vec![Value::Int64(77)]]);
    let _ = std::fs::remove_dir_all(&dir);
}
