//! Property tests for the result cache's one contract: with caching on,
//! every `execute` answer is byte-identical to the cache-off answer — and
//! to every engine's forced fresh run — under random interleavings of
//! queries, DML, and merges, across layouts. A `DbSnapshot` pinned before
//! the churn must keep answering from its cut, never from a newer cached
//! result.

use mrdb::prelude::*;
use mrdb::workloads::microbench;
use proptest::prelude::*;

/// Base-table size: big enough that repeated aggregates clear the
/// planner's admission floor, small enough to keep the suite quick.
const BASE_ROWS: usize = 20_000;

/// One random step of the interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Execute query `idx % POOL` on both databases and compare.
    Query { idx: usize },
    /// Insert a row (`a` selects whether it matches the `A = 0` family).
    Insert { a: i32, v: i32 },
    /// Delete a live row (hint indexes the live set modulo its size).
    Delete { hint: usize },
    /// Synchronous merge: bumps the generation under the cache.
    Merge,
}

fn arb_op() -> BoxedStrategy<Op> {
    union(vec![
        (0usize..64).prop_map(|idx| Op::Query { idx }).boxed(),
        (0i32..4, 0i32..1000)
            .prop_map(|(a, v)| Op::Insert { a: -a, v })
            .boxed(),
        (0usize..1000).prop_map(|hint| Op::Delete { hint }).boxed(),
        Just(Op::Merge).boxed(),
    ])
}

/// The query pool: filtered aggregates and filtered scans over `R`, all
/// single-table so fragment reuse can engage on repeats. The `bool` says
/// whether the query's output row order is deterministic (scans, global
/// aggregates) — grouped aggregates may legitimately emit groups in any
/// order (hash iteration, parallel partition merge), so those compare
/// normalized instead of byte-for-byte.
fn pool() -> Vec<(LogicalPlan, bool)> {
    vec![
        (
            QueryBuilder::scan("R")
                .filter(Expr::col(0).eq(Expr::lit(0)))
                .aggregate(
                    vec![],
                    (1..=4)
                        .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                        .collect(),
                )
                .build(),
            true,
        ),
        (
            QueryBuilder::scan("R")
                .filter(Expr::col(1).lt(Expr::lit(500)))
                .aggregate(
                    vec![Expr::col(2)],
                    vec![
                        AggExpr::count_star(),
                        AggExpr::new(AggFunc::Sum, Expr::col(3)),
                    ],
                )
                .build(),
            false,
        ),
        (
            QueryBuilder::scan("R")
                .filter(Expr::col(0).eq(Expr::lit(0)))
                .build(),
            true,
        ),
        (
            QueryBuilder::scan("R")
                .filter(
                    Expr::col(2)
                        .ge(Expr::lit(250))
                        .and(Expr::col(3).lt(Expr::lit(750))),
                )
                .aggregate(vec![], vec![AggExpr::count_star()])
                .build(),
            true,
        ),
    ]
}

/// Row multiset under a total order, for order-insensitive comparison.
fn norm(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut v = rows.to_vec();
    v.sort_by_cached_key(|r| format!("{r:?}"));
    v
}

fn delete_one(db: &Database, hint: usize) {
    // Resolve against the live set under the table's write lock, exactly
    // like the concurrent-DML suite does.
    db.with_table_write("R", |vt| {
        let live: Vec<usize> = (0..vt.main().len() + vt.delta_rows())
            .filter(|&i| vt.is_visible(i))
            .collect();
        if !live.is_empty() {
            vt.delete(live[hint % live.len()]).unwrap();
        }
    })
    .unwrap();
}

fn insert_row(db: &Database, a: i32, v: i32) {
    let mut row = vec![Value::Int32(v); 16];
    row[0] = Value::Int32(a);
    db.insert("R", &row).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cached_equals_uncached_under_churn(ops in proptest::collection::vec(arb_op(), 1..30)) {
        for (name, layout) in microbench::layouts() {
            let on = Database::new();
            on.register(microbench::generate(BASE_ROWS, 0.01, layout.clone(), 11));
            // pinned on, so the property holds even under PDSM_RESULT_CACHE=off
            on.set_result_cache(ResultCacheConfig::default());
            let off = Database::new();
            off.register(microbench::generate(BASE_ROWS, 0.01, layout.clone(), 11));
            off.set_result_cache(ResultCacheConfig { enabled: false, ..Default::default() });
            let queries = pool();

            for op in &ops {
                match op {
                    Op::Query { idx } => {
                        let (plan, ordered) = &queries[idx % queries.len()];
                        let a = on.execute(plan).unwrap();
                        let b = off.execute(plan).unwrap();
                        if *ordered {
                            prop_assert_eq!(&a.rows, &b.rows, "{}: cache-on vs cache-off", name);
                        } else {
                            prop_assert_eq!(
                                norm(&a.rows), norm(&b.rows),
                                "{}: cache-on vs cache-off (normalized)", name
                            );
                        }
                        // ...and every engine agrees with the cached answer
                        for kind in EngineKind::all() {
                            if !kind.supports(plan) {
                                continue;
                            }
                            let forced = on.run(plan, kind).unwrap();
                            forced.clone().into_output().assert_same(
                                &a.clone().into_output(),
                                &format!("{name}: cached vs {kind:?}"),
                            );
                        }
                    }
                    Op::Insert { a, v } => {
                        insert_row(&on, *a, *v);
                        insert_row(&off, *a, *v);
                    }
                    Op::Delete { hint } => {
                        delete_one(&on, *hint);
                        delete_one(&off, *hint);
                    }
                    Op::Merge => {
                        on.merge_all().unwrap();
                        off.merge_all().unwrap();
                    }
                }
            }
            // terminal state: both databases hold identical rows
            let scan = QueryBuilder::scan("R").build();
            prop_assert_eq!(
                on.execute(&scan).unwrap().rows,
                off.execute(&scan).unwrap().rows,
                "{}: terminal scan", name
            );
        }
    }

    #[test]
    fn pinned_snapshot_never_reads_a_cached_future(ops in proptest::collection::vec(arb_op(), 1..25)) {
        let db = Database::new();
        db.register(microbench::generate(BASE_ROWS, 0.01, Layout::row(16), 23));
        db.set_result_cache(ResultCacheConfig::default());
        let queries = pool();
        // Warm the cache, then pin the cut and record its answers.
        let expected: Vec<QueryResult> =
            queries.iter().map(|(q, _)| db.execute(q).unwrap()).collect();
        let pinned = db.snapshot();
        // Churn the live database — every step re-caches fresh results.
        for op in &ops {
            match op {
                Op::Query { idx } => {
                    db.execute(&queries[idx % queries.len()].0).unwrap();
                }
                Op::Insert { a, v } => insert_row(&db, *a, *v),
                Op::Delete { hint } => delete_one(&db, *hint),
                Op::Merge => db.merge_all().unwrap(),
            }
        }
        // The snapshot still answers every pool query from its cut.
        for ((q, ordered), want) in queries.iter().zip(&expected) {
            let got = pinned.execute(q).unwrap();
            if *ordered {
                prop_assert_eq!(&got.rows, &want.rows, "snapshot drifted");
            } else {
                prop_assert_eq!(norm(&got.rows), norm(&want.rows), "snapshot drifted (normalized)");
            }
        }
    }
}
