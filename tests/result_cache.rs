//! The mid-query result cache, end to end: repeat executes hit, DML and
//! merges invalidate through the `(generation, delta_ops)` tokens, cached
//! filtered-scan fragments serve later aggregates, the cost model's
//! admission test bypasses cheap plans, `EXPLAIN` reports the live cache
//! status, eviction respects the byte budget, and `DbSnapshot` execution
//! never sees a post-DML cached result.

use mrdb::prelude::*;
use mrdb::workloads::microbench;

/// Rows and selectivity big enough that the planner prices re-execution
/// far above copy-out — i.e. the plan is admitted.
const BIG: usize = 50_000;

fn big_db() -> Database {
    let db = Database::new();
    db.register(microbench::generate(BIG, 0.01, Layout::row(16), 7));
    // Pin the cache on: this suite must test it even when the whole test
    // run is executed under PDSM_RESULT_CACHE=off (the CI off-leg).
    db.set_result_cache(ResultCacheConfig::default());
    db
}

/// A row that matches `A = 0` and moves every `SUM(B..E)` answer.
fn matching_row() -> Vec<Value> {
    let mut row = vec![Value::Int32(9999); 16];
    row[0] = Value::Int32(0);
    row
}

/// `SUM(B..E)` under `A = lit` — expensive to compute, one row out.
fn agg(lit: i32) -> LogicalPlan {
    QueryBuilder::scan("R")
        .filter(Expr::col(0).eq(Expr::lit(lit)))
        .aggregate(
            vec![],
            (1..=4)
                .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                .collect(),
        )
        .build()
}

#[test]
fn repeated_query_hits_and_stays_correct() {
    let db = big_db();
    let plan = agg(0);
    let first = db.execute(&plan).unwrap();
    let second = db.execute(&plan).unwrap();
    assert_eq!(first.rows, second.rows);
    // the cached answer is byte-identical to a forced fresh execution
    let fresh = db.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(second.rows, fresh.rows);
    let s = db.cache_stats().result;
    assert!(s.insertions >= 1, "{s:?}");
    assert!(s.hits >= 1, "{s:?}");
}

#[test]
fn dml_and_merge_invalidate_through_tokens() {
    let db = big_db();
    let plan = agg(0);
    let before = db.execute(&plan).unwrap();
    let _ = db.execute(&plan).unwrap(); // now resident + hit
                                        // DML moves delta_ops → the entry must die, the answer must move
                                        // (A = 0 matches the filter; B..E are nonzero so the sums change)
    db.insert("R", &matching_row()).unwrap();
    let after = db.execute(&plan).unwrap();
    assert_ne!(before.rows, after.rows, "cache served a stale aggregate");
    assert_eq!(
        after.rows,
        db.run(&plan, EngineKind::Volcano).unwrap().rows,
        "post-DML execute diverged from a fresh engine run"
    );
    let s1 = db.cache_stats().result;
    assert!(s1.invalidations >= 1, "{s1:?}");
    // a merge bumps the generation: same story, same answer
    let _ = db.execute(&plan).unwrap(); // re-admit post-DML result
    db.merge_all().unwrap();
    let merged = db.execute(&plan).unwrap();
    assert_eq!(merged.rows, after.rows);
    let s2 = db.cache_stats().result;
    assert!(s2.invalidations > s1.invalidations, "{s2:?}");
}

#[test]
fn cached_fragment_serves_a_later_aggregate() {
    let db = big_db();
    let pred = Expr::col(0).eq(Expr::lit(0));
    // 1. run (and cache) the filtered scan — a full-schema Select(Scan)
    let frag = QueryBuilder::scan("R").filter(pred.clone()).build();
    let frag_rows = db.execute(&frag).unwrap();
    assert!(db.cache_stats().result.insertions >= 1);
    // 2. an aggregate over the same fragment is served from it
    let consumer = QueryBuilder::scan("R")
        .filter(pred)
        .aggregate(
            vec![],
            (1..=4)
                .map(|c| AggExpr::new(AggFunc::Sum, Expr::col(c)))
                .collect(),
        )
        .build();
    let out = db.execute(&consumer).unwrap();
    let s = db.cache_stats().result;
    assert!(s.fragment_hits >= 1, "fragment not reused: {s:?}");
    // byte-identical to computing from scratch
    assert_eq!(
        out.rows,
        db.run(&consumer, EngineKind::Compiled).unwrap().rows
    );
    // sanity: the fragment itself had the expected selectivity
    assert_eq!(frag_rows.rows.len(), (BIG as f64 * 0.01) as usize);
}

#[test]
fn cheap_plans_bypass_the_cache() {
    let db = Database::new();
    db.register(microbench::generate(200, 0.05, Layout::row(16), 3));
    db.set_result_cache(ResultCacheConfig::default());
    let plan = agg(0);
    for _ in 0..3 {
        db.execute(&plan).unwrap();
    }
    let s = db.cache_stats().result;
    assert_eq!(s.hits, 0, "{s:?}");
    assert_eq!(s.insertions, 0, "{s:?}");
    assert!(s.bypasses >= 3, "{s:?}");
    let rendered = db.explain(&plan).unwrap();
    assert!(rendered.contains("cache: bypass"), "{rendered}");
}

#[test]
fn explain_reports_live_cache_status_without_counting() {
    let db = big_db();
    let plan = agg(0);
    let miss = db.explain(&plan).unwrap();
    assert!(miss.contains("cache: miss"), "{miss}");
    db.execute(&plan).unwrap();
    let hits_before = db.cache_stats().result.hits;
    let hit = db.explain(&plan).unwrap();
    assert!(hit.contains("cache: hit"), "{hit}");
    // the explain probe is a silent peek — no counter moved
    assert_eq!(db.cache_stats().result.hits, hits_before);
    // SELECT * moves its whole input: recompute beats copy → bypass
    let all = QueryBuilder::scan("R").build();
    let rendered = db.explain(&all).unwrap();
    assert!(rendered.contains("cache: bypass"), "{rendered}");
}

#[test]
fn disabling_the_cache_disables_everything_but_nothing_breaks() {
    let db = big_db();
    db.set_result_cache(ResultCacheConfig {
        enabled: false,
        ..Default::default()
    });
    let plan = agg(0);
    let a = db.execute(&plan).unwrap();
    let b = db.execute(&plan).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.rows, db.run(&plan, EngineKind::Bulk).unwrap().rows);
    let s = db.cache_stats().result;
    assert!(!s.enabled);
    assert_eq!((s.hits, s.insertions, s.entries), (0, 0, 0), "{s:?}");
}

#[test]
fn byte_budget_bounds_residency() {
    let db = big_db();
    db.set_result_cache(ResultCacheConfig {
        enabled: true,
        budget_bytes: 1024,
    });
    // Twelve distinct admitted plans: each filters a *data* column (values
    // 0..1000, so zone maps cannot prune the scan to a free plan the way
    // they do for impossible `A = lit` predicates) and emits one row.
    for c in 1..=12 {
        let plan = QueryBuilder::scan("R")
            .filter(Expr::col(c).lt(Expr::lit(500)))
            .aggregate(
                vec![],
                (1..=4)
                    .map(|a| AggExpr::new(AggFunc::Sum, Expr::col(a)))
                    .collect(),
            )
            .build();
        db.execute(&plan).unwrap();
    }
    let s = db.cache_stats().result;
    assert!(s.insertions >= 8, "plans not admitted: {s:?}");
    assert!(s.bytes <= 1024, "over budget: {s:?}");
    assert!(s.evictions > 0, "{s:?}");
    assert!(s.entries < 12, "{s:?}");
}

#[test]
fn snapshots_never_see_post_dml_cached_results() {
    let db = big_db();
    let plan = agg(0);
    let pinned = db.snapshot();
    let original = db.execute(&plan).unwrap();
    // DML + re-execute: the live cache now holds the *new* answer
    db.insert("R", &matching_row()).unwrap();
    let updated = db.execute(&plan).unwrap();
    let _ = db.execute(&plan).unwrap(); // cached hit on the new answer
    assert_ne!(original.rows, updated.rows);
    // the pre-DML snapshot still answers from its pinned cut
    let snap_out = pinned.execute(&plan).unwrap();
    assert_eq!(
        snap_out.rows, original.rows,
        "snapshot read a cached future"
    );
}

#[test]
fn plan_cache_is_bounded_and_counted() {
    let db = big_db();
    let plan = agg(0);
    db.execute(&plan).unwrap();
    db.execute(&plan).unwrap();
    let s = db.cache_stats().plan;
    assert!(s.hits >= 1, "{s:?}");
    assert!(s.entries >= 1, "{s:?}");
    // distinct plans never grow the cache past its capacity
    for lit in 0..600 {
        db.plan_query(&agg(lit)).unwrap();
    }
    let s = db.cache_stats().plan;
    assert!(s.entries <= 256 + 8, "unbounded plan cache: {s:?}");
    assert!(s.evictions > 0, "{s:?}");
}
