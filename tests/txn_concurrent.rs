//! Concurrency stress: ≥4 reader threads querying snapshots while a writer
//! appends, updates, deletes and merges. Readers check an invariant the
//! writer maintains *within* every atomic write — any violation means a
//! torn read (a query saw a half-applied write or a mid-merge state).

use mrdb::exec::TableProvider;
use mrdb::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("pair", DataType::Int32),
        ColumnDef::new("val", DataType::Int64),
    ])
}

/// Writer appends rows in balanced pairs `(k, +v)` / `(k, -v)` — always in
/// one atomic operation — so at every publish point `sum(val) == 0` and
/// `count(*)` is even. Deletes remove whole pairs under one write lock.
#[test]
fn readers_never_see_torn_writes() {
    let shared = SharedTable::new(VersionedTable::new("pairs", schema()));
    // seed some pairs
    for k in 0..50i32 {
        shared
            .insert_batch(&[
                vec![Value::Int32(k), Value::Int64(k as i64 + 1)],
                vec![Value::Int32(k), Value::Int64(-(k as i64 + 1))],
            ])
            .unwrap();
    }
    shared.merge().unwrap();

    let plan = QueryBuilder::scan("pairs")
        .aggregate(
            vec![],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        )
        .build();
    let stop = AtomicBool::new(false);
    let violations = std::sync::Mutex::new(Vec::<String>::new());

    std::thread::scope(|s| {
        // ---- writer: insert pairs, delete pairs, update-in-pairs, merge
        s.spawn(|| {
            let mut next_pair = 50i32;
            for round in 0..400u64 {
                match round % 10 {
                    // mostly: append a fresh pair (atomic batch)
                    0..=5 => {
                        let v = next_pair as i64 + 1;
                        shared
                            .insert_batch(&[
                                vec![Value::Int32(next_pair), Value::Int64(v)],
                                vec![Value::Int32(next_pair), Value::Int64(-v)],
                            ])
                            .unwrap();
                        next_pair += 1;
                    }
                    // delete one whole pair under a single write lock
                    6 | 7 => {
                        shared.with_write(|t| {
                            let ids: Vec<usize> = (0..t.main().len() + t.delta_rows())
                                .filter(|&i| t.is_visible(i))
                                .collect();
                            if ids.len() >= 2 {
                                // find two rows of the same pair
                                let target =
                                    t.get(ids[round as usize % ids.len()]).unwrap().0[0].clone();
                                let members: Vec<usize> = ids
                                    .iter()
                                    .copied()
                                    .filter(|&i| t.get(i).unwrap().0[0] == target)
                                    .collect();
                                for id in members {
                                    t.delete(id).unwrap();
                                }
                            }
                        });
                    }
                    // flip a pair's sign: two updates under one lock
                    8 => {
                        shared.with_write(|t| {
                            let ids: Vec<usize> = (0..t.main().len() + t.delta_rows())
                                .filter(|&i| t.is_visible(i))
                                .collect();
                            if ids.len() >= 2 {
                                let target =
                                    t.get(ids[round as usize % ids.len()]).unwrap().0[0].clone();
                                let members: Vec<usize> = ids
                                    .iter()
                                    .copied()
                                    .filter(|&i| t.get(i).unwrap().0[0] == target)
                                    .collect();
                                for id in members {
                                    let v = t.get(id).unwrap().0[1].as_i64().unwrap();
                                    t.update(id, 1, &Value::Int64(-v)).unwrap();
                                }
                            }
                        });
                    }
                    // periodically fold the delta into a fresh main store
                    _ => {
                        shared.merge().unwrap();
                    }
                }
            }
            stop.store(true, Ordering::Release);
        });

        // ---- ≥4 readers: snapshot, query on every engine, check invariant
        for reader in 0..4 {
            let plan = &plan;
            let shared = &shared;
            let stop = &stop;
            let violations = &violations;
            s.spawn(move || {
                let mut iter = 0usize;
                while !stop.load(Ordering::Acquire) || iter < 20 {
                    let snap = shared.snapshot();
                    let kind = EngineKind::all()[iter % EngineKind::all().len()];
                    let out = kind
                        .engine()
                        .execute(plan, &snap as &dyn TableProvider)
                        .unwrap();
                    let count = out.rows[0][0].as_i64().unwrap();
                    let sum = match &out.rows[0][1] {
                        Value::Null => 0, // empty table
                        v => v.as_i64().unwrap(),
                    };
                    if sum != 0 || count % 2 != 0 {
                        violations.lock().unwrap().push(format!(
                            "reader {reader} iter {iter} ({kind:?}): count={count} sum={sum}"
                        ));
                        return;
                    }
                    // also: generation must never go backwards
                    iter += 1;
                }
            });
        }
    });

    let v = violations.into_inner().unwrap();
    assert!(v.is_empty(), "torn reads detected:\n{}", v.join("\n"));
}

/// The same balanced-pair invariant, but with maintenance decoupled from
/// the write path: the writer only does DML; a dedicated scheduler thread
/// runs *real background merges* (begin under a short write lock → build
/// off-lock while writer and readers proceed → finish under a short write
/// lock). Any torn read, lost replay, or mid-swap inconsistency breaks
/// `sum == 0 ∧ count even`.
#[test]
fn background_merges_never_tear_reads() {
    let shared = SharedTable::new(VersionedTable::new("pairs", schema()));
    for k in 0..50i32 {
        shared
            .insert_batch(&[
                vec![Value::Int32(k), Value::Int64(k as i64 + 1)],
                vec![Value::Int32(k), Value::Int64(-(k as i64 + 1))],
            ])
            .unwrap();
    }
    shared.merge().unwrap();

    let plan = QueryBuilder::scan("pairs")
        .aggregate(
            vec![],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        )
        .build();
    let stop = AtomicBool::new(false);
    let violations = std::sync::Mutex::new(Vec::<String>::new());
    let merges_done = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        // ---- writer: DML only — it never merges
        s.spawn(|| {
            let mut next_pair = 50i32;
            for round in 0..400u64 {
                if round % 5 == 4 {
                    // delete one whole pair under a single write lock
                    shared.with_write(|t| {
                        let ids: Vec<usize> = (0..t.main().len() + t.delta_rows())
                            .filter(|&i| t.is_visible(i))
                            .collect();
                        if ids.len() >= 2 {
                            let target =
                                t.get(ids[round as usize % ids.len()]).unwrap().0[0].clone();
                            let members: Vec<usize> = ids
                                .iter()
                                .copied()
                                .filter(|&i| t.get(i).unwrap().0[0] == target)
                                .collect();
                            for id in members {
                                t.delete(id).unwrap();
                            }
                        }
                    });
                } else {
                    let v = next_pair as i64 + 1;
                    shared
                        .insert_batch(&[
                            vec![Value::Int32(next_pair), Value::Int64(v)],
                            vec![Value::Int32(next_pair), Value::Int64(-v)],
                        ])
                        .unwrap();
                    next_pair += 1;
                }
            }
            stop.store(true, Ordering::Release);
        });

        // ---- scheduler: watches the delta, merges in the background
        s.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                if shared.delta_rows() >= 32 {
                    if let Some(_stats) = shared.background_merge().unwrap() {
                        merges_done.fetch_add(1, Ordering::Relaxed);
                    }
                }
                std::thread::yield_now();
            }
            // final catch-up so the post-join assertions see a merge even
            // if the 1-core scheduler never got a slice mid-run
            if shared.delta_rows() > 0 && shared.background_merge().unwrap().is_some() {
                merges_done.fetch_add(1, Ordering::Relaxed);
            }
        });

        // ---- ≥4 readers: snapshot, query on every engine, check invariant
        for reader in 0..4 {
            let plan = &plan;
            let shared = &shared;
            let stop = &stop;
            let violations = &violations;
            s.spawn(move || {
                let mut iter = 0usize;
                while !stop.load(Ordering::Acquire) || iter < 20 {
                    let snap = shared.snapshot();
                    let kind = EngineKind::all()[iter % EngineKind::all().len()];
                    let out = kind
                        .engine()
                        .execute(plan, &snap as &dyn TableProvider)
                        .unwrap();
                    let count = out.rows[0][0].as_i64().unwrap();
                    let sum = match &out.rows[0][1] {
                        Value::Null => 0,
                        v => v.as_i64().unwrap(),
                    };
                    if sum != 0 || count % 2 != 0 {
                        violations.lock().unwrap().push(format!(
                            "reader {reader} iter {iter} ({kind:?}): count={count} sum={sum}"
                        ));
                        return;
                    }
                    iter += 1;
                }
            });
        }
    });

    let v = violations.into_inner().unwrap();
    assert!(v.is_empty(), "torn reads detected:\n{}", v.join("\n"));
    assert!(
        merges_done.load(Ordering::Relaxed) > 0,
        "scheduler actually merged (delta crossed 32 hundreds of times)"
    );
    // the table still satisfies the invariant after everything quiesces
    shared.merge().unwrap();
    let out = EngineKind::Compiled
        .engine()
        .execute(&plan, &shared.snapshot() as &dyn TableProvider)
        .unwrap();
    assert_eq!(out.rows[0][1], Value::Int64(0));
}

/// Determinism half of the background-merge guarantee: one op stream,
/// applied twice — table A merges synchronously at a threshold, table B
/// runs the three-phase pipeline with ops landing *during* each build —
/// must end byte-identical, live and after a final merge. (Row targets
/// resolve by live position, which swap-time renumbering preserves.)
#[test]
fn background_merge_is_byte_identical_to_synchronous() {
    let mut a = VersionedTable::new("t", schema());
    let mut b = VersionedTable::new("t", schema());
    let live = |t: &VersionedTable| -> Vec<usize> {
        (0..t.main().len() + t.delta_rows())
            .filter(|&i| t.is_visible(i))
            .collect()
    };
    // deterministic mixed stream: 6 inserts : 2 updates : 2 deletes
    let apply = |t: &mut VersionedTable, step: u64| match step % 10 {
        0..=5 => {
            let k = (step * 7919) % 1000;
            t.insert(&[Value::Int32(k as i32), Value::Int64(k as i64 * 3)])
                .unwrap();
        }
        6 | 7 => {
            let ids = live(t);
            if !ids.is_empty() {
                let id = ids[(step * 104_729) as usize % ids.len()];
                t.update(id, 1, &Value::Int64(-(step as i64))).unwrap();
            }
        }
        _ => {
            let ids = live(t);
            if !ids.is_empty() {
                let id = ids[(step * 1_299_709) as usize % ids.len()];
                t.delete(id).unwrap();
            }
        }
    };
    let mut pending: Option<mrdb::txn::BuiltMain> = None;
    let mut since_begin = 0usize;
    for step in 0..600u64 {
        apply(&mut a, step);
        apply(&mut b, step);
        // A: synchronous merge at the threshold
        if a.delta_rows() >= 48 {
            a.merge().unwrap();
        }
        // B: three-phase — begin at the threshold, finish 16 ops later
        if pending.is_some() {
            since_begin += 1;
            if since_begin >= 16 {
                b.finish_merge(pending.take().unwrap()).unwrap();
            }
        } else if b.delta_rows() >= 48 {
            let ticket = b.begin_merge().unwrap();
            pending = Some(
                ticket
                    .build(ticket.snapshot().main().layout().clone())
                    .unwrap(),
            );
            since_begin = 0;
        }
    }
    if let Some(built) = pending.take() {
        b.finish_merge(built).unwrap();
    }
    let rows_a: Vec<_> = a.rows().collect();
    let rows_b: Vec<_> = b.rows().collect();
    assert_eq!(rows_a, rows_b, "live state diverged");
    assert!(a.write_stats().merges > 2 && b.write_stats().merges > 2);
    a.merge().unwrap();
    b.merge().unwrap();
    let rows_a: Vec<_> = a.rows().collect();
    let rows_b: Vec<_> = b.rows().collect();
    assert_eq!(rows_a, rows_b, "merged state diverged");
}

/// Snapshots taken around a merge stay self-consistent: a reader holding a
/// pre-merge snapshot re-reads identical data after the merge completes.
#[test]
fn snapshots_survive_concurrent_merges() {
    let shared = SharedTable::new(VersionedTable::new("t", schema()));
    for k in 0..200i32 {
        shared
            .insert(&[Value::Int32(k), Value::Int64(k as i64)])
            .unwrap();
    }
    let scan = QueryBuilder::scan("t").build();

    std::thread::scope(|s| {
        let shared2 = shared.clone();
        let writer = s.spawn(move || {
            for k in 200..400i32 {
                shared2
                    .insert(&[Value::Int32(k), Value::Int64(k as i64)])
                    .unwrap();
                if k % 50 == 0 {
                    shared2.merge().unwrap();
                }
            }
        });
        for _ in 0..4 {
            let shared = &shared;
            let scan = &scan;
            s.spawn(move || {
                for _ in 0..30 {
                    let snap = shared.snapshot();
                    let a = EngineKind::Compiled
                        .engine()
                        .execute(scan, &snap as &dyn TableProvider)
                        .unwrap();
                    std::thread::yield_now(); // let the writer churn
                    let b = EngineKind::Volcano
                        .engine()
                        .execute(scan, &snap as &dyn TableProvider)
                        .unwrap();
                    assert_eq!(a.rows, b.rows, "one snapshot, two different reads");
                    assert_eq!(a.rows.len(), snap.len());
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(shared.len(), 400);
}
