//! Twin-database property test for the buffer pool: a database reopened
//! through a *tiny* pool (constant eviction, overcommit, zone-skipped
//! faults) must stay byte-identical to a fully-resident twin under random
//! DML / merge / query interleavings, for every engine and every layout.
//! At quiesce the pool must hold no pinned frames (pin-leak check) and
//! must actually have faulted (the test would be vacuous if the cold path
//! never ran).

use mrdb::core::BufferPool;
use mrdb::prelude::*;
use mrdb::workloads::microbench::{self, N_COLS};
use mrdb::workloads::mixed::{microbench_mix, MixedOp};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

static CASE: AtomicU64 = AtomicU64::new(0);
static EXTENT_ENV: Once = Once::new();

/// Checkpoints in this binary use 1024-row extents (the zone-block
/// minimum) so a few thousand rows already span several extents. Set
/// once, before any checkpoint is written, and never changed — the knob
/// is read at every checkpoint write, so a racing change would make twin
/// checkpoints disagree.
fn small_extents() {
    EXTENT_ENV.call_once(|| std::env::set_var("PDSM_EXTENT_ROWS", "1024"));
}

fn case_dir(tag: &str) -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pdsm-pool-props-{}-{n}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn maint_off() -> MaintenanceConfig {
    MaintenanceConfig {
        mode: MaintenanceMode::Off,
        ..MaintenanceConfig::default()
    }
}

fn open(dir: &Path, pool: Option<std::sync::Arc<BufferPool>>) -> Database {
    Database::open_with_pool(
        DurabilityConfig::new(dir).with_fsync(FsyncMode::Off),
        maint_off(),
        pool,
    )
    .unwrap()
}

/// The layouts under test: row, column, and the paper's hybrid grouping.
fn layout_for(sel: usize) -> Layout {
    match sel % 3 {
        0 => Layout::row(N_COLS),
        1 => Layout::column(N_COLS),
        _ => microbench::pdsm_layout(),
    }
}

/// Queries the streaming executor can run extent-at-a-time: row scans
/// (full, equality-filtered, clustered range, zone-refuted-everywhere)
/// and global aggregates with mergeable accumulators.
fn streamable_plans(n: usize) -> Vec<LogicalPlan> {
    vec![
        QueryBuilder::scan("R").build(),
        QueryBuilder::scan("R")
            .filter(Expr::col(0).eq(Expr::lit(0)))
            .build(),
        // `A` is `-(i+1)` off the match set, so this selects a clustered
        // suffix of the table — zone maps refute the earlier extents.
        QueryBuilder::scan("R")
            .filter(Expr::col(0).lt(Expr::lit(-(n as i32) + 64)))
            .build(),
        // `A` never exceeds 0: every extent is refuted, only the delta
        // tail can answer. Exercises the zero-extent seeding path.
        QueryBuilder::scan("R")
            .filter(Expr::col(0).gt(Expr::lit(0)))
            .build(),
        QueryBuilder::scan("R")
            .filter(Expr::col(0).eq(Expr::lit(0)))
            .aggregate(
                vec![],
                vec![
                    AggExpr::new(AggFunc::Count, Expr::col(1)),
                    AggExpr::new(AggFunc::Sum, Expr::col(2)),
                    AggExpr::new(AggFunc::Min, Expr::col(3)),
                    AggExpr::new(AggFunc::Max, Expr::col(4)),
                ],
            )
            .build(),
        microbench::query(0.05),
    ]
}

/// Shapes the streaming executor refuses (float-reassociating or
/// partition-crossing): they fall back to whole-table hydration, which
/// must of course agree too.
fn hydrating_plans() -> Vec<LogicalPlan> {
    vec![
        QueryBuilder::scan("R")
            .aggregate(vec![], vec![AggExpr::new(AggFunc::Avg, Expr::col(1))])
            .build(),
        QueryBuilder::scan("R")
            .filter(Expr::col(0).le(Expr::lit(0)))
            .aggregate(
                vec![Expr::col(0)],
                vec![AggExpr::new(AggFunc::Count, Expr::col(1))],
            )
            .build(),
    ]
}

/// Grouped aggregates hash their groups, so their output *order* is not
/// part of the contract (the repo's engine-equivalence tests compare them
/// through `QueryOutput::normalized` for the same reason). Everything
/// else must match byte-for-byte, rows in order.
fn order_insensitive(plan: &LogicalPlan) -> bool {
    matches!(plan, LogicalPlan::Aggregate { group_by, .. } if !group_by.is_empty())
}

/// Run `plans` on both twins across every engine (plus the cost-based
/// planner path) and require byte-identical `QueryResult`s.
fn assert_twins_agree(pooled: &Database, resident: &Database, plans: &[LogicalPlan]) {
    for (i, plan) in plans.iter().enumerate() {
        for engine in EngineKind::all() {
            let a = pooled.run(plan, engine).unwrap();
            let b = resident.run(plan, engine).unwrap();
            prop_assert_eq!(
                &a.columns,
                &b.columns,
                "plan {} header under {:?}",
                i,
                engine
            );
            if order_insensitive(plan) {
                prop_assert_eq!(
                    a.normalized(),
                    b.normalized(),
                    "plan {} under {:?}",
                    i,
                    engine
                );
            } else {
                prop_assert_eq!(a, b, "plan {} diverged under {:?}", i, engine);
            }
        }
        let a = pooled.execute(plan).unwrap();
        let b = resident.execute(plan).unwrap();
        prop_assert_eq!(
            &a.columns,
            &b.columns,
            "plan {} header under the planner",
            i
        );
        if order_insensitive(plan) {
            prop_assert_eq!(
                a.normalized(),
                b.normalized(),
                "plan {} under the planner",
                i
            );
        } else {
            prop_assert_eq!(a, b, "plan {} diverged under the planner", i);
        }
    }
}

/// Apply one mixed-workload write through the normal DML path, tracking
/// the live row-id set exactly as `durability_props` does.
fn apply_op(db: &Database, live: &mut Vec<usize>, op: &MixedOp) {
    db.with_table_write("R", |vt| match op {
        MixedOp::Read { .. } => {}
        MixedOp::Insert { rows } => {
            live.extend(vt.insert_batch(rows).unwrap());
        }
        MixedOp::Update {
            row_hint,
            col,
            value,
        } => {
            if !live.is_empty() {
                let slot = (*row_hint % live.len() as u64) as usize;
                live[slot] = vt.update(live[slot], *col, value).unwrap();
            }
        }
        MixedOp::Delete { row_hint } => {
            if !live.is_empty() {
                let slot = (*row_hint % live.len() as u64) as usize;
                vt.delete(live[slot]).unwrap();
                live.swap_remove(slot);
            }
        }
    })
    .unwrap()
}

/// Seed one on-disk twin: identical base data, a deterministic DML
/// prefix, a merge (so the checkpoint holds real extents), and a
/// post-checkpoint DML suffix (so recovery has a WAL tail to replay over
/// the cold table). Returns the live row-id set at close.
fn seed_twin(dir: &Path, n: usize, layout: Layout, seed: u64, n_ops: usize) -> Vec<usize> {
    let db = open(dir, None);
    db.register(microbench::generate(n, 0.05, layout, seed ^ 0xB0B));
    let workload = microbench_mix(n_ops, 0.0, 0.05, seed);
    let mut live: Vec<usize> = (0..db.with_table("R", |vt| vt.len()).unwrap()).collect();
    let split = workload.ops.len() / 2;
    for op in &workload.ops[..split] {
        apply_op(&db, &mut live, op);
    }
    db.merge("R").unwrap();
    // Merge compacts tombstones away: every surviving row is live and
    // renumbered in scan order.
    live = (0..db.with_table("R", |vt| vt.len()).unwrap()).collect();
    for op in &workload.ops[split..] {
        apply_op(&db, &mut live, op);
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pooled_twin_is_byte_identical_to_resident(
        seed in 0u64..10_000,
        n in 2500usize..4000,
        layout_sel in 0usize..3,
        budget in prop_oneof![Just(8_000usize), Just(24_000usize), Just(100_000usize)],
        n_ops in 8usize..32,
    ) {
        small_extents();
        let dir_a = case_dir("pooled");
        let dir_b = case_dir("resident");
        let layout = layout_for(layout_sel);
        let live_a = seed_twin(&dir_a, n, layout.clone(), seed, n_ops);
        let live_b = seed_twin(&dir_b, n, layout, seed, n_ops);
        prop_assert_eq!(&live_a, &live_b, "seeding must be deterministic");

        // Reopen: one twin through a pool far smaller than the dataset,
        // the other fully resident.
        let pool = BufferPool::new(budget);
        let pooled = open(&dir_a, Some(std::sync::Arc::clone(&pool)));
        let resident = open(&dir_b, None);

        // Phase 1 — the cold battery. Every streamable plan runs
        // extent-at-a-time on the pooled twin, faulting and evicting
        // under the tiny budget.
        assert_twins_agree(&pooled, &resident, &streamable_plans(n));
        let stats = pool.stats();
        prop_assert_eq!(stats.pinned_frames, 0, "pin leak at quiesce");
        prop_assert!(stats.misses > 0, "cold battery never faulted");
        prop_assert!(
            stats.resident_bytes <= stats.peak_resident_bytes,
            "resident accounting went backwards"
        );

        // Phase 2 — hydrating shapes (planner fallback), then identical
        // DML + merge on both twins, then the full battery again.
        assert_twins_agree(&pooled, &resident, &hydrating_plans());
        let tail = microbench_mix(n_ops, 0.0, 0.05, seed ^ 0x5EED);
        let mut live_a = live_a;
        let mut live_b = live_b;
        for op in &tail.ops {
            apply_op(&pooled, &mut live_a, op);
            apply_op(&resident, &mut live_b, op);
        }
        pooled.merge("R").unwrap();
        resident.merge("R").unwrap();
        assert_twins_agree(&pooled, &resident, &streamable_plans(n));
        assert_twins_agree(&pooled, &resident, &hydrating_plans());

        // Phase 3 — close and recover both twins again (cold recovery
        // now replays the post-merge WAL over pooled extents) and
        // compare once more.
        drop(pooled);
        drop(resident);
        let pool = BufferPool::new(budget);
        let pooled = open(&dir_a, Some(std::sync::Arc::clone(&pool)));
        let resident = open(&dir_b, None);
        assert_twins_agree(&pooled, &resident, &streamable_plans(n));
        let stats = pool.stats();
        prop_assert_eq!(stats.pinned_frames, 0, "pin leak after recovery battery");
        prop_assert!(stats.misses > 0, "recovered battery never faulted");

        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
