//! Differential testing of the SIMD scan kernels and zone-map pruning.
//!
//! The fused predicate/aggregate kernels (`pdsm_exec::simd`) promise
//! *byte-identical* results to the chunked scalar baseline — across random
//! table sizes (hence chunk-tail lengths and sub-block alignments),
//! tombstone densities, NULL patterns, storage layouts, live delta tails,
//! and every registered engine. Zone-map pruning promises the same: a
//! skipped block must never change a result, only the work done.
//!
//! The `PDSM_SIMD` override and the scan counters are process-global, so
//! every test here serializes on one lock and restores the override on
//! exit (panic-safe via the poison-tolerant guard).

use mrdb::core::set_mode_override;
use mrdb::prelude::*;
use mrdb::workloads::microbench;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

mod common;

static SIMD_LOCK: Mutex<()> = Mutex::new(());

/// Hold the process-global SIMD lock; the override is cleared on drop so a
/// failing assertion cannot leak a pinned mode into later tests.
struct SimdGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl SimdGuard {
    fn lock() -> Self {
        SimdGuard(SIMD_LOCK.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

impl Drop for SimdGuard {
    fn drop(&mut self) {
        set_mode_override(None);
    }
}

/// 6-column schema with nullable columns in both SIMD-relevant types, so
/// the kernels' validity masking is exercised, not just their comparisons.
fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::nullable("a", DataType::Int32),
        ColumnDef::new("b", DataType::Int32),
        ColumnDef::new("c", DataType::Int64),
        ColumnDef::nullable("d", DataType::Float64),
        ColumnDef::new("s", DataType::Str),
        ColumnDef::new("e", DataType::Int32),
    ])
}

fn layouts() -> Vec<Layout> {
    vec![
        Layout::row(6),
        Layout::column(6),
        Layout::from_groups(vec![vec![0, 5], vec![1, 2, 3], vec![4]], 6).unwrap(),
    ]
}

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn make_row(i: usize, x: &mut u64) -> Vec<Value> {
    let a = if xorshift(x).is_multiple_of(7) {
        Value::Null
    } else {
        Value::Int32((xorshift(x) % 200) as i32 - 100)
    };
    let d = if xorshift(x).is_multiple_of(5) {
        Value::Null
    } else {
        Value::Float64((xorshift(x) % 1000) as f64 / 8.0)
    };
    vec![
        a,
        Value::Int32((xorshift(x) % 50) as i32),
        Value::Int64((xorshift(x) % 100_000) as i64 - 50_000),
        d,
        Value::Str(format!("s{}", xorshift(x) % 5)),
        Value::Int32(i as i32),
    ]
}

/// Predicates covering every kernel path: i32/i64/f64 comparisons (both
/// operand orders), IS [NOT] NULL, conjunctions, disjunctions, and i64
/// literals outside i32 range (the `NormCmp::{Always,Never}` edges).
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|v| Expr::col(0).lt(Expr::lit(v))),
        (-100i32..100).prop_map(|v| Expr::lit(v).ge(Expr::col(0))),
        (0i32..50).prop_map(|v| Expr::col(1).eq(Expr::lit(v))),
        (0i32..50).prop_map(|v| Expr::col(1).ne(Expr::lit(v))),
        (-50_000i64..50_000).prop_map(|v| Expr::col(2).ge(Expr::lit(v))),
        Just(Expr::col(1).lt(Expr::lit(3_000_000_000i64))),
        Just(Expr::col(1).gt(Expr::lit(-3_000_000_000i64))),
        (0.0f64..125.0).prop_map(|v| Expr::col(3).le(Expr::lit(v))),
        Just(Expr::col(0).is_null()),
        Just(Expr::col(0).is_null().not()),
    ];
    prop_oneof![
        leaf.clone(),
        (leaf.clone(), leaf.clone()).prop_map(|(l, r)| l.and(r)),
        (leaf.clone(), leaf).prop_map(|(l, r)| l.or(r)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The load-bearing property: for a random table (random size →
    /// random 64-row sub-block tails and 256-row chunk tails), random
    /// tombstones, a random live delta tail and a random predicate, the
    /// scalar-pinned and SIMD-pinned runs of every engine agree
    /// byte-for-byte — on row-order-sensitive projections and on
    /// aggregates over all three numeric types.
    #[test]
    fn simd_matches_scalar_everywhere(
        n in 0usize..1400,
        seed in any::<u64>(),
        layout_pick in 0usize..3,
        del_mod in prop_oneof![Just(0u64), Just(16), Just(4), Just(2)],
        tail in 0usize..80,
        pred in arb_pred(),
    ) {
        let _g = SimdGuard::lock();
        let mut t = Table::with_layout("t", schema(), layouts()[layout_pick].clone()).unwrap();
        let mut x = seed | 1;
        for i in 0..n {
            t.insert(&make_row(i, &mut x)).unwrap();
        }
        let db = Database::new();
        db.register(t);
        if del_mod > 0 {
            for r in 0..n {
                if xorshift(&mut x).is_multiple_of(del_mod) {
                    db.delete("t", r).unwrap();
                }
            }
        }
        for i in 0..tail {
            db.insert("t", &make_row(n + i, &mut x)).unwrap();
        }
        let snap = db.snapshot();
        let plans = [
            QueryBuilder::scan("t")
                .filter(pred.clone())
                .project(vec![
                    Expr::col(0),
                    Expr::col(1),
                    Expr::col(2),
                    Expr::col(3),
                    Expr::col(5),
                ])
                .build(),
            QueryBuilder::scan("t")
                .filter(pred)
                .aggregate(
                    vec![],
                    vec![
                        AggExpr::new(AggFunc::Count, Expr::col(5)),
                        AggExpr::new(AggFunc::Sum, Expr::col(1)),
                        AggExpr::new(AggFunc::Sum, Expr::col(2)),
                        AggExpr::new(AggFunc::Sum, Expr::col(3)),
                    ],
                )
                .build(),
        ];
        for (pi, plan) in plans.iter().enumerate() {
            set_mode_override(Some(mrdb::core::SimdMode::Scalar));
            let scalar = common::assert_engines_agree(plan, &snap, &format!("plan {pi} (scalar)"));
            set_mode_override(Some(mrdb::core::SimdMode::Auto));
            let auto = common::assert_engines_agree(plan, &snap, &format!("plan {pi} (auto)"));
            scalar.assert_same(&auto, &format!("plan {pi}: scalar vs auto"));
            prop_assert_eq!(&scalar.rows, &auto.rows, "plan {} row order", pi);
        }
    }
}

/// On x86_64 the fused kernels must actually engage under `Auto` — and
/// must stay off under `Scalar` — observable through the process-wide
/// chunk counters. (Elsewhere `Auto` resolves to the chunked scalar
/// baseline and the SIMD counter legitimately stays zero.)
#[test]
fn chunk_counters_witness_dispatch() {
    let _g = SimdGuard::lock();
    let db = Database::new();
    db.register(microbench::generate(
        100_000,
        0.01,
        Layout::column(microbench::N_COLS),
        21,
    ));
    let plan = microbench::query(0.01);

    set_mode_override(Some(mrdb::core::SimdMode::Scalar));
    db.reset_scan_stats();
    db.run(&plan, EngineKind::Compiled).unwrap();
    let s = db.scan_stats();
    assert_eq!(s.simd_chunks, 0, "scalar mode must never take a SIMD chunk");
    assert!(
        s.scalar_chunks > 0,
        "chunked baseline must count its chunks"
    );

    set_mode_override(Some(mrdb::core::SimdMode::Auto));
    db.reset_scan_stats();
    db.run(&plan, EngineKind::Compiled).unwrap();
    let s = db.scan_stats();
    if cfg!(target_arch = "x86_64") {
        assert!(
            s.simd_chunks > 0,
            "auto on x86_64 must run SIMD chunks: {s:?}"
        );
    } else {
        assert_eq!(s.simd_chunks, 0);
        assert!(s.scalar_chunks > 0);
    }
}

/// The acceptance scenario from the issue: a ≤1%-selective range scan
/// over a clustered column prunes the majority of zone blocks, with
/// byte-identical results across all five engines, and the planner's
/// EXPLAIN prices the skipping.
#[test]
fn selective_scan_prunes_majority_of_blocks() {
    let _g = SimdGuard::lock();
    let n = 200_000usize;
    // microbench's non-matching A values are unique negatives -(i+1) in
    // insertion order, so a range predicate on A selects a *clustered*
    // suffix of the table — the shape zone maps exist for. (`A = 0`
    // matches are spread uniformly by design and defeat pruning.)
    let t = microbench::generate(n, 0.01, Layout::column(microbench::N_COLS), 9);
    let cut = -((n as f64 * 0.99) as i32);
    let expected = (0..t.len())
        .filter(|&r| match t.get(r, 0).unwrap() {
            Value::Int32(a) => a <= cut,
            _ => false,
        })
        .count();
    assert!(expected > 0 && expected <= n / 100 + 1, "sel must be ≤1%");
    let db = Database::new();
    db.register(t);
    let plan = QueryBuilder::scan("R")
        .filter(Expr::col(0).le(Expr::lit(cut)))
        .aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Count, Expr::col(0)),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        )
        .build();

    db.reset_scan_stats();
    let snap = db.snapshot();
    let out = common::assert_engines_agree(&plan, &snap, "selective range scan");
    assert_eq!(out.rows[0][0], Value::Int64(expected as i64));

    let s = db.scan_stats();
    let consulted = s.partitions_scanned + s.partitions_pruned;
    assert!(consulted > 0, "zone maps must have been consulted: {s:?}");
    assert!(
        s.partitions_pruned * 2 > consulted,
        "≤1% clustered selectivity must prune >50% of zone blocks: {s:?}"
    );

    // The planner prices the same skipping into its chosen plan.
    let phys = db.plan_query(&plan).unwrap();
    let p = &phys.pipelines[0];
    assert!(
        p.zone_pruned * 2 > p.zone_blocks,
        "planner must expect >50% pruned: {}/{}",
        p.zone_pruned,
        p.zone_blocks
    );
    assert!(p.survived_fraction() < 0.5);
    let explain = phys.explain();
    assert!(
        explain.contains("(scanned/pruned/total)"),
        "EXPLAIN must report partitions: {explain}"
    );
}

/// Pruning must stay sound when tombstones and a live tail overlap the
/// pruned range: a deleted row must not resurrect, a tail row must not be
/// skipped — across modes and engines.
#[test]
fn pruning_respects_tombstones_and_tail() {
    let _g = SimdGuard::lock();
    let n = 50_000usize;
    let t = microbench::generate(n, 0.0, Layout::column(microbench::N_COLS), 4);
    let db = Database::new();
    db.register(t);
    let cut = -((n as f64 * 0.98) as i32);
    // Delete half of the matching suffix …
    for r in (n - 500..n).step_by(2) {
        db.delete("R", r).unwrap();
    }
    // … and add tail rows inside and outside the selected range.
    let mut row: Vec<Value> = (0..microbench::N_COLS as i32).map(Value::Int32).collect();
    row[0] = Value::Int32(cut - 1);
    db.insert("R", &row).unwrap();
    row[0] = Value::Int32(7);
    db.insert("R", &row).unwrap();

    let plan = QueryBuilder::scan("R")
        .filter(Expr::col(0).le(Expr::lit(cut)))
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Count, Expr::col(0))])
        .build();
    let snap = db.snapshot();
    for mode in [mrdb::core::SimdMode::Scalar, mrdb::core::SimdMode::Auto] {
        set_mode_override(Some(mode));
        let out = common::assert_engines_agree(&plan, &snap, &format!("{mode:?}"));
        // Survivors of A ≤ cut: rows cut-1 … n-1 minus the 250 deleted
        // even offsets in n-500…n, plus the one in-range tail row.
        let in_range = (0..n).filter(|&i| -((i as i32) + 1) <= cut).count();
        let deleted = (n - 500..n)
            .step_by(2)
            .filter(|&i| -((i as i32) + 1) <= cut)
            .count();
        assert_eq!(
            out.rows[0][0],
            Value::Int64((in_range - deleted + 1) as i64),
            "{mode:?}"
        );
    }
}
