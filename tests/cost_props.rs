//! Property tests on the cost model (DESIGN.md §7): probabilities stay in
//! [0,1], miss counts are bounded and monotone, `s_trav_cr` degenerates to
//! `s_trav`, costs are non-negative and additive over `⊕`.

use mrdb::cost::{cost, misses, Atom, Hierarchy, Pattern};
use proptest::prelude::*;

fn hw() -> Hierarchy {
    Hierarchy::nehalem()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn misses_bounded_by_region_lines(
        n in 1u64..10_000_000,
        w_exp in 0u32..8,
        s in 0.0f64..1.0,
    ) {
        let w = 1u64 << w_exp; // 1..128 bytes
        let hw = hw();
        for level in hw.levels().iter().skip(1) {
            let m = misses::atom_misses(&Atom::s_trav_cr(n, w, w, s), level, 1.0);
            prop_assert!(m.sequential >= 0.0 && m.random >= 0.0);
            // total misses never exceed the lines the region spans
            // (+1 tolerance for the fractional line count)
            let max_lines = (n as f64 * w as f64 / level.block as f64)
                .max(n as f64 * (w as f64 / level.block as f64).ceil());
            prop_assert!(
                m.total() <= max_lines + 1.0,
                "{}: {} misses vs {} lines (w={w}, s={s})",
                level.name, m.total(), max_lines
            );
        }
    }

    #[test]
    fn s_trav_cr_total_monotone_in_selectivity(
        n in 1_000u64..5_000_000,
        s1 in 0.0f64..1.0,
        s2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let llc = hw().llc().clone();
        let a = misses::atom_misses(&Atom::s_trav_cr(n, 16, 16, lo), &llc, 1.0);
        let b = misses::atom_misses(&Atom::s_trav_cr(n, 16, 16, hi), &llc, 1.0);
        prop_assert!(a.total() <= b.total() + 1e-9, "{} > {}", a.total(), b.total());
    }

    #[test]
    fn s_trav_cr_at_full_selectivity_equals_s_trav(
        n in 1u64..5_000_000,
        w_exp in 0u32..7,
    ) {
        let w = 1u64 << w_exp;
        let llc = hw().llc().clone();
        let cr = misses::atom_misses(&Atom::s_trav_cr(n, w, w, 1.0), &llc, 1.0);
        let st = misses::atom_misses(&Atom::s_trav(n, w), &llc, 1.0);
        prop_assert!((cr.total() - st.total()).abs() < 1e-6);
        prop_assert!(cr.random.abs() < 1e-9, "full scan has no random misses");
    }

    #[test]
    fn cardenas_bounds_and_monotonicity(r in 0u64..100_000_000, n in 1u64..100_000_000) {
        let i = misses::cardenas(r as f64, n as f64);
        prop_assert!(i >= 0.0);
        prop_assert!(i <= n as f64 + 1e-6);
        prop_assert!(i <= r as f64 + 1e-6);
        if r > 0 {
            let fewer = misses::cardenas((r / 2) as f64, n as f64);
            prop_assert!(fewer <= i + 1e-9);
        }
    }

    #[test]
    fn estimate_nonnegative_and_seq_additive(
        n1 in 1u64..2_000_000,
        n2 in 1u64..2_000_000,
        w_exp in 2u32..7,
    ) {
        let w = 1u64 << w_exp;
        let hw = hw();
        let a = Pattern::atom(Atom::s_trav(n1, w));
        let b = Pattern::atom(Atom::r_trav(n2, w));
        let ca = cost::estimate(&a, &hw).total_cycles;
        let cb = cost::estimate(&b, &hw).total_cycles;
        let cseq = cost::estimate(&Pattern::seq(vec![a.clone(), b.clone()]), &hw).total_cycles;
        prop_assert!(ca >= 0.0 && cb >= 0.0);
        prop_assert!((cseq - (ca + cb)).abs() < 1e-6 * (ca + cb).max(1.0));
    }

    #[test]
    fn prefetch_hiding_never_increases_cost(
        n in 1u64..5_000_000,
        w_exp in 0u32..7,
        s in 0.0f64..1.0,
    ) {
        let w = 1u64 << w_exp;
        let hw = hw();
        let p = Pattern::atom(Atom::s_trav_cr(n, w, w, s));
        let aware = cost::estimate(&p, &hw).total_cycles;
        let flat = cost::estimate_flat(&p, &hw).total_cycles;
        prop_assert!(aware <= flat + 1e-9, "aware {aware} > flat {flat}");
    }

    #[test]
    fn narrower_fragments_never_cost_more_to_partially_read(
        n in 1_000u64..2_000_000,
        s in 0.001f64..1.0,
    ) {
        // reading 4 bytes per tuple from 8-byte fragments vs 64-byte
        // fragments: the narrow layout must never be costlier — the PDSM
        // premise as a property.
        let hw = hw();
        let narrow = cost::estimate(
            &Pattern::atom(Atom::s_trav_cr(n, 8, 4, s)), &hw).total_cycles;
        let wide = cost::estimate(
            &Pattern::atom(Atom::s_trav_cr(n, 64, 4, s)), &hw).total_cycles;
        prop_assert!(narrow <= wide * 1.001, "narrow {narrow} vs wide {wide} at s={s}");
    }
}
