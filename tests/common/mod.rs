//! Shared helpers for the workspace-level test suites.

use mrdb::exec::TableProvider;
use mrdb::prelude::*;

/// Run `plan` on every engine `EngineKind::all()` lists, assert they all
/// agree (up to row order), and return one output for content assertions.
/// Iterating `all()` means a newly registered engine is covered by every
/// suite that calls this, without editing any test. Engines that cannot
/// run the plan shape (`EngineKind::supports` — the vectorized engine has
/// no joins or sorts) are skipped.
pub fn assert_engines_agree(
    plan: &LogicalPlan,
    provider: &dyn TableProvider,
    ctx: &str,
) -> QueryOutput {
    let mut reference: Option<(EngineKind, QueryOutput)> = None;
    for kind in EngineKind::all() {
        if !kind.supports(plan) {
            continue;
        }
        let out = kind
            .engine()
            .execute(plan, provider)
            .unwrap_or_else(|e| panic!("{ctx}: {kind:?} failed: {e}"));
        match &reference {
            None => reference = Some((kind, out)),
            Some((k0, base)) => base.assert_same(&out, &format!("{ctx}: {k0:?} vs {kind:?}")),
        }
    }
    reference.expect("EngineKind::all() is non-empty").1
}
