//! Concurrent DML through the shared `Database` handle: the tentpole
//! contract of the `&self` API redesign.
//!
//! * `Database: Send + Sync` — `Arc<Database>` clone-per-thread is the
//!   multi-threaded entry point (compile-time asserted).
//! * N writer threads on N **disjoint** tables proceed in parallel and
//!   produce state byte-identical to the same op streams applied
//!   serially — with background merges landing mid-stream on both sides.
//! * Two writers on the **same** table serialize on that table's lock:
//!   every atomic-batch invariant holds at every snapshot, and nothing is
//!   lost or torn.
//! * A `DbSnapshot` taken before concurrent DML + background merges on 3
//!   tables still reads exactly its cut, and the version chain stays
//!   bounded (≤ pinned + 1 live mains per table).

use mrdb::prelude::*;
use mrdb::storage::Value as V;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// `Database` must be shareable across threads by `Arc` alone.
#[test]
fn database_handle_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Arc<Database>>();
    assert_send_sync::<mrdb::core::DbSnapshot>();
}

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int32),
        ColumnDef::new("v", DataType::Int64),
        ColumnDef::new("s", DataType::Str),
    ])
}

fn table_name(i: usize) -> String {
    format!("t{i}")
}

/// The deterministic per-table op stream both schedules apply: inserts
/// with a sprinkle of position-resolved updates and deletes. Position
/// resolution (live scan order) is invariant under merge timing, so the
/// serial and concurrent schedules apply identical logical ops no matter
/// when the background worker lands a swap.
fn apply_stream(db: &Database, table: &str, ops: usize, seed: u64) {
    for step in 0..ops as u64 {
        let x = step
            .wrapping_mul(seed.wrapping_mul(2) | 1)
            .wrapping_add(seed);
        match x % 10 {
            0..=6 => {
                let k = (x % 1000) as i32;
                db.insert(
                    table,
                    &[
                        V::Int32(k),
                        V::Int64(k as i64 * 3 + seed as i64),
                        V::Str(format!("s{}", k % 7)),
                    ],
                )
                .unwrap();
            }
            7 | 8 => {
                // resolve + update atomically under the table's write lock
                db.with_table_write(table, |vt| {
                    let live: Vec<usize> = (0..vt.main().len() + vt.delta_rows())
                        .filter(|&i| vt.is_visible(i))
                        .collect();
                    if !live.is_empty() {
                        let id = live[(x / 10) as usize % live.len()];
                        vt.update(id, 1, &V::Int64(-(step as i64))).unwrap();
                    }
                })
                .unwrap();
            }
            _ => {
                db.with_table_write(table, |vt| {
                    let live: Vec<usize> = (0..vt.main().len() + vt.delta_rows())
                        .filter(|&i| vt.is_visible(i))
                        .collect();
                    if !live.is_empty() {
                        let id = live[(x / 10) as usize % live.len()];
                        vt.delete(id).unwrap();
                    }
                })
                .unwrap();
            }
        }
    }
}

fn scan(db: &Database, table: &str) -> Vec<Vec<Value>> {
    db.run(&QueryBuilder::scan(table).build(), EngineKind::Compiled)
        .unwrap()
        .into_output()
        .rows
}

fn bg_cfg(threshold: u64) -> MaintenanceConfig {
    MaintenanceConfig {
        mode: MaintenanceMode::Background,
        merge_threshold: threshold,
        advise_on_merge: false,
        ..Default::default()
    }
}

/// N writers on N disjoint tables, with readers on snapshots and the
/// background scheduler merging under them — final per-table state must
/// be byte-identical to the serial schedule of the same streams.
#[test]
fn disjoint_table_writers_match_serial_schedule() {
    const N: usize = 4;
    const OPS: usize = 600;

    // --- serial reference: same streams, one thread, same config
    let serial = Database::with_maintenance(bg_cfg(64));
    for i in 0..N {
        serial.create_table(&table_name(i), schema()).unwrap();
        apply_stream(&serial, &table_name(i), OPS, i as u64 + 1);
    }
    serial.flush_maintenance().unwrap();

    // --- concurrent schedule: one writer thread per table + readers
    let db = Arc::new(Database::with_maintenance(bg_cfg(64)));
    for i in 0..N {
        db.create_table(&table_name(i), schema()).unwrap();
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..N)
            .map(|i| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    apply_stream(&db, &table_name(i), OPS, i as u64 + 1);
                })
            })
            .collect();
        // Readers: snapshots must always be internally consistent (two
        // engines, one snapshot, identical rows), whatever the writers
        // and the merge worker are doing.
        for _ in 0..2 {
            let db = &db;
            let stop = &stop;
            s.spawn(move || {
                let plan = QueryBuilder::scan("t0").build();
                let mut iters = 0usize;
                while !stop.load(Ordering::Acquire) || iters < 10 {
                    let snap = db.snapshot();
                    let a = snap.run(&plan, EngineKind::Compiled).unwrap();
                    let b = snap.run(&plan, EngineKind::Volcano).unwrap();
                    assert_eq!(a.rows, b.rows, "one snapshot, two reads");
                    iters += 1;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });
    db.flush_maintenance().unwrap();

    for i in 0..N {
        let t = table_name(i);
        assert_eq!(
            scan(&db, &t),
            scan(&serial, &t),
            "{t}: concurrent schedule diverged from serial"
        );
    }
    // and after folding everything, still identical
    db.merge_all().unwrap();
    serial.merge_all().unwrap();
    for i in 0..N {
        let t = table_name(i);
        assert_eq!(scan(&db, &t), scan(&serial, &t), "{t}: merged state");
    }
}

/// Two writers on the *same* table: appends serialize on the table lock —
/// every insert_batch is atomic (balanced pairs), nothing is lost, and
/// the interleaving is some permutation of the two programs.
#[test]
fn same_table_writers_serialize_on_the_table_lock() {
    const PAIRS_PER_WRITER: i64 = 400;
    let db = Arc::new(Database::with_maintenance(bg_cfg(128)));
    db.create_table("pairs", schema()).unwrap();

    let stop = AtomicBool::new(false);
    // readers: the pair invariant must hold at every cut
    let agg = QueryBuilder::scan("pairs")
        .aggregate(
            vec![],
            vec![
                AggExpr::count_star(),
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
            ],
        )
        .build();
    std::thread::scope(|s| {
        // writer w ∈ {0, 1}: balanced (k, +v)/(k, −v) pairs, atomic batch
        let writers: Vec<_> = (0..2i64)
            .map(|w| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for p in 0..PAIRS_PER_WRITER {
                        let k = (w * PAIRS_PER_WRITER + p) as i32;
                        let v = p + 1;
                        db.insert_batch(
                            "pairs",
                            &[
                                vec![V::Int32(k), V::Int64(v), V::Str(format!("w{w}"))],
                                vec![V::Int32(k), V::Int64(-v), V::Str(format!("w{w}"))],
                            ],
                        )
                        .unwrap();
                    }
                })
            })
            .collect();
        for _ in 0..2 {
            let db = &db;
            let stop = &stop;
            let agg = &agg;
            s.spawn(move || {
                let mut iters = 0usize;
                while !stop.load(Ordering::Acquire) || iters < 10 {
                    let out = db.execute(agg).unwrap();
                    let count = out.rows[0][0].as_i64().unwrap();
                    let sum = match &out.rows[0][1] {
                        Value::Null => 0,
                        v => v.as_i64().unwrap(),
                    };
                    assert_eq!(count % 2, 0, "torn batch visible: count={count}");
                    assert_eq!(sum, 0, "torn batch visible: sum={sum}");
                    iters += 1;
                }
            });
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
    });
    db.flush_maintenance().unwrap();

    // nothing lost: both writers' rows all present exactly once
    let rows = scan(&db, "pairs");
    assert_eq!(rows.len(), 2 * 2 * PAIRS_PER_WRITER as usize);
    let mut per_writer = [0usize; 2];
    for r in &rows {
        let Value::Str(tag) = &r[2] else { panic!() };
        per_writer[tag.strip_prefix('w').unwrap().parse::<usize>().unwrap()] += 1;
    }
    assert_eq!(per_writer, [2 * PAIRS_PER_WRITER as usize; 2]);
    // each writer's pairs arrived in its program order (per-key adjacency
    // within one batch, keys ascending per writer)
    for w in 0..2usize {
        let keys: Vec<i64> = rows
            .iter()
            .filter(|r| r[2] == Value::Str(format!("w{w}")))
            .step_by(2)
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "writer {w} batches out of program order");
    }
}

/// A `DbSnapshot` taken before heavy concurrent DML + background merges
/// on 3 tables still reads exactly its cut — and the version chains stay
/// bounded: each table holds at most (pinned generations + 1) live mains.
#[test]
fn db_snapshot_longevity_under_concurrent_dml_and_merges() {
    const N: usize = 3;
    let db = Arc::new(Database::with_maintenance(bg_cfg(32)));
    for i in 0..N {
        db.create_table(&table_name(i), schema()).unwrap();
        apply_stream(&db, &table_name(i), 100, 40 + i as u64);
    }
    db.flush_maintenance().unwrap();

    let cut = db.snapshot();
    let frozen: Vec<Vec<mrdb::storage::row::Row>> = (0..N)
        .map(|i| cut.table_snapshot(&table_name(i)).unwrap().rows())
        .collect();

    // heavy churn + many background merges on all 3 tables, in parallel
    std::thread::scope(|s| {
        for i in 0..N {
            let db = Arc::clone(&db);
            s.spawn(move || {
                apply_stream(&db, &table_name(i), 800, 90 + i as u64);
            });
        }
    });
    db.flush_maintenance().unwrap();
    db.merge_all().unwrap();

    for (i, frozen_rows) in frozen.iter().enumerate() {
        let t = table_name(i);
        // the snapshot still reads its cut, byte for byte
        assert_eq!(
            &cut.table_snapshot(&t).unwrap().rows(),
            frozen_rows,
            "{t}: snapshot drifted"
        );
        // bounded version chain: pinned + current, nothing else
        let s = db.version_stats(&t).unwrap();
        assert!(
            s.live_mains <= s.pinned_versions + 1,
            "{t}: chain bound violated: {s:?}"
        );
        assert_eq!(s.pinned_versions, 1, "{t}: only the cut pins a version");
    }
    drop(cut);
    for i in 0..N {
        let s = db.version_stats(&table_name(i)).unwrap();
        assert_eq!(s.live_mains, 1, "last reader released → reclaimed");
        assert_eq!(s.pinned_bytes, 0);
    }
}

/// Cross-table write parallelism is real: under contention-free disjoint
/// tables, concurrent per-table DML through one `Arc<Database>` completes
/// and every table sees exactly its own writer's rows (no cross-talk).
#[test]
fn disjoint_tables_see_no_cross_talk() {
    const N: usize = 8;
    let db = Arc::new(Database::with_maintenance(bg_cfg(64)));
    for i in 0..N {
        db.create_table(&table_name(i), schema()).unwrap();
    }
    std::thread::scope(|s| {
        for i in 0..N {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for k in 0..300i32 {
                    db.insert(
                        &table_name(i),
                        &[
                            V::Int32(i as i32),
                            V::Int64(k as i64),
                            V::Str(format!("owner{i}")),
                        ],
                    )
                    .unwrap();
                }
            });
        }
    });
    db.flush_maintenance().unwrap();
    for i in 0..N {
        let rows = scan(&db, &table_name(i));
        assert_eq!(rows.len(), 300);
        assert!(
            rows.iter().all(|r| r[2] == Value::Str(format!("owner{i}"))),
            "table {i} contains foreign rows"
        );
    }
}
