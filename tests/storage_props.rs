//! Property tests for the storage substrate: relayouting is lossless for
//! *arbitrary* layouts, dictionary codes are stable, and typed readers
//! agree with decoded access — the invariants DESIGN.md §7 promises.

use mrdb::prelude::*;
use proptest::prelude::*;

const NCOLS: usize = 7;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("i32a", DataType::Int32),
        ColumnDef::new("i64b", DataType::Int64),
        ColumnDef::nullable("f64c", DataType::Float64),
        ColumnDef::new("strd", DataType::Str),
        ColumnDef::nullable("i32e", DataType::Int32),
        ColumnDef::nullable("strf", DataType::Str),
        ColumnDef::new("i32g", DataType::Int32),
    ])
}

/// Random partition of 0..NCOLS into groups, driven by a group-id vector.
fn arb_layout() -> impl Strategy<Value = Layout> {
    proptest::collection::vec(0usize..NCOLS, NCOLS).prop_map(|assignment| {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); NCOLS];
        for (col, &g) in assignment.iter().enumerate() {
            groups[g].push(col);
        }
        groups.retain(|g| !g.is_empty());
        Layout::from_groups(groups, NCOLS).expect("constructed cover")
    })
}

/// Random rows matching the schema.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    let row = (
        any::<i32>(),
        any::<i64>(),
        proptest::option::of(-1e6f64..1e6),
        0u8..20,
        proptest::option::of(any::<i32>()),
        proptest::option::of(0u8..10),
        any::<i32>(),
    )
        .prop_map(|(a, b, c, d, e, f, g)| {
            vec![
                Value::Int32(a),
                Value::Int64(b),
                c.map(Value::Float64).unwrap_or(Value::Null),
                Value::Str(format!("str-{d}")),
                e.map(Value::Int32).unwrap_or(Value::Null),
                f.map(|x| Value::Str(format!("tag-{x}")))
                    .unwrap_or(Value::Null),
                Value::Int32(g),
            ]
        });
    proptest::collection::vec(row, 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relayout_roundtrip_is_lossless(rows in arb_rows(), l1 in arb_layout(), l2 in arb_layout()) {
        let mut t = Table::with_layout("t", schema(), l1).unwrap();
        for r in &rows {
            t.insert(r).unwrap();
        }
        let relaid = t.relayout(l2).unwrap();
        prop_assert_eq!(t.len(), relaid.len());
        for i in 0..t.len() {
            prop_assert_eq!(t.row(i).unwrap(), relaid.row(i).unwrap(), "row {}", i);
        }
        // and back again
        let back = relaid.relayout(t.layout().clone()).unwrap();
        for i in 0..t.len() {
            prop_assert_eq!(t.row(i).unwrap(), back.row(i).unwrap());
        }
    }

    #[test]
    fn dictionary_codes_stable_across_relayout(rows in arb_rows(), l in arb_layout()) {
        let mut t = Table::with_layout("t", schema(), Layout::row(NCOLS)).unwrap();
        for r in &rows {
            t.insert(r).unwrap();
        }
        let relaid = t.relayout(l).unwrap();
        let (a, b) = (t.str_code_reader(3), relaid.str_code_reader(3));
        for i in 0..t.len() {
            prop_assert_eq!(a.get(i), b.get(i), "code at row {}", i);
        }
    }

    #[test]
    fn typed_readers_agree_with_decoded_values(rows in arb_rows(), l in arb_layout()) {
        let mut t = Table::with_layout("t", schema(), l).unwrap();
        for r in &rows {
            t.insert(r).unwrap();
        }
        let (r0, r1, r6) = (t.i32_reader(0), t.i64_reader(1), t.i32_reader(6));
        for i in 0..t.len() {
            prop_assert_eq!(Value::Int32(r0.get(i)), t.get(i, 0).unwrap());
            prop_assert_eq!(Value::Int64(r1.get(i)), t.get(i, 1).unwrap());
            prop_assert_eq!(Value::Int32(r6.get(i)), t.get(i, 6).unwrap());
            // nullable float: reader value only meaningful when valid
            if t.is_valid(i, 2) {
                prop_assert_eq!(Value::Float64(t.f64_reader(2).get(i)), t.get(i, 2).unwrap());
            } else {
                prop_assert_eq!(t.get(i, 2).unwrap(), Value::Null);
            }
        }
    }

    #[test]
    fn byte_size_accounts_all_partitions(rows in arb_rows(), l in arb_layout()) {
        let mut t = Table::with_layout("t", schema(), l).unwrap();
        for r in &rows {
            t.insert(r).unwrap();
        }
        let per_partition: usize = t.partitions().iter().map(|p| p.byte_size()).sum();
        prop_assert_eq!(t.byte_size(), per_partition);
        let strides: usize = t.partitions().iter().map(|p| p.stride()).sum();
        prop_assert_eq!(per_partition, strides * t.len());
    }

    #[test]
    fn updates_visible_under_any_layout(rows in arb_rows(), l in arb_layout(), v in any::<i32>()) {
        prop_assume!(!rows.is_empty());
        let mut t = Table::with_layout("t", schema(), l).unwrap();
        for r in &rows {
            t.insert(r).unwrap();
        }
        let target = rows.len() / 2;
        t.update(target, 0, &Value::Int32(v)).unwrap();
        t.update(target, 2, &Value::Null).unwrap();
        prop_assert_eq!(t.get(target, 0).unwrap(), Value::Int32(v));
        prop_assert_eq!(t.get(target, 2).unwrap(), Value::Null);
        // neighbours untouched
        if target > 0 {
            prop_assert_eq!(&t.row(target - 1).unwrap().0[..], &rows[target - 1][..]);
        }
    }
}
