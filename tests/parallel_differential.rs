//! Differential testing of the morsel-driven parallel engine: on the
//! microbenchmark and CH workloads, `EngineKind::Parallel` must produce
//! results identical to every sequential engine, across worker counts
//! (1/2/4/8), storage layouts (row / column / advised hybrid), and after
//! relayouts. Thread count must never leak into query results.

use mrdb::par::ParallelEngine;
use mrdb::prelude::*;
use mrdb::workloads::{ch, microbench};

mod common;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Run `plan` on every registered engine plus pinned-thread parallel
/// engines, asserting all outputs match the first engine's.
fn assert_all_engines_agree(db: &Database, plan: &mrdb::plan::logical::LogicalPlan, ctx: &str) {
    let base = common::assert_engines_agree(plan, db, ctx);
    for threads in THREAD_COUNTS {
        let engine = ParallelEngine::with_threads(threads);
        let out = mrdb::exec::Engine::execute(&engine, plan, db)
            .unwrap_or_else(|e| panic!("{ctx}: parallel({threads}) failed: {e}"));
        base.assert_same(&out, &format!("{ctx}: parallel threads={threads}"));
    }
}

#[test]
fn microbench_all_layouts_all_threads() {
    let base = microbench::generate(40_000, 0.05, Layout::row(microbench::N_COLS), 11);
    for (layout_name, layout) in microbench::layouts() {
        let mut db = Database::new();
        db.register(base.relayout(layout).unwrap());
        for sel in [0.0, 0.01, 0.5] {
            let plan = microbench::query(sel);
            assert_all_engines_agree(&db, &plan, &format!("microbench {layout_name} sel={sel}"));
        }
    }
}

#[test]
fn microbench_exact_sums_survive_threading() {
    // Deterministic expectation, computed independently of any engine.
    let n = 30_000;
    let t = microbench::generate(n, 0.1, microbench::pdsm_layout(), 5);
    let mut expect = [0i64; 4];
    for r in 0..t.len() {
        if t.get(r, 0).unwrap() == Value::Int32(0) {
            for (slot, e) in expect.iter_mut().enumerate() {
                *e += t.get(r, slot + 1).unwrap().as_i64().unwrap();
            }
        }
    }
    let mut db = Database::new();
    db.register(t);
    let plan = microbench::query(0.1);
    for threads in THREAD_COUNTS {
        let out = mrdb::exec::Engine::execute(&ParallelEngine::with_threads(threads), &plan, &db)
            .unwrap();
        for (slot, e) in expect.iter().enumerate() {
            assert_eq!(
                out.rows[0][slot],
                Value::Int64(*e),
                "sum({}) at threads={threads}",
                slot + 1
            );
        }
    }
}

#[test]
fn ch_workload_row_layout() {
    let mut db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (row)", q.name));
    }
}

#[test]
fn ch_workload_columnar_layout() {
    let mut db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    for name in db
        .table_names()
        .into_iter()
        .map(str::to_string)
        .collect::<Vec<_>>()
    {
        let w = db.get_table(&name).unwrap().schema().len();
        db.relayout(&name, Layout::column(w)).unwrap();
    }
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (columnar)", q.name));
    }
}

#[test]
fn ch_workload_advised_layout() {
    let mut db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    let mut workload = Workload::new();
    for q in ch::queries() {
        if let Some(p) = q.as_plan() {
            workload.push(WorkloadQuery::new(q.name.clone(), p.clone()));
        }
    }
    LayoutAdvisor::default().apply(&mut db, &workload).unwrap();
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (advised)", q.name));
    }
}

#[test]
fn parallel_scan_order_is_byte_identical_to_compiled() {
    // Non-aggregating plans promise *exact* row order, not just set
    // equality: per-morsel buffers must stitch back into scan order.
    let t = microbench::generate(25_000, 0.2, microbench::pdsm_layout(), 3);
    let mut db = Database::new();
    db.register(t);
    let plan = mrdb::plan::builder::QueryBuilder::scan("R")
        .filter(mrdb::plan::expr::Expr::col(0).eq(mrdb::plan::expr::Expr::lit(0)))
        .project(vec![
            mrdb::plan::expr::Expr::col(1),
            mrdb::plan::expr::Expr::col(15),
        ])
        .build();
    let compiled = db.run(&plan, EngineKind::Compiled).unwrap();
    assert!(!compiled.is_empty());
    for threads in THREAD_COUNTS {
        let par = mrdb::exec::Engine::execute(&ParallelEngine::with_threads(threads), &plan, &db)
            .unwrap();
        assert_eq!(compiled.rows, par.rows, "threads={threads}");
    }
}

#[test]
fn thread_knob_resolution() {
    // Explicit setting wins; the automatic default is always at least one
    // worker. The PDSM_THREADS environment path is exercised out of
    // process (see `fig_scaling` / `examples/parallel_scan`): mutating the
    // environment from inside this multi-threaded test binary would race
    // with sibling tests reading it.
    assert_eq!(ParallelEngine::with_threads(5).effective_threads(), 5);
    assert!(ParallelEngine::new().effective_threads() >= 1);
}
