//! Differential testing of the morsel-driven parallel engine: on the
//! microbenchmark and CH workloads, `EngineKind::Parallel` must produce
//! results identical to every sequential engine, across worker counts
//! (1/2/4/8), storage layouts (row / column / advised hybrid), and after
//! relayouts. Thread count must never leak into query results.

use mrdb::par::ParallelEngine;
use mrdb::prelude::*;
use mrdb::workloads::{ch, microbench};

mod common;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Run `plan` on every registered engine plus pinned-thread parallel
/// engines, asserting all outputs match the first engine's.
fn assert_all_engines_agree(db: &Database, plan: &mrdb::plan::logical::LogicalPlan, ctx: &str) {
    // Engines consume a TableProvider; under the shared-handle API that is
    // a snapshot pinned at the current version, not the database itself.
    let snap = db.snapshot();
    let base = common::assert_engines_agree(plan, &snap, ctx);
    for threads in THREAD_COUNTS {
        let engine = ParallelEngine::with_threads(threads);
        let out = mrdb::exec::Engine::execute(&engine, plan, &snap)
            .unwrap_or_else(|e| panic!("{ctx}: parallel({threads}) failed: {e}"));
        base.assert_same(&out, &format!("{ctx}: parallel threads={threads}"));
    }
}

#[test]
fn microbench_all_layouts_all_threads() {
    let base = microbench::generate(40_000, 0.05, Layout::row(microbench::N_COLS), 11);
    for (layout_name, layout) in microbench::layouts() {
        let db = Database::new();
        db.register(base.relayout(layout).unwrap());
        for sel in [0.0, 0.01, 0.5] {
            let plan = microbench::query(sel);
            assert_all_engines_agree(&db, &plan, &format!("microbench {layout_name} sel={sel}"));
        }
    }
}

#[test]
fn microbench_exact_sums_survive_threading() {
    // Deterministic expectation, computed independently of any engine.
    let n = 30_000;
    let t = microbench::generate(n, 0.1, microbench::pdsm_layout(), 5);
    let mut expect = [0i64; 4];
    for r in 0..t.len() {
        if t.get(r, 0).unwrap() == Value::Int32(0) {
            for (slot, e) in expect.iter_mut().enumerate() {
                *e += t.get(r, slot + 1).unwrap().as_i64().unwrap();
            }
        }
    }
    let db = Database::new();
    db.register(t);
    let plan = microbench::query(0.1);
    let snap = db.snapshot();
    for threads in THREAD_COUNTS {
        let out = mrdb::exec::Engine::execute(&ParallelEngine::with_threads(threads), &plan, &snap)
            .unwrap();
        for (slot, e) in expect.iter().enumerate() {
            assert_eq!(
                out.rows[0][slot],
                Value::Int64(*e),
                "sum({}) at threads={threads}",
                slot + 1
            );
        }
    }
}

#[test]
fn ch_workload_row_layout() {
    let db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (row)", q.name));
    }
}

#[test]
fn ch_workload_columnar_layout() {
    let db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    for name in db.table_names() {
        let w = db.get_table(&name).unwrap().schema().len();
        db.relayout(&name, Layout::column(w)).unwrap();
    }
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (columnar)", q.name));
    }
}

#[test]
fn ch_workload_advised_layout() {
    let db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    let mut workload = Workload::new();
    for q in ch::queries() {
        if let Some(p) = q.as_plan() {
            workload.push(WorkloadQuery::new(q.name.clone(), p.clone()));
        }
    }
    LayoutAdvisor::default().apply(&db, &workload).unwrap();
    for q in ch::queries() {
        let Some(plan) = q.as_plan() else { continue };
        assert_all_engines_agree(&db, plan, &format!("CH {} (advised)", q.name));
    }
}

#[test]
fn parallel_scan_order_is_byte_identical_to_compiled() {
    // Non-aggregating plans promise *exact* row order, not just set
    // equality: per-morsel buffers must stitch back into scan order.
    let t = microbench::generate(25_000, 0.2, microbench::pdsm_layout(), 3);
    let db = Database::new();
    db.register(t);
    let plan = mrdb::plan::builder::QueryBuilder::scan("R")
        .filter(mrdb::plan::expr::Expr::col(0).eq(mrdb::plan::expr::Expr::lit(0)))
        .project(vec![
            mrdb::plan::expr::Expr::col(1),
            mrdb::plan::expr::Expr::col(15),
        ])
        .build();
    let compiled = db.run(&plan, EngineKind::Compiled).unwrap();
    assert!(!compiled.is_empty());
    let snap = db.snapshot();
    for threads in THREAD_COUNTS {
        let par = mrdb::exec::Engine::execute(&ParallelEngine::with_threads(threads), &plan, &snap)
            .unwrap();
        assert_eq!(compiled.rows, par.rows, "threads={threads}");
    }
}

/// The ROADMAP's multi-core CI target, asserted rather than just
/// recorded: parallel scan ≥2× over 1 thread at 4 threads. Opt-in via
/// `PDSM_ASSERT_SCALING=1` (the `multicore` CI job sets it) so laptop
/// `cargo test` runs never flake on timing; self-skips with a logged
/// notice when the host has fewer than 4 cores (hosted runners vary).
#[test]
fn parallel_scan_scaling_asserted_on_multicore() {
    if std::env::var("PDSM_ASSERT_SCALING").is_err() {
        eprintln!("notice: PDSM_ASSERT_SCALING unset; skipping the ≥2x @ 4-thread assertion");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("notice: only {cores} core(s) available; skipping the ≥2x @ 4-thread assertion");
        return;
    }
    let db = Database::new();
    db.register(microbench::generate(
        2_000_000,
        0.05,
        microbench::pdsm_layout(),
        17,
    ));
    let plan = microbench::query(0.05);
    let snap = db.snapshot();
    let best_of = |threads: usize| -> f64 {
        let engine = ParallelEngine::with_threads(threads);
        // warm-up, then best of 5 (scaling is about capacity, not noise)
        let _ = mrdb::exec::Engine::execute(&engine, &plan, &snap).unwrap();
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                std::hint::black_box(mrdb::exec::Engine::execute(&engine, &plan, &snap).unwrap());
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::MAX, f64::min)
    };
    let t1 = best_of(1);
    let t4 = best_of(4);
    let speedup = t1 / t4;
    eprintln!("parallel scan scaling: 1t {t1:.4}s, 4t {t4:.4}s -> {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "parallel scan must scale ≥2x at 4 threads on a ≥4-core host \
         (got {speedup:.2}x: 1t {t1:.4}s vs 4t {t4:.4}s)"
    );
}

#[test]
fn thread_knob_resolution() {
    // Explicit setting wins; the automatic default is always at least one
    // worker. The PDSM_THREADS environment path is exercised out of
    // process (see `fig_scaling` / `examples/parallel_scan`): mutating the
    // environment from inside this multi-threaded test binary would race
    // with sibling tests reading it.
    assert_eq!(ParallelEngine::with_threads(5).effective_threads(), 5);
    assert!(ParallelEngine::new().effective_threads() >= 1);
}
