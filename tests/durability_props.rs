//! Property test for crash recovery: for *random* mixed op streams and a
//! *random* kill point inside the WAL, recovery must reconstruct exactly
//! the prefix of operations whose records survived in full — byte-identical
//! rows, in scan order, to an in-memory model replayed to the last whole
//! record.

use mrdb::prelude::*;
use mrdb::store::truncate_at;
use mrdb::workloads::microbench::{self, N_COLS};
use mrdb::workloads::mixed::{microbench_mix, MixedOp};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_dir() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("pdsm-durability-props-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_durable(dir: &Path) -> Database {
    Database::open_with(
        DurabilityConfig::new(dir).with_fsync(FsyncMode::Off),
        MaintenanceConfig {
            mode: MaintenanceMode::Off,
            ..MaintenanceConfig::default()
        },
    )
    .unwrap()
}

fn memory_db() -> Database {
    Database::with_maintenance(MaintenanceConfig {
        mode: MaintenanceMode::Off,
        ..MaintenanceConfig::default()
    })
}

/// Apply one mixed-workload write through the normal DML path; true iff
/// it reached the table (one WAL record when durable).
fn apply_op(db: &Database, live: &mut Vec<usize>, op: &MixedOp) -> bool {
    db.with_table_write("R", |vt| match op {
        MixedOp::Read { .. } => false,
        MixedOp::Insert { rows } => {
            live.extend(vt.insert_batch(rows).unwrap());
            true
        }
        MixedOp::Update {
            row_hint,
            col,
            value,
        } => {
            if live.is_empty() {
                return false;
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            live[slot] = vt.update(live[slot], *col, value).unwrap();
            true
        }
        MixedOp::Delete { row_hint } => {
            if live.is_empty() {
                return false;
            }
            let slot = (*row_hint % live.len() as u64) as usize;
            vt.delete(live[slot]).unwrap();
            live.swap_remove(slot);
            true
        }
    })
    .unwrap()
}

fn scan_rows(db: &Database) -> Vec<Vec<Value>> {
    db.run(&QueryBuilder::scan("R").build(), EngineKind::Compiled)
        .unwrap()
        .rows
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_kill_point_recovers_to_last_whole_record(
        seed in 0u64..10_000,
        n_ops in 10usize..60,
        cut_permille in 0u64..=1000,
    ) {
        let dir = case_dir();
        let base = microbench::generate(80, 0.1, Layout::row(N_COLS), seed ^ 0xB0B);
        {
            let db = open_durable(&dir);
            db.register(base.clone());
            let workload = microbench_mix(n_ops, 0.0, 0.1, seed);
            let mut live: Vec<usize> = (0..db.get_table("R").unwrap().len()).collect();
            for op in &workload.ops {
                apply_op(&db, &mut live, op);
            }
        }

        // Kill: chop the WAL at a random byte offset.
        let wal = dir.join("R").join("wal.0.log");
        let full = std::fs::metadata(&wal).unwrap().len();
        let cut = full * cut_permille / 1000;
        truncate_at(&wal, cut).unwrap();

        let recovered = open_durable(&dir);
        let replayed = recovered.storage_stats().recovery_replay_ops;

        // The surviving replica: same base, same op stream, stopped at the
        // last op whose record survived in full.
        let replica = memory_db();
        replica.register(base);
        let workload = microbench_mix(n_ops, 0.0, 0.1, seed);
        let mut live: Vec<usize> = (0..replica.get_table("R").unwrap().len()).collect();
        let mut durable_ops = 0u64;
        for op in &workload.ops {
            if durable_ops == replayed {
                break;
            }
            if apply_op(&replica, &mut live, op) {
                durable_ops += 1;
            }
        }
        prop_assert_eq!(durable_ops, replayed, "replay count exceeds the op stream");
        // Byte-identical state, in scan order.
        prop_assert_eq!(scan_rows(&recovered), scan_rows(&replica));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
