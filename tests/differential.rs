//! Cross-engine differential testing: for randomly generated tables,
//! layouts and plans, every registered processing model must produce
//! identical results. This is the load-bearing guarantee behind every
//! performance comparison in the benchmark harness — if the engines
//! disagree, the figures are meaningless.
//!
//! Engines are enumerated through `EngineKind::all()`, so a newly
//! registered engine (e.g. the morsel-driven parallel one) is covered here
//! without editing any test.

use mrdb::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

mod common;

/// Build a 6-column table (i32, i32, i64, f64 nullable, str, i32) with `n`
/// rows derived from a seed.
fn make_table(n: usize, seed: u64, layout: Layout) -> Table {
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int32),
        ColumnDef::new("b", DataType::Int32),
        ColumnDef::new("c", DataType::Int64),
        ColumnDef::nullable("d", DataType::Float64),
        ColumnDef::new("s", DataType::Str),
        ColumnDef::new("e", DataType::Int32),
    ]);
    let mut t = Table::with_layout("t", schema, layout).unwrap();
    let mut x = seed | 1;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..n {
        let d = if next() % 5 == 0 {
            Value::Null
        } else {
            Value::Float64((next() % 1000) as f64 / 8.0)
        };
        t.insert(&[
            Value::Int32((next() % 50) as i32 - 25),
            Value::Int32((next() % 10) as i32),
            Value::Int64((next() % 10_000) as i64),
            d,
            Value::Str(format!("s{}", next() % 7)),
            Value::Int32(i as i32),
        ])
        .unwrap();
    }
    t
}

/// A strategy over simple predicate expressions on the 6-column schema.
fn arb_pred() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-30i32..30).prop_map(|v| Expr::col(0).lt(Expr::lit(v))),
        (0i32..10).prop_map(|v| Expr::col(1).eq(Expr::lit(v))),
        (0i64..10_000).prop_map(|v| Expr::col(2).ge(Expr::lit(v))),
        (0i32..7).prop_map(|v| Expr::col(4).eq(Expr::lit(format!("s{v}")))),
        Just(Expr::col(3).is_null()),
        (0i32..7).prop_map(|v| Expr::col(4).like(format!("s{v}%"))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

/// A strategy over layouts of the 6-column schema.
fn arb_layout() -> impl Strategy<Value = Layout> {
    prop_oneof![
        Just(Layout::row(6)),
        Just(Layout::column(6)),
        Just(Layout::from_groups(vec![vec![0, 2], vec![1, 4], vec![3, 5]], 6).unwrap()),
        Just(Layout::from_groups(vec![vec![5, 1, 0], vec![2], vec![3], vec![4]], 6).unwrap()),
    ]
}

fn run_all(plan: &LogicalPlan, db: &HashMap<String, Table>, ctx: &str) {
    common::assert_engines_agree(plan, db, ctx);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn filter_project(pred in arb_pred(), layout in arb_layout(), seed in 1u64..5000) {
        let t = make_table(300, seed, layout);
        let mut db = HashMap::new();
        db.insert("t".to_string(), t);
        let plan = QueryBuilder::scan("t")
            .filter(pred)
            .project(vec![Expr::col(5), Expr::col(0), Expr::col(3)])
            .build();
        run_all(&plan, &db, "filter_project");
    }

    #[test]
    fn filter_aggregate(pred in arb_pred(), layout in arb_layout(), seed in 1u64..5000) {
        let t = make_table(300, seed, layout);
        let mut db = HashMap::new();
        db.insert("t".to_string(), t);
        let plan = QueryBuilder::scan("t")
            .filter(pred)
            .aggregate(
                vec![Expr::col(1)],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                    AggExpr::new(AggFunc::Avg, Expr::col(3)),
                    AggExpr::new(AggFunc::Min, Expr::col(2)),
                    AggExpr::new(AggFunc::Max, Expr::col(2)),
                ],
            )
            .build();
        run_all(&plan, &db, "filter_aggregate");
    }

    #[test]
    fn join_aggregate(pred in arb_pred(), l1 in arb_layout(), l2 in arb_layout(), seed in 1u64..5000) {
        let t1 = make_table(200, seed, l1);
        let mut t2 = make_table(150, seed.wrapping_mul(31), l2);
        // rename to make a second table
        let mut db = HashMap::new();
        t2 = t2.relayout(t2.layout().clone()).unwrap();
        db.insert("t".to_string(), t1);
        db.insert("u".to_string(), t2);
        let plan = QueryBuilder::scan("t")
            .filter(pred)
            .join(QueryBuilder::scan("u").build(), Expr::col(1), Expr::col(1))
            .aggregate(
                vec![Expr::col(6 + 4)],
                vec![AggExpr::count_star(), AggExpr::new(AggFunc::Sum, Expr::col(6 + 2))],
            )
            .build();
        run_all(&plan, &db, "join_aggregate");
    }

    #[test]
    fn sort_limit_exact(layout in arb_layout(), seed in 1u64..5000, k in 1usize..40) {
        let t = make_table(250, seed, layout);
        let mut db = HashMap::new();
        db.insert("t".to_string(), t);
        let plan = QueryBuilder::scan("t")
            .project(vec![Expr::col(2), Expr::col(5)])
            .sort(vec![(Expr::col(0), false), (Expr::col(1), true)])
            .limit(k)
            .build();
        // sorted output with a unique tiebreak column must match exactly —
        // row-for-row, across every registered engine that can sort
        let reference = EngineKind::all()[0].engine().execute(&plan, &db).unwrap();
        for kind in &EngineKind::all()[1..] {
            if !kind.supports(&plan) {
                continue;
            }
            let out = kind.engine().execute(&plan, &db).unwrap();
            prop_assert_eq!(&reference.rows, &out.rows, "{:?}", kind);
        }
    }

    #[test]
    fn arithmetic_projection(layout in arb_layout(), seed in 1u64..5000, div in 1i32..20) {
        let t = make_table(200, seed, layout);
        let mut db = HashMap::new();
        db.insert("t".to_string(), t);
        // the CNET price-bucket idiom: (x / d) * d, with NULL propagation
        let bucket = Expr::col(3).div(Expr::lit(div)).mul(Expr::lit(div));
        let plan = QueryBuilder::scan("t")
            .aggregate(vec![bucket], vec![AggExpr::count_star()])
            .build();
        run_all(&plan, &db, "arithmetic_projection");
    }
}

#[test]
fn empty_table_all_plans() {
    let t = make_table(0, 1, Layout::row(6));
    let mut db = HashMap::new();
    db.insert("t".to_string(), t);
    for plan in [
        QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(1)))
            .build(),
        QueryBuilder::scan("t")
            .aggregate(
                vec![],
                vec![
                    AggExpr::count_star(),
                    AggExpr::new(AggFunc::Sum, Expr::col(0)),
                ],
            )
            .build(),
        QueryBuilder::scan("t")
            .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
            .build(),
    ] {
        run_all(&plan, &db, "empty_table");
    }
}
