//! Property tests for the index structures: red–black invariants under
//! arbitrary insertion orders, equivalence with `std` collections as
//! models, and index-path/scan-path agreement at the database level.

use mrdb::index::{HashIndex, RBTree};
use mrdb::prelude::*;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rbtree_invariants_hold_for_any_insertion_order(
        keys in proptest::collection::vec(-5_000i64..5_000, 0..600),
    ) {
        let mut t = RBTree::new();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
        }
        t.check_invariants();
        // size = number of distinct keys
        let distinct: std::collections::HashSet<i64> = keys.iter().copied().collect();
        prop_assert_eq!(t.len(), distinct.len());
    }

    #[test]
    fn rbtree_matches_btreemap_model(
        keys in proptest::collection::vec(-1_000i64..1_000, 0..400),
        lo in -1_000i64..1_000,
        span in 0i64..500,
    ) {
        let mut t = RBTree::new();
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u32);
            model.entry(k).or_default().push(i as u32);
        }
        // point lookups
        for &k in keys.iter().take(50) {
            prop_assert_eq!(t.get(k), model[&k].as_slice());
        }
        // range scan
        let hi = lo + span;
        let ours: Vec<(i64, Vec<u32>)> = t.range(lo, hi).map(|(k, v)| (k, v.to_vec())).collect();
        let theirs: Vec<(i64, Vec<u32>)> = model
            .range(lo..=hi)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        prop_assert_eq!(ours, theirs);
        // extremes
        prop_assert_eq!(t.min_key(), model.keys().next().copied());
        prop_assert_eq!(t.max_key(), model.keys().last().copied());
    }

    #[test]
    fn hash_index_matches_hashmap_model(
        keys in proptest::collection::vec(any::<i64>(), 0..500),
    ) {
        let mut h = HashIndex::new();
        let mut model: HashMap<i64, Vec<u32>> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            if k == i64::MIN {
                continue; // reserved sentinel
            }
            h.insert(k, i as u32);
            model.entry(k).or_default().push(i as u32);
        }
        prop_assert_eq!(h.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(h.get(*k), v.as_slice());
        }
        // absent keys
        prop_assert!(h.get(i64::MIN + 1).is_empty() || model.contains_key(&(i64::MIN + 1)));
    }

    #[test]
    fn database_index_path_equals_scan_path(
        keys in proptest::collection::vec(0i32..200, 1..200),
        probe in 0i32..250,
        use_rbtree in any::<bool>(),
    ) {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::new("k", DataType::Int32),
                ColumnDef::new("v", DataType::Int64),
            ]),
        )
        .unwrap();
        for (i, &k) in keys.iter().enumerate() {
            db.insert("t", &[Value::Int32(k), Value::Int64(i as i64)]).unwrap();
        }
        let kind = if use_rbtree { IndexKind::RBTree } else { IndexKind::Hash };
        db.create_index("t", "k", kind).unwrap();
        let eq_plan = QueryBuilder::scan("t")
            .filter(Expr::col(0).eq(Expr::lit(probe)))
            .build();
        let indexed = db.run_indexed(&eq_plan, EngineKind::Compiled).unwrap();
        let scanned = db.run(&eq_plan, EngineKind::Compiled).unwrap();
        indexed.assert_same(&scanned, "eq");
        if use_rbtree {
            let range_plan = QueryBuilder::scan("t")
                .filter(Expr::col(0).le(Expr::lit(probe)))
                .project(vec![Expr::col(1)])
                .build();
            let indexed = db.run_indexed(&range_plan, EngineKind::Compiled).unwrap();
            let scanned = db.run(&range_plan, EngineKind::Compiled).unwrap();
            indexed.assert_same(&scanned, "range");
        }
    }
}
