//! The versioned write path's core correctness contract: with a non-empty
//! delta — including tombstoned rows — every engine in `EngineKind::all()`
//! returns results identical to a merged-then-scanned table, on the
//! microbenchmark and on SAP-SD under the Q6 write mix.

use mrdb::prelude::*;
use mrdb::workloads::mixed::{MixedOp, MixedWorkload};
use mrdb::workloads::{microbench, mixed, sapsd};

mod common;

/// Drive a mixed workload's write ops through the `Database` DML API,
/// resolving row hints the same way `mixed::apply_write` does.
fn apply_ops(db: &Database, w: &MixedWorkload) {
    let table = w.table.as_str();
    let mut live: Vec<usize> = db.with_table(table, mixed::live_ids).unwrap();
    let col_names: Vec<String> = db
        .get_table(table)
        .unwrap()
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    for op in &w.ops {
        match op {
            MixedOp::Read { .. } => {}
            MixedOp::Insert { rows } => {
                live.extend(db.insert_batch(table, rows).unwrap());
            }
            MixedOp::Update {
                row_hint,
                col,
                value,
            } => {
                if live.is_empty() {
                    continue;
                }
                let slot = (*row_hint % live.len() as u64) as usize;
                live[slot] = db
                    .update(table, live[slot], &col_names[*col], value)
                    .unwrap();
            }
            MixedOp::Delete { row_hint } => {
                if live.is_empty() {
                    continue;
                }
                let slot = (*row_hint % live.len() as u64) as usize;
                db.delete(table, live[slot]).unwrap();
                live.swap_remove(slot);
            }
        }
    }
}

/// The delta must be non-trivial for the comparison to mean anything:
/// appended rows *and* tombstones.
fn assert_delta_nontrivial(db: &Database, table: &str) {
    let (has_delta, delta_rows, dead_main) = db
        .with_table(table, |vt| {
            (
                vt.has_delta(),
                vt.delta_rows(),
                vt.overlay().is_some_and(|o| o.dead.iter().any(|d| *d)),
            )
        })
        .unwrap();
    assert!(has_delta, "{table}: delta empty");
    assert!(delta_rows > 0, "{table}: no appended rows");
    assert!(dead_main, "{table}: no tombstoned main rows");
}

#[test]
fn microbench_delta_matches_merged_on_all_engines_and_layouts() {
    for (lname, layout) in microbench::layouts() {
        let build = || {
            let db = Database::new();
            db.register(microbench::generate(4_000, 0.05, layout.clone(), 21));
            // write-heavy mix → inserts, updates and deletes, no merges
            apply_ops(&db, &mixed::microbench_mix(400, 0.0, 0.05, 33));
            db
        };
        let live = build();
        assert_delta_nontrivial(&live, "R");
        let merged = build();
        merged.merge_all().unwrap();
        assert!(!merged.with_table("R", |vt| vt.has_delta()).unwrap());

        for sel in [0.0, 0.05, 1.0] {
            let plan = microbench::query(sel);
            for kind in EngineKind::all() {
                let a = live.run(&plan, kind).unwrap();
                let b = merged.run(&plan, kind).unwrap();
                a.assert_same(&b, &format!("{lname}/sel={sel}/{kind:?} delta vs merged"));
            }
        }
        // bare scans must agree row-for-row in order, not just as sets
        let scan = QueryBuilder::scan("R").build();
        for kind in EngineKind::all() {
            let a = live.run(&scan, kind).unwrap();
            let b = merged.run(&scan, kind).unwrap();
            assert_eq!(
                a.rows, b.rows,
                "{lname}/{kind:?}: delta scan order differs from merged scan order"
            );
        }
    }
}

#[test]
fn sapsd_q6_mix_delta_matches_merged_on_all_queries() {
    let build = || {
        let db = Database::new();
        for t in sapsd::tables(150, 7) {
            db.register(t);
        }
        // Q6-style mix on VBAP: inserts + NETWR updates + deletes
        apply_ops(&db, &mixed::sapsd_q6_mix(150, 300, 0.0, 17));
        db
    };
    let live = build();
    assert_delta_nontrivial(&live, "VBAP");
    let merged = build();
    merged.merge_all().unwrap();

    // every SAP-SD read query — including the VBAK ⋈ VBAP join (Q4) whose
    // probe side carries the delta — on every engine
    for q in sapsd::queries(150) {
        let Some(plan) = q.as_plan() else { continue };
        for kind in EngineKind::all() {
            if !kind.supports(plan) {
                continue;
            }
            let a = live.run(plan, kind).unwrap();
            let b = merged.run(plan, kind).unwrap();
            a.assert_same(&b, &format!("{}/{kind:?} delta vs merged", q.name));
        }
    }
}

#[test]
fn engines_agree_with_each_other_on_live_delta() {
    let db = Database::new();
    for t in sapsd::tables(120, 7) {
        db.register(t);
    }
    apply_ops(&db, &mixed::sapsd_q6_mix(120, 200, 0.0, 29));
    assert_delta_nontrivial(&db, "VBAP");
    // Engines consume a TableProvider; under the shared-handle API that
    // is a pinned snapshot, not the database itself.
    let snap = db.snapshot();
    for q in sapsd::queries(120) {
        let Some(plan) = q.as_plan() else { continue };
        common::assert_engines_agree(plan, &snap, &q.name);
    }
}

#[test]
fn snapshots_isolate_from_later_dml_and_merge() {
    let db = Database::new();
    db.register(microbench::generate(
        2_000,
        0.05,
        microbench::pdsm_layout(),
        5,
    ));
    apply_ops(&db, &mixed::microbench_mix(100, 0.0, 0.05, 41));
    let plan = microbench::query(0.05);
    let snap = db.snapshot();
    let before = snap.run(&plan, EngineKind::Compiled).unwrap();

    // churn the table and merge; the snapshot must not move
    apply_ops(&db, &mixed::microbench_mix(200, 0.0, 0.05, 43));
    db.merge("R").unwrap();
    let after_on_snap = snap.run(&plan, EngineKind::Compiled).unwrap();
    assert_eq!(before.rows, after_on_snap.rows, "snapshot moved");
    for kind in EngineKind::all() {
        let out = snap.run(&plan, kind).unwrap();
        before.assert_same(&out, &format!("snapshot/{kind:?}"));
    }
}

#[test]
fn advisor_apply_merges_delta_and_preserves_results() {
    let db = Database::new();
    db.register(microbench::generate(3_000, 0.05, Layout::row(16), 3));
    apply_ops(&db, &mixed::microbench_mix(150, 0.0, 0.05, 11));
    assert!(db.with_table("R", |vt| vt.has_delta()).unwrap());

    let plan = microbench::query(0.05);
    let before = db.run(&plan, EngineKind::Compiled).unwrap();
    let mut workload = Workload::new();
    workload.push(WorkloadQuery::new("fig2", plan.clone()));
    LayoutAdvisor::default().apply(&db, &workload).unwrap();

    // relayout-as-merge folded the delta in
    assert!(!db.with_table("R", |vt| vt.has_delta()).unwrap());
    let after = db.run(&plan, EngineKind::Compiled).unwrap();
    before.assert_same(&after, "advised merge");
}
