//! End-to-end pipeline tests spanning all crates: benchmark data →
//! database → layout advisor → relayout → engines → indexes.

use mrdb::prelude::*;
use mrdb::workloads::{ch, cnet, sapsd, QueryKind};

fn load_sapsd(scale: usize) -> (Database, Vec<mrdb::workloads::BenchQuery>) {
    let db = Database::new();
    for t in sapsd::tables(scale, 7) {
        db.register(t);
    }
    (db, sapsd::queries(scale))
}

#[test]
fn sapsd_advisor_roundtrip_preserves_all_query_results() {
    let (db, queries) = load_sapsd(400);
    let mut workload = Workload::new();
    for q in &queries {
        if let Some(p) = q.as_plan() {
            workload.push(WorkloadQuery::new(q.name.clone(), p.clone()));
        }
    }
    let before: Vec<_> = workload
        .queries
        .iter()
        .map(|q| db.run(&q.plan, EngineKind::Compiled).unwrap())
        .collect();
    let report = LayoutAdvisor::default().apply(&db, &workload).unwrap();
    assert_eq!(report.tables.len(), 5, "all five SD tables advised");
    assert!(report.speedup_vs_row() >= 1.0);
    for (q, b) in workload.queries.iter().zip(&before) {
        let after = db.run(&q.plan, EngineKind::Compiled).unwrap();
        after.assert_same(b, &q.name);
        // and the other engines still agree post-relayout
        let vol = db.run(&q.plan, EngineKind::Volcano).unwrap();
        after.assert_same(&vol, &format!("{} volcano", q.name));
    }
}

#[test]
fn sapsd_insert_query_visibility() {
    let (db, queries) = load_sapsd(300);
    let q6 = &queries[5];
    let QueryKind::Insert { table, .. } = &q6.kind else {
        panic!("Q6 must be the insert query");
    };
    let count_plan = QueryBuilder::scan(table.as_str())
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let before = db.run(&count_plan, EngineKind::Compiled).unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(1);
    for k in 0..50 {
        let row = sapsd::vbap_row(&mut rng, 1_000_000 + k, 10);
        db.insert(table, &row).unwrap();
    }
    let after = db.run(&count_plan, EngineKind::Compiled).unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(after, before + 50);
}

#[test]
fn sapsd_indexes_agree_with_scans_on_all_layouts() {
    for columnar in [false, true] {
        let (db, queries) = load_sapsd(300);
        if columnar {
            for name in db.table_names() {
                let w = db.get_table(&name).unwrap().schema().len();
                db.relayout(&name, Layout::column(w)).unwrap();
            }
        }
        db.create_index("KNA1", "KUNNR", IndexKind::Hash).unwrap();
        db.create_index("VBAP", "VBELN", IndexKind::RBTree).unwrap();
        for q in &queries {
            let Some(plan) = q.as_plan() else { continue };
            let indexed = db.run_indexed(plan, EngineKind::Compiled).unwrap();
            let scanned = db.run(plan, EngineKind::Compiled).unwrap();
            indexed.assert_same(&scanned, &format!("{} columnar={columnar}", q.name));
        }
    }
}

#[test]
fn ch_queries_stable_across_layout_changes() {
    let db = Database::new();
    for t in ch::tables(1, 13) {
        db.register(t);
    }
    let queries = ch::queries();
    let before: Vec<_> = queries
        .iter()
        .map(|q| db.run(q.as_plan().unwrap(), EngineKind::Compiled).unwrap())
        .collect();
    // flip the two biggest tables to columnar
    for name in ["ORDER_LINE", "CUSTOMER"] {
        let w = db.get_table(name).unwrap().schema().len();
        db.relayout(name, Layout::column(w)).unwrap();
    }
    for (q, b) in queries.iter().zip(&before) {
        let after = db.run(q.as_plan().unwrap(), EngineKind::Compiled).unwrap();
        after.assert_same(b, &q.name);
    }
}

#[test]
fn cnet_weighted_workload_advisor_separates_dense_columns() {
    let table = cnet::generate(600, 64, 11, 17);
    let db = Database::new();
    db.register(table);
    let queries = cnet::queries("laptops", 40, 300);
    let mut workload = Workload::new();
    for q in &queries {
        workload.push(
            WorkloadQuery::new(q.name.clone(), q.as_plan().unwrap().clone())
                .with_frequency(q.frequency),
        );
    }
    let report = LayoutAdvisor::default().advise(&db, &workload);
    let layout = &report.tables[0].layout;
    // category is scanned by three queries: it must not share a partition
    // with the sparse tail
    let cat_group = layout
        .groups()
        .iter()
        .find(|g| g.contains(&cnet::COL_CATEGORY))
        .unwrap();
    assert!(
        cat_group.iter().all(|&c| c < cnet::FIRST_SPARSE),
        "category must not be buried in sparse attributes: {layout}"
    );
    assert!(report.speedup_vs_row() > 1.5, "wide schema must benefit");
}

#[test]
fn engine_errors_are_uniform() {
    let db = Database::new();
    let plan = QueryBuilder::scan("nope").build();
    for kind in EngineKind::all() {
        let err = db.run(&plan, kind).unwrap_err();
        assert!(
            format!("{err}").contains("nope"),
            "{kind:?} must report the missing table"
        );
    }
}
