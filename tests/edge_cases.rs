//! Edge cases that unit tests in the crates don't reach: degenerate
//! schemas, extreme values, pathological plans, and layout corner cases.

use mrdb::prelude::*;
use std::collections::HashMap;

mod common;

fn single_col_db(values: &[i64]) -> HashMap<String, Table> {
    let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("x", DataType::Int64)]));
    for &v in values {
        t.insert(&[Value::Int64(v)]).unwrap();
    }
    let mut m = HashMap::new();
    m.insert("t".to_string(), t);
    m
}

fn run_all(plan: &LogicalPlan, db: &HashMap<String, Table>, ctx: &str) -> QueryOutput {
    common::assert_engines_agree(plan, db, ctx)
}

#[test]
fn extreme_integer_values() {
    let db = single_col_db(&[i64::MAX, i64::MIN + 1, 0, -1, 1]);
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).gt(Expr::lit(0i64)))
        .aggregate(
            vec![],
            vec![
                AggExpr::new(AggFunc::Min, Expr::col(0)),
                AggExpr::new(AggFunc::Max, Expr::col(0)),
                AggExpr::count_star(),
            ],
        )
        .build();
    let out = run_all(&plan, &db, "extremes");
    assert_eq!(out.rows[0][1], Value::Int64(i64::MAX));
    assert_eq!(out.rows[0][2], Value::Int64(2));
}

#[test]
fn i32_predicate_against_out_of_range_literal() {
    // comparing an Int32 column against an i64 literal beyond i32 range
    // must not wrap
    let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("x", DataType::Int32)]));
    t.insert(&[Value::Int32(i32::MAX)]).unwrap();
    t.insert(&[Value::Int32(i32::MIN)]).unwrap();
    let mut db = HashMap::new();
    db.insert("t".to_string(), t);
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).lt(Expr::lit(i64::MAX)))
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = run_all(&plan, &db, "range");
    assert_eq!(out.rows[0][0], Value::Int64(2));
}

#[test]
fn all_null_column_aggregates() {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int32),
            ColumnDef::nullable("v", DataType::Float64),
        ]),
    );
    for i in 0..10 {
        t.insert(&[Value::Int32(i % 2), Value::Null]).unwrap();
    }
    let mut db = HashMap::new();
    db.insert("t".to_string(), t);
    let plan = QueryBuilder::scan("t")
        .aggregate(
            vec![Expr::col(0)],
            vec![
                AggExpr::new(AggFunc::Sum, Expr::col(1)),
                AggExpr::new(AggFunc::Avg, Expr::col(1)),
                AggExpr::new(AggFunc::Count, Expr::col(1)),
                AggExpr::count_star(),
            ],
        )
        .build();
    let out = run_all(&plan, &db, "all-null");
    for row in &out.rows {
        assert_eq!(row[1], Value::Null, "sum of nulls");
        assert_eq!(row[2], Value::Null, "avg of nulls");
        assert_eq!(row[3], Value::Int64(0), "count(col) of nulls");
        assert_eq!(row[4], Value::Int64(5), "count(*)");
    }
}

#[test]
fn join_with_null_keys_drops_rows() {
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            ColumnDef::nullable("k", DataType::Int32),
            ColumnDef::new("v", DataType::Int32),
        ]),
    );
    t.insert(&[Value::Int32(1), Value::Int32(10)]).unwrap();
    t.insert(&[Value::Null, Value::Int32(20)]).unwrap();
    t.insert(&[Value::Int32(1), Value::Int32(30)]).unwrap();
    let mut db = HashMap::new();
    db.insert("t".to_string(), t);
    let plan = QueryBuilder::scan("t")
        .join(QueryBuilder::scan("t").build(), Expr::col(0), Expr::col(0))
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    // rows with NULL keys join nothing: 2 build x 2 probe = 4
    let out = run_all(&plan, &db, "null-join");
    assert_eq!(out.rows[0][0], Value::Int64(4));
}

#[test]
fn single_row_single_column_layouts() {
    let db = single_col_db(&[7]);
    let t = db["t"].clone();
    assert_eq!(t.layout().kind(), mrdb::storage::LayoutKind::Row);
    let plan = QueryBuilder::scan("t").build();
    let out = run_all(&plan, &db, "1x1");
    assert_eq!(out.rows, vec![vec![Value::Int64(7)]]);
}

#[test]
fn limit_zero_and_oversized() {
    let db = single_col_db(&[1, 2, 3]);
    let zero = QueryBuilder::scan("t").limit(0).build();
    assert!(run_all(&zero, &db, "limit0").is_empty());
    let big = QueryBuilder::scan("t").limit(1_000_000).build();
    assert_eq!(run_all(&big, &db, "limitBig").len(), 3);
}

#[test]
fn deeply_nested_predicate() {
    let db = single_col_db(&(0..100).collect::<Vec<i64>>());
    // ((x<10 or x>90) and not(x=5)) or x=50
    let pred = Expr::col(0)
        .lt(Expr::lit(10i64))
        .or(Expr::col(0).gt(Expr::lit(90i64)))
        .and(Expr::col(0).eq(Expr::lit(5i64)).not())
        .or(Expr::col(0).eq(Expr::lit(50i64)));
    let plan = QueryBuilder::scan("t")
        .filter(pred)
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = run_all(&plan, &db, "nested");
    // 0..10 minus {5} = 9, 91..100 = 9, plus {50} = 19
    assert_eq!(out.rows[0][0], Value::Int64(19));
}

#[test]
fn empty_string_and_unicode_dictionary_entries() {
    let mut t = Table::new("t", Schema::new(vec![ColumnDef::new("s", DataType::Str)]));
    for s in ["", "ü-umlaut", "数据库", "", "plain"] {
        t.insert(&[Value::Str(s.into())]).unwrap();
    }
    let mut db = HashMap::new();
    db.insert("t".to_string(), t);
    let eq_empty = QueryBuilder::scan("t")
        .filter(Expr::col(0).eq(Expr::lit("")))
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = run_all(&eq_empty, &db, "empty-str");
    assert_eq!(out.rows[0][0], Value::Int64(2));
    let like_cjk = QueryBuilder::scan("t")
        .filter(Expr::col(0).like("数%"))
        .aggregate(vec![], vec![AggExpr::count_star()])
        .build();
    let out = run_all(&like_cjk, &db, "cjk-like");
    assert_eq!(out.rows[0][0], Value::Int64(1));
}

#[test]
fn vectorized_agrees_on_supported_subset() {
    use mrdb::exec::VectorizedEngine;
    let db = single_col_db(&(0..1000).collect::<Vec<i64>>());
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).ge(Expr::lit(500i64)))
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(0))])
        .build();
    let v = VectorizedEngine::default().execute(&plan, &db).unwrap();
    let c = CompiledEngine.execute(&plan, &db).unwrap();
    v.assert_same(&c, "vectorized subset");
}

#[test]
fn storage_dml_errors_never_panic() {
    use mrdb::storage::Error;
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            ColumnDef::new("i", DataType::Int32),
            ColumnDef::new("s", DataType::Str),
            ColumnDef::nullable("f", DataType::Float64),
        ]),
    );
    t.insert(&[Value::Int32(1), Value::Str("a".into()), Value::Null])
        .unwrap();

    // wrong arity, both directions
    assert!(matches!(
        t.insert(&[Value::Int32(1)]),
        Err(Error::ArityMismatch {
            expected: 3,
            got: 1
        })
    ));
    assert!(matches!(
        t.insert(&vec![Value::Int32(1); 5]),
        Err(Error::ArityMismatch {
            expected: 3,
            got: 5
        })
    ));
    // wrong type / NULL into non-nullable
    assert!(matches!(
        t.insert(&[Value::Str("x".into()), Value::Str("a".into()), Value::Null]),
        Err(Error::TypeMismatch { .. })
    ));
    assert!(matches!(
        t.insert(&[Value::Int32(1), Value::Null, Value::Null]),
        Err(Error::NullViolation(_))
    ));
    // update: row and column out of range, wrong type
    assert!(matches!(
        t.update(99, 0, &Value::Int32(0)),
        Err(Error::RowOutOfRange { row: 99, len: 1 })
    ));
    assert!(matches!(
        t.update(0, 42, &Value::Int32(0)),
        Err(Error::UnknownColumn(42))
    ));
    assert!(matches!(
        t.update(0, 0, &Value::Float64(1.0)),
        Err(Error::TypeMismatch { .. })
    ));
    // get: row and column out of range
    assert!(matches!(
        t.get(99, 0),
        Err(Error::RowOutOfRange { row: 99, len: 1 })
    ));
    assert!(matches!(t.get(0, 42), Err(Error::UnknownColumn(42))));
    // none of the failures changed the table
    assert_eq!(t.len(), 1);
    assert_eq!(
        t.row(0).unwrap().0,
        vec![Value::Int32(1), Value::Str("a".into()), Value::Null]
    );
}

#[test]
fn storage_insert_batch_is_all_or_nothing() {
    use mrdb::storage::Error;
    let mut t = Table::new(
        "t",
        Schema::new(vec![
            ColumnDef::new("i", DataType::Int32),
            ColumnDef::new("s", DataType::Str),
        ]),
    );
    let bad_middle = vec![
        vec![Value::Int32(1), Value::Str("a".into())],
        vec![Value::Int32(2), Value::Int32(2)], // type error
        vec![Value::Int32(3), Value::Str("c".into())],
    ];
    assert!(matches!(
        t.insert_batch(&bad_middle),
        Err(Error::TypeMismatch { .. })
    ));
    assert_eq!(t.len(), 0, "failed batch must insert nothing");
    for p in t.partitions() {
        assert_eq!(p.len(), 0, "partitions must stay consistent");
    }
    t.insert_batch(&[
        vec![Value::Int32(1), Value::Str("a".into())],
        vec![Value::Int32(2), Value::Str("b".into())],
    ])
    .unwrap();
    assert_eq!(t.len(), 2);
}

#[test]
fn versioned_dml_errors_and_tombstone_addressing() {
    use mrdb::core::DbError;
    use mrdb::storage::Error;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("i", DataType::Int32),
            ColumnDef::new("s", DataType::Str),
        ]),
    )
    .unwrap();
    let a = db
        .insert("t", &[Value::Int32(1), Value::from("x")])
        .unwrap();
    assert!(matches!(
        db.insert("t", &[Value::Int32(1)]),
        Err(DbError::Storage(Error::ArityMismatch { .. }))
    ));
    assert!(db.update("t", a, "nope", &Value::Int32(2)).is_err());
    db.delete("t", a).unwrap();
    assert!(matches!(
        db.delete("t", a),
        Err(DbError::Storage(Error::RowDeleted { .. }))
    ));
    assert!(matches!(
        db.update("t", a, "i", &Value::Int32(2)),
        Err(DbError::Storage(Error::RowDeleted { .. }))
    ));
    assert!(matches!(
        db.delete("t", 999),
        Err(DbError::Storage(Error::RowOutOfRange { .. }))
    ));
    // after merge the id space is compacted; old ids are out of range
    db.merge("t").unwrap();
    assert!(db.with_table("t", |vt| vt.is_empty()).unwrap());
}

#[test]
fn sixty_four_column_table_round_trips() {
    let cols: Vec<ColumnDef> = (0..64)
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
        .collect();
    let mut t = Table::new("wide", Schema::new(cols));
    for r in 0..50 {
        let row: Vec<Value> = (0..64).map(|c| Value::Int32(r * 64 + c)).collect();
        t.insert(&row).unwrap();
    }
    // pairs layout: 32 groups of 2
    let groups: Vec<Vec<usize>> = (0..32).map(|g| vec![2 * g, 2 * g + 1]).collect();
    let paired = t
        .relayout(Layout::from_groups(groups, 64).unwrap())
        .unwrap();
    for r in 0..50 {
        assert_eq!(t.row(r).unwrap(), paired.row(r).unwrap());
    }
}
