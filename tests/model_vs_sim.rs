//! The cost model and the cache simulator must agree on *rankings* — the
//! property the layout optimizer actually relies on. Absolute miss counts
//! are checked in Fig. 6's harness; here we assert order agreement on the
//! decisions the paper's system makes.

use mrdb::cachesim::{run_atom, trace, SimConfig};
use mrdb::cost::{cost, misses::atom_misses, Atom, Hierarchy, Pattern};

#[test]
fn model_and_sim_agree_sequential_beats_random() {
    let hw = Hierarchy::nehalem();
    let n = 500_000u64;
    let seq_cost = cost::estimate(&Pattern::atom(Atom::s_trav(n, 8)), &hw).total_cycles;
    let rnd_cost = cost::estimate(&Pattern::atom(Atom::r_trav(n, 8)), &hw).total_cycles;
    assert!(seq_cost < rnd_cost);
    let seq_sim = run_atom(&Atom::s_trav(n, 8), SimConfig::nehalem(), 1);
    let rnd_sim = run_atom(&Atom::r_trav(n, 8), SimConfig::nehalem(), 1);
    assert!(
        seq_sim.paper_random() < rnd_sim.paper_random(),
        "simulator must also see fewer demand misses for the sequential scan"
    );
}

#[test]
fn model_and_sim_agree_on_layout_ranking_for_selective_projection() {
    // The PDSM question: reading 16 payload bytes at s=10% from 16-byte
    // fragments (hybrid) vs from 64-byte fragments (row). Both referees
    // must prefer the hybrid.
    let hw = Hierarchy::nehalem();
    let llc = hw.llc().clone();
    let n = 400_000u64;
    let s = 0.1;
    let hybrid_pred = atom_misses(&Atom::s_trav_cr(n, 16, 16, s), &llc, 1.0);
    let row_pred = atom_misses(&Atom::s_trav_cr(n, 64, 16, s), &llc, 1.0);
    assert!(hybrid_pred.total() < row_pred.total());

    let (hybrid_sim, _) = trace::run_selective_projection(n, 16, s, SimConfig::nehalem(), 7);
    let (row_sim, _) = trace::run_selective_projection(n, 64, s, SimConfig::nehalem(), 7);
    let total = |st: &trace::AtomTraceStats| st.paper_sequential() + st.paper_random();
    assert!(
        total(&hybrid_sim) < total(&row_sim),
        "simulated misses must also favour the narrow fragments: {} vs {}",
        total(&hybrid_sim),
        total(&row_sim)
    );
}

#[test]
fn prediction_tracks_simulation_across_selectivities() {
    // Pointwise agreement within a tolerance band over the sweep —
    // the quantitative core of Fig. 6.
    let hw = Hierarchy::nehalem();
    let llc = hw.llc().clone();
    let n = 300_000u64;
    let w = 16u64;
    let lines = (n * w) as f64 / llc.block as f64;
    for s in [0.01, 0.05, 0.1, 0.3, 0.5, 0.8] {
        let pred = atom_misses(&Atom::s_trav_cr(n, w, w, s), &llc, 1.0);
        let (sim, _) = trace::run_selective_projection(n, w, s, SimConfig::nehalem(), 11);
        let pred_frac = pred.total() / lines;
        let sim_frac = (sim.paper_sequential() + sim.paper_random()) as f64 / lines;
        assert!(
            (pred_frac - sim_frac).abs() < 0.08,
            "s={s}: predicted {pred_frac:.3} vs simulated {sim_frac:.3}"
        );
        let pred_rand = pred.random / lines;
        let sim_rand = sim.paper_random() as f64 / lines;
        assert!(
            (pred_rand - sim_rand).abs() < 0.08,
            "s={s}: predicted random {pred_rand:.3} vs simulated {sim_rand:.3}"
        );
    }
}

#[test]
fn rr_acc_model_underestimates_selective_projection() {
    // The motivating defect of §IV-C1: pricing a selective projection as
    // rr_acc loses misses relative to both s_trav_cr and the simulator.
    let hw = Hierarchy::nehalem();
    let llc = hw.llc().clone();
    let n = 300_000u64;
    let s = 0.6;
    let cr = atom_misses(&Atom::s_trav_cr(n, 16, 16, s), &llc, 1.0);
    let rr = atom_misses(&Atom::rr_acc(n, 16, (s * n as f64) as u64), &llc, 1.0);
    assert!(rr.total() < cr.total(), "rr_acc must underestimate");
    assert_eq!(rr.sequential, 0.0, "rr_acc cannot model prefetched misses");
    assert!(cr.sequential > 0.0);
}

#[test]
fn prefetch_hiding_only_helps_sequential_patterns() {
    let hw = Hierarchy::nehalem();
    let n = 2_000_000u64;
    let seq = Pattern::atom(Atom::s_trav(n, 8));
    let rnd = Pattern::atom(Atom::r_trav(n, 8));
    let seq_gain =
        cost::estimate_flat(&seq, &hw).total_cycles - cost::estimate(&seq, &hw).total_cycles;
    let rnd_gain =
        cost::estimate_flat(&rnd, &hw).total_cycles - cost::estimate(&rnd, &hw).total_cycles;
    assert!(seq_gain > 0.0, "scans benefit from prefetch hiding");
    assert_eq!(rnd_gain, 0.0, "random traversals cannot hide latency");
}
