//! Differential check: every benchmark query, rendered to SQL text and
//! compiled back, must produce the *same plan* and the *same results* as
//! the programmatic `LogicalPlan` — across engines and layouts.
//!
//! This is the contract that makes the SQL frontend trustworthy: the text
//! path is a veneer over the plan path, never a second query engine.

use mrdb::prelude::*;
use mrdb::sql::{compile, plan_to_sql, strip_hints, Statement};
use mrdb::workloads::{microbench, sapsd, QueryKind};
use pdsm_plan::sql_literal;

fn load_sapsd(scale: usize) -> (Database, Vec<mrdb::workloads::BenchQuery>) {
    let db = Database::new();
    for t in sapsd::tables(scale, 42) {
        db.register(t);
    }
    (db, sapsd::queries(scale))
}

/// Render → compile must reproduce each SAP-SD plan structurally
/// (modulo selectivity hints, which SQL text cannot carry).
#[test]
fn sapsd_plans_survive_sql_round_trip() {
    let (db, queries) = load_sapsd(200);
    let mut rendered = 0;
    for q in &queries {
        let Some(plan) = q.as_plan() else { continue };
        let sql =
            plan_to_sql(plan, &db).unwrap_or_else(|e| panic!("{} must render as SQL: {e}", q.name));
        match compile(&sql, &db) {
            Ok(Statement::Query(bound)) => {
                assert_eq!(
                    bound,
                    strip_hints(plan),
                    "{}: SQL text {sql:?} bound to a different plan",
                    q.name
                );
            }
            other => panic!("{}: {sql:?} did not compile to a query: {other:?}", q.name),
        }
        rendered += 1;
    }
    assert_eq!(rendered, 11, "all read queries must round-trip");
}

/// The SQL path must return byte-identical results to the programmatic
/// path on every engine that supports the plan, row and column layouts
/// alike.
#[test]
fn sapsd_sql_results_match_programmatic_across_engines_and_layouts() {
    for columnar in [false, true] {
        let (db, queries) = load_sapsd(200);
        if columnar {
            for name in db.table_names() {
                let w = db.get_table(&name).unwrap().schema().len();
                db.relayout(&name, Layout::column(w)).unwrap();
            }
        }
        for q in &queries {
            let Some(plan) = q.as_plan() else { continue };
            let sql = plan_to_sql(plan, &db).unwrap();
            let Ok(Statement::Query(bound)) = compile(&sql, &db) else {
                panic!("{}: {sql:?} did not compile", q.name);
            };
            let reference = db.execute(plan).unwrap();
            for kind in EngineKind::all() {
                if !kind.supports(&bound) {
                    continue;
                }
                let via_sql = db.run(&bound, kind).unwrap();
                reference.assert_same(
                    &via_sql,
                    &format!("{} via SQL on {kind} columnar={columnar}", q.name),
                );
            }
        }
    }
}

/// Q6 (the INSERT workload) as SQL text: rendering the same synthetic rows
/// through `INSERT INTO ... VALUES` must leave the table byte-identical to
/// the programmatic `insert_batch` on a twin database.
#[test]
fn sapsd_insert_as_sql_matches_programmatic_batch() {
    let (db_sql, queries) = load_sapsd(200);
    let (db_prog, _) = load_sapsd(200);
    let q6 = &queries[5];
    let QueryKind::Insert { table, count } = &q6.kind else {
        panic!("Q6 must be the insert query");
    };
    // Same synthetic rows on both sides (cap the batch: literal SQL for
    // 1000 rows is pointlessly slow to shuttle through the parser).
    let n = (*count).min(200);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(99);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|k| sapsd::vbap_row(&mut rng, 2_000_000 + k as i32, 10))
        .collect();

    let values = rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r.iter().map(sql_literal).collect();
            format!("({})", cells.join(", "))
        })
        .collect::<Vec<_>>()
        .join(", ");
    let sql = format!("INSERT INTO {table} VALUES {values}");
    match compile(&sql, &db_sql).unwrap() {
        Statement::Insert { table: t, rows: r } => {
            assert_eq!(&t, table);
            assert_eq!(r, rows, "literal rendering must round-trip every value");
            db_sql.insert_batch(&t, &r).unwrap();
        }
        other => panic!("INSERT bound to {other:?}"),
    }
    db_prog.insert_batch(table, &rows).unwrap();

    let full = QueryBuilder::scan(table.as_str()).build();
    let a = db_sql.execute(&full).unwrap();
    let b = db_prog.execute(&full).unwrap();
    a.assert_same(&b, "VBAP contents after SQL vs programmatic insert");
}

/// The microbenchmark query family round-trips at every selectivity.
#[test]
fn microbench_queries_survive_sql_round_trip() {
    let db = Database::new();
    db.register(microbench::generate(2000, 0.1, Layout::row(16), 7));
    for sel in [0.0, 0.001, 0.1, 0.5, 1.0] {
        let plan = microbench::query(sel);
        let sql = plan_to_sql(&plan, &db).unwrap();
        let Ok(Statement::Query(bound)) = compile(&sql, &db) else {
            panic!("sel={sel}: {sql:?} did not compile");
        };
        assert_eq!(bound, strip_hints(&plan), "sel={sel} via {sql:?}");
        let reference = db.execute(&plan).unwrap();
        for kind in EngineKind::all() {
            if !kind.supports(&bound) {
                continue;
            }
            let via_sql = db.run(&bound, kind).unwrap();
            reference.assert_same(&via_sql, &format!("microbench sel={sel} on {kind}"));
        }
    }
}
