//! The maintenance scheduler end-to-end: background merges stay
//! byte-identical to synchronous ones, the worker applies its own builds
//! (catch-up never rides the write path), backpressure bounds the delta,
//! the advisor loop re-layouts drifted tables at merge time, plan caches
//! survive background generation bumps, and version chains stay bounded.

use mrdb::prelude::*;
use mrdb::storage::Value as V;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg(mode: MaintenanceMode, threshold: u64) -> MaintenanceConfig {
    MaintenanceConfig {
        mode,
        merge_threshold: threshold,
        advise_on_merge: false,
        // Backpressure off: these suites assert exact build counts, which
        // a lag-triggered inline merge would perturb (it is covered by its
        // own test below).
        max_lag: 0,
        ..Default::default()
    }
}

fn make_table(db: &Database) {
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int32),
            ColumnDef::new("v", DataType::Int64),
            ColumnDef::new("s", DataType::Str),
        ]),
    )
    .unwrap();
}

/// Apply one deterministic op-stream step. Row targets resolve by *live
/// position* (scan order), which is invariant under merge timing — so two
/// databases merging at different moments apply identical logical ops.
///
/// Updates and deletes resolve-and-apply inside one
/// [`Database::with_table_write`] closure: under worker-applied background
/// merges a swap could otherwise renumber the id between resolution and
/// use. (The rng is only consulted when the live set is non-empty, which
/// is a property of the logical state — identical across databases.)
fn apply_step(db: &Database, rng: &mut SmallRng) {
    let w = rng.gen_range(0..10);
    if w < 6 {
        let k: i32 = rng.gen_range(0..1000);
        db.insert(
            "t",
            &[
                V::Int32(k),
                V::Int64(k as i64 * 3),
                V::Str(format!("s{}", k % 7)),
            ],
        )
        .unwrap();
    } else if w < 8 {
        db.with_table_write("t", |vt| {
            let live: Vec<usize> = (0..vt.main().len() + vt.delta_rows())
                .filter(|&i| vt.is_visible(i))
                .collect();
            if !live.is_empty() {
                let id = live[rng.gen_range(0..u64::MAX) as usize % live.len()];
                let col = vt.schema().col_id("v").unwrap();
                vt.update(id, col, &V::Int64(rng.gen_range(-500..500)))
                    .unwrap();
            }
        })
        .unwrap();
    } else {
        db.with_table_write("t", |vt| {
            let live: Vec<usize> = (0..vt.main().len() + vt.delta_rows())
                .filter(|&i| vt.is_visible(i))
                .collect();
            if !live.is_empty() {
                let id = live[rng.gen_range(0..u64::MAX) as usize % live.len()];
                vt.delete(id).unwrap();
            }
        })
        .unwrap();
    }
}

fn scan_rows(db: &Database) -> Vec<Vec<Value>> {
    db.run(&QueryBuilder::scan("t").build(), EngineKind::Compiled)
        .unwrap()
        .into_output()
        .rows
}

#[test]
fn sync_mode_merges_inline_at_threshold() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Sync, 64));
    make_table(&db);
    for i in 0..500i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let (generation, delta_ops) = db
        .with_table("t", |vt| (vt.generation(), vt.delta_ops()))
        .unwrap();
    assert!(generation > 0, "threshold crossings merged");
    assert!(delta_ops < 64 + 1, "delta stays bounded");
    let stats = db.maintenance_stats();
    assert!(stats.sync_merges >= 7, "got {:?}", stats);
    assert_eq!(stats.builds_started, 0, "sync mode never uses the worker");
    assert_eq!(scan_rows(&db).len(), 500);
}

#[test]
fn background_mode_builds_and_applies_off_thread() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Background, 64));
    make_table(&db);
    for i in 0..500i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let applied = db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert!(stats.builds_started >= 1, "got {:?}", stats);
    assert_eq!(
        stats.builds_applied, stats.builds_started,
        "the worker applied every build (none raced an explicit merge): {:?}",
        stats
    );
    assert_eq!(stats.sync_merges, 0);
    assert!(!applied.is_empty() || stats.builds_applied > 0);
    assert!(db.with_table("t", |vt| vt.generation()).unwrap() > 0);
    assert_eq!(scan_rows(&db).len(), 500);
}

#[test]
fn background_and_sync_paths_are_byte_identical() {
    let sync_db = Database::with_maintenance(cfg(MaintenanceMode::Sync, 48));
    let bg_db = Database::with_maintenance(cfg(MaintenanceMode::Background, 48));
    let off_db = Database::with_maintenance(cfg(MaintenanceMode::Off, 48));
    for db in [&sync_db, &bg_db, &off_db] {
        make_table(db);
    }
    // identical op streams; targets resolve by live position (timing-proof)
    let mut r1 = SmallRng::seed_from_u64(99);
    let mut r2 = SmallRng::seed_from_u64(99);
    let mut r3 = SmallRng::seed_from_u64(99);
    for _ in 0..800 {
        apply_step(&sync_db, &mut r1);
        apply_step(&bg_db, &mut r2);
        apply_step(&off_db, &mut r3);
    }
    bg_db.flush_maintenance().unwrap();
    // live scans agree before any final merge...
    let a = scan_rows(&sync_db);
    let b = scan_rows(&bg_db);
    let c = scan_rows(&off_db);
    assert_eq!(a, b, "sync vs background live state");
    assert_eq!(a, c, "scheduled vs never-merged live state");
    // ...and after everything is folded
    for db in [&sync_db, &bg_db, &off_db] {
        db.merge_all().unwrap();
    }
    let a = scan_rows(&sync_db);
    let b = scan_rows(&bg_db);
    let c = scan_rows(&off_db);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert!(bg_db.maintenance_stats().builds_started > 0);
    assert!(sync_db.maintenance_stats().sync_merges > 0);
}

#[test]
fn explicit_merge_wins_over_in_flight_build() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Background, 32));
    make_table(&db);
    // the 33rd insert's entry check crosses the threshold and launches a
    // build; the worker may apply it at any moment now
    for i in 0..33i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
    }
    // An explicit merge always wins whatever the race: if the build is
    // still pending it turns stale and the worker discards it; if the
    // worker already applied it, this just merges the (empty) delta.
    db.merge("t").unwrap();
    db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert_eq!(stats.builds_started, 1);
    assert_eq!(
        stats.builds_applied + stats.builds_discarded,
        1,
        "every build is accounted for exactly once: {:?}",
        stats
    );
    assert_eq!(scan_rows(&db).len(), 33);

    // Deterministic preemption, at the shared-handle level: pin a cut,
    // build it, preempt with an explicit merge — the late swap must fail
    // stale and leave the table untouched.
    db.insert("t", &[V::Int32(100), V::Int64(1), V::Str("y".into())])
        .unwrap();
    let shared = db.shared("t").unwrap();
    let ticket = shared.begin_merge().unwrap();
    let layout = ticket.snapshot().main().layout().clone();
    let built = ticket.build(layout).unwrap();
    db.merge("t").unwrap(); // aborts the pending cut
    let rows = scan_rows(&db);
    assert!(matches!(
        shared.finish_merge(built),
        Err(mrdb::storage::Error::StaleMergeBuild)
    ));
    assert_eq!(scan_rows(&db), rows, "stale swap must not touch the table");
}

#[test]
fn backpressure_falls_back_to_inline_merges() {
    // A tiny threshold with a manually pinned cut simulates a builder that
    // never catches up: the delta outruns the in-flight "build" and the
    // writer must merge inline once the lag factor is exceeded.
    let db = Database::with_maintenance(MaintenanceConfig {
        mode: MaintenanceMode::Background,
        merge_threshold: 16,
        advise_on_merge: false,
        max_lag: 4, // backpressure at 64 pending ops
        ..Default::default()
    });
    make_table(&db);
    let shared = db.shared("t").unwrap();
    // Pin a cut directly on the handle: the scheduler sees a pending merge
    // and will not launch its own build — exactly the "builder stuck"
    // regime.
    let ticket = shared.begin_merge().unwrap();
    for i in 0..200i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
        assert!(
            db.with_table("t", |vt| vt.delta_ops()).unwrap() <= 64,
            "backpressure must bound the delta at max_lag × threshold"
        );
    }
    let stats = db.maintenance_stats();
    assert!(
        stats.backpressure_merges >= 1,
        "inline fallback engaged: {stats:?}"
    );
    assert_eq!(scan_rows(&db).len(), 200);
    // The stuck build is long stale.
    let layout = ticket.snapshot().main().layout().clone();
    let built = ticket.build(layout).unwrap();
    assert!(matches!(
        shared.finish_merge(built),
        Err(mrdb::storage::Error::StaleMergeBuild)
    ));
}

/// ROADMAP's "layout advice as policy" loop: tables whose observed
/// workload drifted merge into an advised layout automatically.
fn advised_relayout_on(mode: MaintenanceMode) {
    let mut c = cfg(mode, 200);
    c.advise_on_merge = true;
    let db = Database::with_maintenance(c);
    let cols: Vec<ColumnDef> = (0..16)
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
        .collect();
    db.create_table("r", Schema::new(cols)).unwrap();
    for i in 0..2000i32 {
        let row: Vec<Value> = (0..16).map(|c| V::Int32(i * 16 + c)).collect();
        db.insert("r", &row).unwrap();
    }
    db.flush_maintenance().unwrap();
    db.merge_all().unwrap();
    assert_eq!(
        db.get_table("r").unwrap().layout().n_groups(),
        1,
        "no observed traffic yet: merges keep the row layout"
    );
    // narrow scan traffic: the advisor should split the hot columns out
    let q = QueryBuilder::scan("r")
        .filter_with_selectivity(Expr::col(0).eq(Expr::lit(3)), 0.05)
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
        .build();
    for _ in 0..5 {
        db.execute(&q).unwrap();
    }
    for i in 0..250i32 {
        let row: Vec<Value> = (0..16).map(|c| V::Int32(i * 16 + c)).collect();
        db.insert("r", &row).unwrap();
    }
    db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert!(
        stats.advised_relayouts >= 1,
        "merge consulted the advisor: {:?}",
        stats
    );
    assert!(
        db.get_table("r").unwrap().layout().n_groups() > 1,
        "drifted table merged into an advised layout: {}",
        db.get_table("r").unwrap().layout()
    );
    // results unchanged under the new layout
    let out = db.execute(&q).unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn advised_relayout_at_merge_sync() {
    advised_relayout_on(MaintenanceMode::Sync);
}

#[test]
fn advised_relayout_at_merge_background() {
    advised_relayout_on(MaintenanceMode::Background);
}

#[test]
fn plan_cache_follows_background_generation_bumps() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Background, 64));
    make_table(&db);
    for i in 0..60i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).lt(Expr::lit(10)))
        .build();
    let p1 = db.plan_query(&plan).unwrap();
    let p1b = db.plan_query(&plan).unwrap();
    assert!(std::sync::Arc::ptr_eq(&p1, &p1b), "stable while quiet");
    // push past the threshold and let the worker land the merge
    for i in 60..130i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    db.flush_maintenance().unwrap();
    assert!(db.with_table("t", |vt| vt.generation()).unwrap() > 0);
    let p2 = db.plan_query(&plan).unwrap();
    assert!(
        !std::sync::Arc::ptr_eq(&p1, &p2),
        "background generation bump invalidates the cached plan"
    );
    assert_eq!(db.execute(&plan).unwrap().rows.len(), 10);
}

#[test]
fn long_lived_db_snapshot_pins_one_version() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Off, 0));
    make_table(&db);
    for i in 0..100i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
    }
    db.merge("t").unwrap();
    let pinned = db.snapshot(); // long-lived reader at generation 1
    for round in 0..6i32 {
        for i in 0..50 {
            db.insert(
                "t",
                &[
                    V::Int32(1000 + round * 50 + i),
                    V::Int64(1),
                    V::Str("y".into()),
                ],
            )
            .unwrap();
        }
        db.merge("t").unwrap();
    }
    let s = db.version_stats("t").unwrap();
    assert_eq!(
        s.live_mains, 2,
        "snapshot's version + current; intermediates reclaimed: {:?}",
        s
    );
    assert_eq!(s.pinned_versions, 1);
    assert!(s.pinned_bytes > 0);
    // the pinned snapshot still reads its version
    assert_eq!(
        pinned
            .table_snapshot("t")
            .map(|t| t.len())
            .unwrap_or_default(),
        100
    );
    drop(pinned);
    let s = db.version_stats("t").unwrap();
    assert_eq!(s.live_mains, 1, "last reader released → version dropped");
    assert_eq!(s.pinned_bytes, 0);
}

#[test]
fn env_config_parses_modes_and_threshold() {
    if std::env::var("PDSM_MERGE").is_err()
        && std::env::var("PDSM_MERGE_THRESHOLD").is_err()
        && std::env::var("PDSM_MERGE_MAX_LAG").is_err()
    {
        let cfg = MaintenanceConfig::from_env();
        assert_eq!(cfg.mode, MaintenanceMode::Background);
        assert_eq!(cfg.merge_threshold, 65_536);
        assert_eq!(cfg.max_lag, 8);
    }
    // per-table override logic
    let mut c = MaintenanceConfig {
        merge_threshold: 100,
        ..Default::default()
    };
    c.per_table.insert("hot".into(), 10);
    assert_eq!(c.threshold_for("hot"), 10);
    assert_eq!(c.threshold_for("cold"), 100);
}

#[test]
fn set_maintenance_config_replaces_the_mut_escape_hatch() {
    let db = Database::with_maintenance(cfg(MaintenanceMode::Off, 10));
    make_table(&db);
    let mut c = db.maintenance_config();
    assert_eq!(c.mode, MaintenanceMode::Off);
    c.mode = MaintenanceMode::Sync;
    c.merge_threshold = 8;
    db.set_maintenance_config(c);
    assert_eq!(db.maintenance_config().mode, MaintenanceMode::Sync);
    db.update_maintenance_config(|cfg| cfg.merge_threshold = 4);
    db.set_merge_threshold(Some("t"), 16);
    let c = db.maintenance_config();
    assert_eq!(c.merge_threshold, 4);
    assert_eq!(c.threshold_for("t"), 16);
    // the new policy is live: sync merges now happen at the per-table
    // threshold
    for i in 0..40i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
    }
    assert!(db.maintenance_stats().sync_merges >= 1);
    assert!(db.with_table("t", |vt| vt.generation()).unwrap() > 0);
}
