//! The maintenance scheduler end-to-end: background merges stay
//! byte-identical to synchronous ones, the advisor loop re-layouts
//! drifted tables at merge time, plan caches survive background
//! generation bumps, and version chains stay bounded.

use mrdb::prelude::*;
use mrdb::storage::Value as V;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg(mode: MaintenanceMode, threshold: u64) -> MaintenanceConfig {
    MaintenanceConfig {
        mode,
        merge_threshold: threshold,
        advise_on_merge: false,
        ..Default::default()
    }
}

fn make_table(db: &mut Database) {
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int32),
            ColumnDef::new("v", DataType::Int64),
            ColumnDef::new("s", DataType::Str),
        ]),
    )
    .unwrap();
}

/// Current live row ids in scan order (the timing-invariant resolution
/// drivers must use when the scheduler can renumber ids at any write).
fn live_ids(db: &Database) -> Vec<usize> {
    let vt = db.versioned("t").unwrap();
    (0..vt.main().len() + vt.delta_rows())
        .filter(|&i| vt.is_visible(i))
        .collect()
}

/// Apply one deterministic op-stream step. Row targets resolve by *live
/// position* (scan order), which is invariant under merge timing — so two
/// databases merging at different moments apply identical logical ops.
///
/// Ids resolved here are used immediately, with no insert in between —
/// exactly the id contract `Database::maintain` documents (only id-free
/// entry points can merge and renumber).
fn apply_step(db: &mut Database, rng: &mut SmallRng) {
    let w = rng.gen_range(0..10);
    if w < 6 {
        let k: i32 = rng.gen_range(0..1000);
        db.insert(
            "t",
            &[
                V::Int32(k),
                V::Int64(k as i64 * 3),
                V::Str(format!("s{}", k % 7)),
            ],
        )
        .unwrap();
    } else if w < 8 {
        let live = live_ids(db);
        if !live.is_empty() {
            let id = live[rng.gen_range(0..u64::MAX) as usize % live.len()];
            db.update("t", id, "v", &V::Int64(rng.gen_range(-500..500)))
                .unwrap();
        }
    } else {
        let live = live_ids(db);
        if !live.is_empty() {
            let id = live[rng.gen_range(0..u64::MAX) as usize % live.len()];
            db.delete("t", id).unwrap();
        }
    }
}

fn scan_rows(db: &Database) -> Vec<Vec<Value>> {
    db.run(&QueryBuilder::scan("t").build(), EngineKind::Compiled)
        .unwrap()
        .rows
}

#[test]
fn sync_mode_merges_inline_at_threshold() {
    let mut db = Database::with_maintenance(cfg(MaintenanceMode::Sync, 64));
    make_table(&mut db);
    for i in 0..500i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let vt = db.versioned("t").unwrap();
    assert!(vt.generation() > 0, "threshold crossings merged");
    assert!(vt.delta_ops() < 64 + 1, "delta stays bounded");
    let stats = db.maintenance_stats();
    assert!(stats.sync_merges >= 7, "got {:?}", stats);
    assert_eq!(stats.builds_started, 0, "sync mode never uses the worker");
    assert_eq!(scan_rows(&db).len(), 500);
}

#[test]
fn background_mode_builds_off_thread_and_catches_up() {
    let mut db = Database::with_maintenance(cfg(MaintenanceMode::Background, 64));
    make_table(&mut db);
    for i in 0..500i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let applied = db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert!(stats.builds_started >= 1, "got {:?}", stats);
    assert_eq!(
        stats.builds_applied, stats.builds_started,
        "all builds caught up (none raced an explicit merge): {:?}",
        stats
    );
    assert_eq!(stats.sync_merges, 0);
    assert!(!applied.is_empty() || stats.builds_applied > 0);
    assert!(db.versioned("t").unwrap().generation() > 0);
    assert_eq!(scan_rows(&db).len(), 500);
}

#[test]
fn background_and_sync_paths_are_byte_identical() {
    let mut sync_db = Database::with_maintenance(cfg(MaintenanceMode::Sync, 48));
    let mut bg_db = Database::with_maintenance(cfg(MaintenanceMode::Background, 48));
    let mut off_db = Database::with_maintenance(cfg(MaintenanceMode::Off, 48));
    for db in [&mut sync_db, &mut bg_db, &mut off_db] {
        make_table(db);
    }
    // identical op streams; targets resolve by live position (timing-proof)
    let mut r1 = SmallRng::seed_from_u64(99);
    let mut r2 = SmallRng::seed_from_u64(99);
    let mut r3 = SmallRng::seed_from_u64(99);
    for _ in 0..800 {
        apply_step(&mut sync_db, &mut r1);
        apply_step(&mut bg_db, &mut r2);
        apply_step(&mut off_db, &mut r3);
    }
    bg_db.flush_maintenance().unwrap();
    // live scans agree before any final merge...
    let a = scan_rows(&sync_db);
    let b = scan_rows(&bg_db);
    let c = scan_rows(&off_db);
    assert_eq!(a, b, "sync vs background live state");
    assert_eq!(a, c, "scheduled vs never-merged live state");
    // ...and after everything is folded
    for db in [&mut sync_db, &mut bg_db, &mut off_db] {
        db.merge_all().unwrap();
    }
    let a = scan_rows(&sync_db);
    let b = scan_rows(&bg_db);
    let c = scan_rows(&off_db);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert!(bg_db.maintenance_stats().builds_started > 0);
    assert!(sync_db.maintenance_stats().sync_merges > 0);
}

#[test]
fn explicit_merge_wins_over_in_flight_build() {
    let mut db = Database::with_maintenance(cfg(MaintenanceMode::Background, 32));
    make_table(&mut db);
    // the 33rd insert's entry check crosses the threshold and launches a
    // build; no later DML entry exists that could apply it first
    for i in 0..33i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
    }
    assert!(db.versioned("t").unwrap().has_pending_merge());
    // preempt the in-flight build with an explicit merge
    db.merge("t").unwrap();
    db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert_eq!(stats.builds_started, 1);
    assert_eq!(
        stats.builds_discarded, 1,
        "preempted build discarded: {:?}",
        stats
    );
    assert_eq!(stats.builds_applied, 0);
    assert_eq!(scan_rows(&db).len(), 33);
}

/// ROADMAP's "layout advice as policy" loop: tables whose observed
/// workload drifted merge into an advised layout automatically.
fn advised_relayout_on(mode: MaintenanceMode) {
    let mut c = cfg(mode, 200);
    c.advise_on_merge = true;
    let mut db = Database::with_maintenance(c);
    let cols: Vec<ColumnDef> = (0..16)
        .map(|i| ColumnDef::new(format!("c{i}"), DataType::Int32))
        .collect();
    db.create_table("r", Schema::new(cols)).unwrap();
    for i in 0..2000i32 {
        let row: Vec<Value> = (0..16).map(|c| V::Int32(i * 16 + c)).collect();
        db.insert("r", &row).unwrap();
    }
    db.flush_maintenance().unwrap();
    db.merge_all().unwrap();
    assert_eq!(
        db.get_table("r").unwrap().layout().n_groups(),
        1,
        "no observed traffic yet: merges keep the row layout"
    );
    // narrow scan traffic: the advisor should split the hot columns out
    let q = QueryBuilder::scan("r")
        .filter_with_selectivity(Expr::col(0).eq(Expr::lit(3)), 0.05)
        .aggregate(vec![], vec![AggExpr::new(AggFunc::Sum, Expr::col(1))])
        .build();
    for _ in 0..5 {
        db.execute(&q).unwrap();
    }
    for i in 0..250i32 {
        let row: Vec<Value> = (0..16).map(|c| V::Int32(i * 16 + c)).collect();
        db.insert("r", &row).unwrap();
    }
    db.flush_maintenance().unwrap();
    let stats = db.maintenance_stats();
    assert!(
        stats.advised_relayouts >= 1,
        "merge consulted the advisor: {:?}",
        stats
    );
    assert!(
        db.get_table("r").unwrap().layout().n_groups() > 1,
        "drifted table merged into an advised layout: {}",
        db.get_table("r").unwrap().layout()
    );
    // results unchanged under the new layout
    let out = db.execute(&q).unwrap();
    assert_eq!(out.rows.len(), 1);
}

#[test]
fn advised_relayout_at_merge_sync() {
    advised_relayout_on(MaintenanceMode::Sync);
}

#[test]
fn advised_relayout_at_merge_background() {
    advised_relayout_on(MaintenanceMode::Background);
}

#[test]
fn plan_cache_follows_background_generation_bumps() {
    let mut db = Database::with_maintenance(cfg(MaintenanceMode::Background, 64));
    make_table(&mut db);
    for i in 0..60i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    let plan = QueryBuilder::scan("t")
        .filter(Expr::col(0).lt(Expr::lit(10)))
        .build();
    let p1 = db.plan_query(&plan).unwrap();
    let p1b = db.plan_query(&plan).unwrap();
    assert!(std::sync::Arc::ptr_eq(&p1, &p1b), "stable while quiet");
    // push past the threshold and catch the background merge up
    for i in 60..130i32 {
        db.insert("t", &[V::Int32(i), V::Int64(i as i64), V::Str("x".into())])
            .unwrap();
    }
    db.flush_maintenance().unwrap();
    db.poll_maintenance().unwrap();
    assert!(db.versioned("t").unwrap().generation() > 0);
    let p2 = db.plan_query(&plan).unwrap();
    assert!(
        !std::sync::Arc::ptr_eq(&p1, &p2),
        "background generation bump invalidates the cached plan"
    );
    assert_eq!(db.execute(&plan).unwrap().rows.len(), 10);
}

#[test]
fn long_lived_db_snapshot_pins_one_version() {
    let mut db = Database::with_maintenance(cfg(MaintenanceMode::Off, 0));
    make_table(&mut db);
    for i in 0..100i32 {
        db.insert("t", &[V::Int32(i), V::Int64(0), V::Str("x".into())])
            .unwrap();
    }
    db.merge("t").unwrap();
    let pinned = db.snapshot(); // long-lived reader at generation 1
    for round in 0..6i32 {
        for i in 0..50 {
            db.insert(
                "t",
                &[
                    V::Int32(1000 + round * 50 + i),
                    V::Int64(1),
                    V::Str("y".into()),
                ],
            )
            .unwrap();
        }
        db.merge("t").unwrap();
    }
    let s = db.version_stats("t").unwrap();
    assert_eq!(
        s.live_mains, 2,
        "snapshot's version + current; intermediates reclaimed: {:?}",
        s
    );
    assert_eq!(s.pinned_versions, 1);
    assert!(s.pinned_bytes > 0);
    // the pinned snapshot still reads its version
    assert_eq!(
        pinned
            .table_snapshot("t")
            .map(|t| t.len())
            .unwrap_or_default(),
        100
    );
    drop(pinned);
    let s = db.version_stats("t").unwrap();
    assert_eq!(s.live_mains, 1, "last reader released → version dropped");
    assert_eq!(s.pinned_bytes, 0);
}

#[test]
fn env_config_parses_modes_and_threshold() {
    if std::env::var("PDSM_MERGE").is_err() && std::env::var("PDSM_MERGE_THRESHOLD").is_err() {
        let cfg = MaintenanceConfig::from_env();
        assert_eq!(cfg.mode, MaintenanceMode::Background);
        assert_eq!(cfg.merge_threshold, 65_536);
    }
    // per-table override logic
    let mut c = MaintenanceConfig {
        merge_threshold: 100,
        ..Default::default()
    };
    c.per_table.insert("hot".into(), 10);
    assert_eq!(c.threshold_for("hot"), 10);
    assert_eq!(c.threshold_for("cold"), 100);
}
