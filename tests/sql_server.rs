//! End-to-end TCP tests: a SAP-SD-seeded server driven over the wire
//! protocol — queries, EXPLAIN, concurrent DML on disjoint tables, and
//! graceful shutdown.

use mrdb::prelude::*;
use mrdb::sql::{read_response, WireResponse};
use mrdb::workloads::sapsd;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn sapsd_server(scale: usize) -> SqlServer {
    let db = Database::new();
    for t in sapsd::tables(scale, 42) {
        db.register(t);
    }
    SqlServer::start(Arc::new(db), "127.0.0.1:0", ServerConfig::default()).unwrap()
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(server: &SqlServer) -> Client {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        assert_eq!(greeting.trim_end(), "HELLO pdsm-sql 1");
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, sql: &str) -> WireResponse {
        writeln!(self.writer, "{sql}").unwrap();
        read_response(&mut self.reader).unwrap()
    }

    fn rows(&mut self, sql: &str) -> Vec<String> {
        match self.send(sql) {
            WireResponse::Rows { data, .. } => data,
            other => panic!("{sql:?} → {other:?}"),
        }
    }
}

#[test]
fn sapsd_queries_over_tcp() {
    let server = sapsd_server(200);
    let mut c = Client::connect(&server);

    // A point lookup with a known literal (scale 200 → customer C0000006).
    let rows = c.rows("SELECT KUNNR, NAME1 FROM KNA1 WHERE KUNNR = 'C0000006'");
    assert_eq!(rows.len(), 1);
    assert!(rows[0].starts_with("C0000006\t"));

    // An aggregate matches an in-process execution of the same text.
    let rows = c.rows("SELECT count(*) FROM VBAP");
    assert_eq!(rows.len(), 1);
    let n: i64 = rows[0].parse().unwrap();
    assert!(n > 0);

    // EXPLAIN returns the physical plan, not results.
    let plan = c.rows("EXPLAIN SELECT count(*) FROM VBAP").join("\n");
    assert!(plan.contains("engine:"), "EXPLAIN output: {plan}");

    // Errors come back as ERR frames with the statement kept open.
    match c.send("SELECT nope FROM KNA1") {
        WireResponse::Error(msg) => assert!(msg.contains("nope"), "{msg}"),
        other => panic!("expected ERR, got {other:?}"),
    }
    let again = c.rows("SELECT count(*) FROM VBAP");
    assert_eq!(again.len(), 1, "session survives an error");

    server.shutdown();
}

#[test]
fn concurrent_sessions_write_disjoint_tables() {
    let server = sapsd_server(200);
    let addr = server.local_addr();

    // Baseline counts.
    let mut c = Client::connect(&server);
    let base_vbap: i64 = c.rows("SELECT count(*) FROM VBAP")[0].parse().unwrap();
    let base_vbep: i64 = c.rows("SELECT count(*) FROM VBEP")[0].parse().unwrap();

    let per_session = 40;
    let handles: Vec<_> = ["VBAP", "VBEP"]
        .into_iter()
        .map(|table| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let schema = if table == "VBAP" {
                    sapsd::vbap_schema()
                } else {
                    sapsd::vbep_schema()
                };
                for k in 0..per_session {
                    // Distinctive first column, type-correct fillers
                    // elsewhere (columns are NOT NULL): disjoint tables,
                    // one INSERT per round trip.
                    let cells: Vec<String> = schema
                        .columns()
                        .iter()
                        .enumerate()
                        .map(|(i, col)| {
                            if i == 0 {
                                format!("{}", 5_000_000 + k)
                            } else {
                                match col.ty {
                                    DataType::Int32 | DataType::Int64 => "1".to_string(),
                                    DataType::Float64 => "1.0".to_string(),
                                    DataType::Str => "'x'".to_string(),
                                }
                            }
                        })
                        .collect();
                    writeln!(writer, "INSERT INTO {table} VALUES ({})", cells.join(", ")).unwrap();
                    match read_response(&mut reader).unwrap() {
                        WireResponse::Count(1) => {}
                        other => panic!("{table} insert {k} → {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let vbap: i64 = c.rows("SELECT count(*) FROM VBAP")[0].parse().unwrap();
    let vbep: i64 = c.rows("SELECT count(*) FROM VBEP")[0].parse().unwrap();
    assert_eq!(vbap, base_vbap + per_session);
    assert_eq!(vbep, base_vbep + per_session);

    server.shutdown();
}

#[test]
fn shutdown_command_stops_the_server() {
    let server = sapsd_server(100);
    let addr = server.local_addr();
    let mut c = Client::connect(&server);
    match c.send("SHUTDOWN") {
        WireResponse::Count(0) => {}
        other => panic!("SHUTDOWN → {other:?}"),
    }
    server.wait();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // The OS may briefly accept; a read must then hit EOF.
            let s = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(s);
            let mut line = String::new();
            r.read_line(&mut line).unwrap_or(0) == 0
        },
        "server must stop accepting after SHUTDOWN"
    );
}
