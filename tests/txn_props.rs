//! Property tests for the versioned write path: random interleavings of
//! insert / update / delete / merge must agree with a naive
//! `Vec<Option<Row>>` model — exactly, in scan order — and all engines must
//! agree with each other on the resulting state, across layouts.

use mrdb::exec::TableProvider;
use mrdb::prelude::*;
use proptest::prelude::*;

const NCOLS: usize = 4;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("a", DataType::Int32),
        ColumnDef::new("b", DataType::Int64),
        ColumnDef::nullable("f", DataType::Float64),
        ColumnDef::new("s", DataType::Str),
    ])
}

/// One random DML step. Row "hints" index the live set modulo its size.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Value>),
    Update {
        hint: usize,
        col: usize,
        value: Value,
    },
    Delete {
        hint: usize,
    },
    Merge,
    /// Begin a background merge (pin the cut, run the build immediately;
    /// the swap waits for [`Op::FinishMerge`], so every op in between
    /// lands in the replay window). No-op if a build is already pending.
    BeginMerge,
    /// Swap a previously built background merge in — or discard it if a
    /// synchronous [`Op::Merge`] made it stale. No-op without a build.
    FinishMerge,
}

fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (
        0i32..40,
        -100i64..100,
        proptest::option::of(-50f64..50.0),
        0u8..6,
    )
        .prop_map(|(a, b, f, s)| {
            vec![
                Value::Int32(a),
                Value::Int64(b),
                f.map(Value::Float64).unwrap_or(Value::Null),
                Value::Str(format!("s{s}")),
            ]
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_row().prop_map(Op::Insert),
        (0usize..1000, 0usize..NCOLS, arb_row()).prop_map(|(hint, col, row)| Op::Update {
            hint,
            col,
            value: row[col].clone(),
        }),
        (0usize..1000).prop_map(|hint| Op::Delete { hint }),
        Just(Op::Merge),
        Just(Op::BeginMerge),
        Just(Op::FinishMerge),
    ]
}

/// The naive reference: a vector indexed by row id, `None` = tombstoned.
/// Merge compacts the survivors in order (= the versioned table's scan
/// order) and renumbers.
#[derive(Default)]
struct Model {
    slots: Vec<Option<Vec<Value>>>,
}

impl Model {
    fn live_ids(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].is_some())
            .collect()
    }

    fn rows(&self) -> Vec<Vec<Value>> {
        self.slots.iter().flatten().cloned().collect()
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert(row) => self.slots.push(Some(row.clone())),
            Op::Update { hint, col, value } => {
                let live = self.live_ids();
                if live.is_empty() {
                    return;
                }
                let id = live[hint % live.len()];
                let mut row = self.slots[id].take().expect("live");
                row[*col] = value.clone();
                self.slots.push(Some(row));
            }
            Op::Delete { hint } => {
                let live = self.live_ids();
                if live.is_empty() {
                    return;
                }
                self.slots[live[hint % live.len()]] = None;
            }
            Op::Merge => {
                let rows = self.rows();
                self.slots = rows.into_iter().map(Some).collect();
            }
            // Background merges never change content, and hint resolution
            // goes through the live list (scan order, which a swap
            // preserves) — so the model ignores them entirely. That *is*
            // the property: the three-phase pipeline is invisible.
            Op::BeginMerge | Op::FinishMerge => {}
        }
    }
}

fn apply_versioned(t: &mut VersionedTable, build: &mut Option<mrdb::txn::BuiltMain>, op: &Op) {
    match op {
        Op::Insert(row) => {
            t.insert(row).expect("typed rows insert");
        }
        Op::Update { hint, col, value } => {
            let live: Vec<usize> = (0..t.main().len() + t.delta_rows())
                .filter(|&i| t.is_visible(i))
                .collect();
            if live.is_empty() {
                return;
            }
            t.update(live[hint % live.len()], *col, value)
                .expect("update live row");
        }
        Op::Delete { hint } => {
            let live: Vec<usize> = (0..t.main().len() + t.delta_rows())
                .filter(|&i| t.is_visible(i))
                .collect();
            if live.is_empty() {
                return;
            }
            t.delete(live[hint % live.len()]).expect("delete live row");
        }
        Op::Merge => {
            t.merge().expect("merge");
        }
        Op::BeginMerge => {
            if build.is_some() || t.has_pending_merge() {
                return;
            }
            let ticket = t.begin_merge().expect("begin");
            let layout = ticket.snapshot().main().layout().clone();
            // build immediately; every op until FinishMerge is replayed
            *build = Some(ticket.build(layout).expect("build"));
        }
        Op::FinishMerge => {
            if let Some(b) = build.take() {
                match t.finish_merge(b) {
                    Ok(_) => {}
                    Err(mrdb::storage::Error::StaleMergeBuild) => {} // a sync merge won
                    Err(e) => panic!("finish_merge: {e}"),
                }
            }
        }
    }
}

fn layouts() -> Vec<Layout> {
    vec![
        Layout::row(NCOLS),
        Layout::column(NCOLS),
        Layout::from_groups(vec![vec![0, 2], vec![1], vec![3]], NCOLS).unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_interleavings_agree_with_model(ops in proptest::collection::vec(arb_op(), 0..60)) {
        for layout in layouts() {
            let mut t = VersionedTable::with_layout("t", schema(), layout.clone()).unwrap();
            let mut model = Model::default();
            let mut build = None;
            for op in &ops {
                apply_versioned(&mut t, &mut build, op);
                model.apply(op);
                prop_assert_eq!(t.len(), model.rows().len());
            }
            // exact scan-order agreement with the model
            let got: Vec<Vec<Value>> = t.rows().map(|r| r.0).collect();
            prop_assert_eq!(&got, &model.rows(), "scan order vs model ({})", layout);

            // a bare scan through every engine sees the same rows in the
            // same order (engines read via the overlay, not via rows())
            let scan = QueryBuilder::scan("t").build();
            for kind in EngineKind::all() {
                let out = kind.engine().execute(&scan, &t as &dyn TableProvider).unwrap();
                prop_assert_eq!(&out.rows, &model.rows(), "{:?} scan vs model", kind);
            }

            // filtered aggregation: engines agree with each other on the
            // live state, and with the merged clone
            let agg = QueryBuilder::scan("t")
                .filter(Expr::col(0).lt(Expr::lit(20)))
                .aggregate(
                    vec![Expr::col(3)],
                    vec![
                        AggExpr::count_star(),
                        AggExpr::new(AggFunc::Sum, Expr::col(1)),
                        AggExpr::new(AggFunc::Avg, Expr::col(2)),
                    ],
                )
                .build();
            let mut merged = t.clone();
            merged.merge().unwrap();
            let reference = EngineKind::Compiled
                .engine()
                .execute(&agg, &merged as &dyn TableProvider)
                .unwrap();
            for kind in EngineKind::all() {
                let live_out = kind.engine().execute(&agg, &t as &dyn TableProvider).unwrap();
                reference.assert_same(&live_out, &format!("{kind:?} live vs merged/compiled"));
            }
        }
    }

    #[test]
    fn snapshot_equals_state_at_acquisition(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut t = VersionedTable::new("t", schema());
        let mut model = Model::default();
        let mut build = None;
        // split the op stream: snapshot in the middle, keep writing after
        let cut = ops.len() / 2;
        for op in &ops[..cut] {
            apply_versioned(&mut t, &mut build, op);
            model.apply(op);
        }
        let snap = t.snapshot();
        let frozen = model.rows();
        for op in &ops[cut..] {
            apply_versioned(&mut t, &mut build, op);
            model.apply(op);
        }
        let got: Vec<Vec<Value>> = snap.rows().into_iter().map(|r| r.0).collect();
        prop_assert_eq!(got, frozen, "snapshot drifted");
    }
}
