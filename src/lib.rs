//! # mrdb — facade for the PDSM reproduction workspace
//!
//! This package hosts the workspace-level `examples/` and `tests/`
//! directories and re-exports every sub-crate under one roof so examples
//! can write `use mrdb::prelude::*`.
//!
//! See `DESIGN.md` for the full system inventory, `EXPERIMENTS.md` for the
//! paper-vs-measured record, and `README.md` for a tour.

pub use pdsm_cachesim as cachesim;
pub use pdsm_core as core;
pub use pdsm_cost as cost;
pub use pdsm_exec as exec;
pub use pdsm_index as index;
pub use pdsm_layout as layout;
pub use pdsm_par as par;
pub use pdsm_plan as plan;
pub use pdsm_sql as sql;
pub use pdsm_storage as storage;
pub use pdsm_store as store;
pub use pdsm_txn as txn;
pub use pdsm_workloads as workloads;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use pdsm_core::{
        CacheStats, Database, DurabilityConfig, EngineKind, FsyncMode, IndexKind, LayoutAdvisor,
        MaintenanceConfig, MaintenanceMode, MaintenanceStats, PlanCacheStats, QueryOutput,
        QueryResult, ResultCacheConfig, ResultCacheStats, ScanCounters, SimdMode, StorageStats,
    };
    pub use pdsm_exec::engine::{BulkEngine, CompiledEngine, Engine, VolcanoEngine};
    pub use pdsm_layout::workload::{Workload, WorkloadQuery};
    pub use pdsm_par::ParallelEngine;
    pub use pdsm_plan::builder::QueryBuilder;
    pub use pdsm_plan::expr::Expr;
    pub use pdsm_plan::logical::{AggExpr, AggFunc, LogicalPlan};
    pub use pdsm_sql::{plan_to_sql, Response, ServerConfig, Session, SqlServer};
    pub use pdsm_storage::{ColumnDef, DataType, Layout, Schema, Table, Value};
    pub use pdsm_txn::{MergeStats, SharedTable, Snapshot, VersionStats, VersionedTable};
}
